#!/usr/bin/env python3
"""Step-count trend gate for the BENCH_*.json artifacts.

Compares the `essential_steps_per_op` metrics of the current benchmark run
against the previous CI run's uploaded `bench-json` artifact, and fails
(exit 1) when any configuration regressed beyond the tolerance.

Only step counts are gated: they are schedule-driven and reproducible on
shared CI runners, unlike wall-clock (mops/ns) columns, which this script
deliberately ignores (see EXPERIMENTS.md).

Matching is schema-agnostic: each entry of a file's "configs" array is
flattened, every non-float scalar field (layout, reclaimer, workload,
threads, finger, ...) becomes part of the configuration's identity, and
every field named `essential_steps_per_op` (at any nesting depth, e.g. the
per-phase objects of BENCH_memory_layout.json) is compared. Provenance
fields (IGNORED_FIELDS below: git SHA, hostname, timestamps, toolchain
strings) are excluded from the identity — they change on every run, so
folding them in would make every configuration look brand-new and silently
disable the gate. Configurations present on only one side — new
benchmarks, renamed axes — are reported and skipped, so evolving a bench
never fails the gate by itself.

Informational metrics (`finger_hit_rate`, and the E14 resilience gauges
`retire_backlog` / `quarantine_depth`) are REPORTED but never gated: hit
rates shift with cache-policy tuning in ways steps/op already prices in,
and the resilience gauges count survivor churn during a wall-clock stall
window, so their magnitude tracks runner speed. They are surfaced for the
log reader only.

Usage:
    bench_trend.py --current DIR --previous DIR [--tolerance 0.10]

Missing --previous directory (first run, expired artifact) is not an
error: the script reports "no baseline" and exits 0.
"""

import argparse
import glob
import json
import os
import sys

METRIC = "essential_steps_per_op"

# Informational metrics: deltas are printed, never gated. Matched by leaf
# name BEFORE the identity branch — several are emitted as JSON integers,
# which would otherwise be swallowed into the configuration identity and
# mark every run [new].
INFO_METRICS = {"finger_hit_rate", "retire_backlog", "quarantine_depth"}

# Minimum absolute delta worth printing, per informational metric. Rates
# get a tight threshold; the count-valued gauges a coarse one.
INFO_REPORT_DELTA = {"finger_hit_rate": 0.02}
INFO_REPORT_DELTA_DEFAULT = 1.0

# Provenance fields: non-float scalars that describe the RUN, not the
# configuration. Excluded from identity by leaf name — a run-unique value
# in the identity would mark every configuration [new]/[gone] and the gate
# would never compare anything.
IGNORED_FIELDS = {
    "git_sha", "sha", "commit", "branch",
    "hostname", "host", "runner",
    "timestamp", "date", "time", "started_at",
    "compiler", "compiler_version", "build_type", "cmake_version",
    "os", "kernel", "cpu_model",
}

# Ignore regressions smaller than this many absolute steps/op: near-zero
# baselines (e.g. a fingered repeat-range at ~0.2 steps/op) would otherwise
# turn scheduling jitter into huge relative "regressions".
ABS_SLACK = 0.05


def flatten(obj, prefix=""):
    """Yield (dotted_path, scalar_value) pairs of a nested JSON object."""
    if isinstance(obj, dict):
        for key, value in obj.items():
            yield from flatten(value, f"{prefix}{key}.")
    elif isinstance(obj, list):
        for i, value in enumerate(obj):
            yield from flatten(value, f"{prefix}{i}.")
    else:
        yield prefix[:-1], obj


def config_table(path):
    """Map identity-key -> {metric_path: value} for one BENCH_*.json file."""
    with open(path) as f:
        doc = json.load(f)
    table = {}
    for config in doc.get("configs", []):
        identity = []
        metrics = {}
        info = {}
        for field, value in flatten(config):
            leaf = field.rsplit(".", 1)[-1]
            if leaf == METRIC:
                metrics[field] = float(value)
            elif leaf in INFO_METRICS:
                info[field] = float(value)
            elif leaf in IGNORED_FIELDS:
                continue
            elif isinstance(value, (str, bool, int)):
                identity.append((field, value))
        table[tuple(sorted(identity))] = (metrics, info)
    return table


def describe(identity):
    return " ".join(f"{field.rsplit('.', 1)[-1]}={value}"
                    for field, value in identity)


def compare_file(name, current_path, previous_path, tolerance):
    current = config_table(current_path)
    previous = config_table(previous_path)
    regressions = []
    for identity, (metrics, info) in current.items():
        base = previous.get(identity)
        if base is None:
            print(f"  [new]  {name}: {describe(identity)}")
            continue
        base_metrics, base_info = base
        for field, value in metrics.items():
            old = base_metrics.get(field)
            if old is None:
                continue
            if value > old * (1.0 + tolerance) and value - old > ABS_SLACK:
                regressions.append(
                    f"{name}: {describe(identity)} [{field}] "
                    f"{old:.3f} -> {value:.3f} "
                    f"(+{100.0 * (value / old - 1.0):.1f}%)")
        for field, value in info.items():
            old = base_info.get(field)
            threshold = INFO_REPORT_DELTA.get(field.rsplit(".", 1)[-1],
                                              INFO_REPORT_DELTA_DEFAULT)
            if old is None or abs(value - old) < threshold:
                continue
            print(f"  [info] {name}: {describe(identity)} [{field}] "
                  f"{old:.3f} -> {value:.3f} ({value - old:+.3f}, not gated)")
    for identity in previous:
        if identity not in current:
            print(f"  [gone] {name}: {describe(identity)}")
    return regressions


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--current", required=True,
                    help="directory holding this run's BENCH_*.json")
    ap.add_argument("--previous", required=True,
                    help="directory holding the previous run's BENCH_*.json")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="allowed relative steps/op growth (default 0.10)")
    args = ap.parse_args()

    current_files = sorted(glob.glob(os.path.join(args.current,
                                                  "BENCH_*.json")))
    if not current_files:
        print(f"bench_trend: no BENCH_*.json under {args.current}",
              file=sys.stderr)
        return 1
    if not os.path.isdir(args.previous):
        print(f"bench_trend: no baseline directory {args.previous} "
              "(first run or expired artifact) — nothing to compare")
        return 0

    regressions = []
    for current_path in current_files:
        name = os.path.basename(current_path)
        previous_path = os.path.join(args.previous, name)
        if not os.path.exists(previous_path):
            print(f"  [new]  {name}: no baseline file — skipped")
            continue
        regressions += compare_file(name, current_path, previous_path,
                                    args.tolerance)

    if regressions:
        print(f"\nbench_trend: {len(regressions)} steps/op regression(s) "
              f"beyond {100.0 * args.tolerance:.0f}%:")
        for line in regressions:
            print(f"  REGRESSION {line}")
        return 1
    print(f"\nbench_trend: all {METRIC} metrics within "
          f"{100.0 * args.tolerance:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
