#!/usr/bin/env python3
"""Regression tests for tools/bench_trend.py, run on fixture JSONs.

Each case materializes a current/previous pair of BENCH_*.json files in a
temp directory and invokes the real script as a subprocess, asserting on
the exit code and log lines. Covers the two PR-5 fixes:

  * provenance fields (git_sha, hostname, timestamp, ...) must not enter a
    configuration's identity — a run-unique value there would mark every
    config [new]/[gone] and silently disable the steps/op gate;
  * finger_hit_rate deltas are reported ([info] lines) but never gated;
  * the E14 resilience gauges (retire_backlog / quarantine_depth), emitted
    as JSON integers, are likewise reported-not-gated — and must not be
    swallowed into the identity, which would mark every run [new].
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "bench_trend.py")


def write_bench(directory, configs, name="BENCH_fixture.json"):
    os.makedirs(directory, exist_ok=True)
    with open(os.path.join(directory, name), "w") as f:
        json.dump({"experiment": "fixture", "configs": configs}, f)


def config(steps, hit_rate=None, provenance=None, workload="zipf"):
    entry = {
        "layout": "flat",
        "workload": workload,
        "threads": 8,
        "essential_steps_per_op": steps,
    }
    if hit_rate is not None:
        entry["finger_hit_rate"] = hit_rate
    if provenance:
        entry.update(provenance)
    return entry


def run_trend(current, previous, tolerance=0.10):
    proc = subprocess.run(
        [sys.executable, SCRIPT, "--current", current, "--previous",
         previous, "--tolerance", str(tolerance)],
        capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


class BenchTrendTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.current = os.path.join(self.tmp.name, "current")
        self.previous = os.path.join(self.tmp.name, "previous")

    def tearDown(self):
        self.tmp.cleanup()

    def test_within_tolerance_passes(self):
        write_bench(self.previous, [config(10.0)])
        write_bench(self.current, [config(10.5)])
        code, out = run_trend(self.current, self.previous)
        self.assertEqual(code, 0, out)
        self.assertIn("within", out)

    def test_regression_fails(self):
        write_bench(self.previous, [config(10.0)])
        write_bench(self.current, [config(12.0)])
        code, out = run_trend(self.current, self.previous)
        self.assertEqual(code, 1, out)
        self.assertIn("REGRESSION", out)

    def test_provenance_fields_do_not_change_identity(self):
        # Same configuration, run-unique provenance scalars on both sides.
        # Without the ignore-list the identities would never match: the
        # config would print as [new], the regression would be skipped, and
        # the gate would pass a 2x steps/op blowup.
        write_bench(self.previous, [config(10.0, provenance={
            "git_sha": "aaaa111", "hostname": "runner-1",
            "timestamp": "2026-08-01T00:00:00Z"})])
        write_bench(self.current, [config(20.0, provenance={
            "git_sha": "bbbb222", "hostname": "runner-7",
            "timestamp": "2026-08-06T00:00:00Z"})])
        code, out = run_trend(self.current, self.previous)
        self.assertEqual(code, 1, out)
        self.assertIn("REGRESSION", out)
        self.assertNotIn("[new]", out)
        self.assertNotIn("[gone]", out)

    def test_hit_rate_delta_reported_not_gated(self):
        # A large hit-rate DROP alone must not fail the gate, but must
        # surface as an [info] line.
        write_bench(self.previous, [config(10.0, hit_rate=0.40)])
        write_bench(self.current, [config(10.0, hit_rate=0.10)])
        code, out = run_trend(self.current, self.previous)
        self.assertEqual(code, 0, out)
        self.assertIn("[info]", out)
        self.assertIn("finger_hit_rate", out)
        self.assertIn("not gated", out)

    def test_tiny_hit_rate_delta_not_reported(self):
        write_bench(self.previous, [config(10.0, hit_rate=0.400)])
        write_bench(self.current, [config(10.0, hit_rate=0.405)])
        code, out = run_trend(self.current, self.previous)
        self.assertEqual(code, 0, out)
        self.assertNotIn("[info]", out)

    def test_resilience_gauges_reported_not_gated(self):
        # retire_backlog / quarantine_depth are integers: a naive identity
        # builder would fold them in (every run [new], gate disabled), and
        # a naive gate would fail on their growth. They must do neither —
        # big swings surface as [info] lines, the exit code stays 0.
        write_bench(self.previous, [config(
            10.0, provenance={"retire_backlog": 120, "quarantine_depth": 3})])
        write_bench(self.current, [config(
            10.0, provenance={"retire_backlog": 9000,
                              "quarantine_depth": 700})])
        code, out = run_trend(self.current, self.previous)
        self.assertEqual(code, 0, out)
        self.assertNotIn("[new]", out)
        self.assertNotIn("[gone]", out)
        self.assertIn("retire_backlog", out)
        self.assertIn("quarantine_depth", out)
        self.assertIn("not gated", out)

    def test_unchanged_gauge_not_reported(self):
        write_bench(self.previous, [config(
            10.0, provenance={"retire_backlog": 120})])
        write_bench(self.current, [config(
            10.0, provenance={"retire_backlog": 120})])
        code, out = run_trend(self.current, self.previous)
        self.assertEqual(code, 0, out)
        self.assertNotIn("[info]", out)

    def test_new_and_gone_configs_skipped(self):
        write_bench(self.previous, [config(10.0, workload="uniform")])
        write_bench(self.current, [config(10.0, workload="zipf")])
        code, out = run_trend(self.current, self.previous)
        self.assertEqual(code, 0, out)
        self.assertIn("[new]", out)
        self.assertIn("[gone]", out)

    def test_missing_baseline_is_not_an_error(self):
        write_bench(self.current, [config(10.0)])
        code, out = run_trend(self.current,
                              os.path.join(self.tmp.name, "absent"))
        self.assertEqual(code, 0, out)
        self.assertIn("nothing to compare", out)

    def test_missing_current_is_an_error(self):
        write_bench(self.previous, [config(10.0)])
        code, _ = run_trend(os.path.join(self.tmp.name, "absent"),
                            self.previous)
        self.assertEqual(code, 1)


if __name__ == "__main__":
    unittest.main()
