// url_frontier — a crawl frontier: the priority-ordered work queue of a
// web crawler, shared by fetcher threads that pull the most urgent URL and
// scheduler threads that keep discovering new ones.
//
// The dictionary's sorted order makes extract-min trivial — the skip-list
// priority queue is exactly the application Sundell & Tsigas built their
// lock-free skip list for (the paper's reference [14]); here the FR skip
// list provides it. Keys are (priority, sequence) packed into one 64-bit
// integer so equal priorities dequeue FIFO and keys stay unique.
//
//   build/examples/url_frontier
#include <atomic>
#include <cstdio>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "lf/core/fr_skiplist.h"
#include "lf/util/random.h"

namespace {

class UrlFrontier {
 public:
  // Lower priority value = more urgent. FIFO within a priority class.
  void add(int priority, std::string url) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(priority) << 40) |
        seq_.fetch_add(1, std::memory_order_relaxed);
    queue_.insert(static_cast<long>(key), std::move(url));
  }

  // Extract the most urgent URL. Lock-free: competing fetchers race on
  // erase(), and exactly one wins each key (the paper's Delete semantics).
  std::optional<std::string> take() {
    for (;;) {
      std::optional<long> head_key;
      queue_.for_each_until([&](long k, const std::string&) {
        head_key = k;
        return false;  // stop at the first (smallest) key
      });
      if (!head_key.has_value()) return std::nullopt;  // empty
      auto url = queue_.find(*head_key);
      if (queue_.erase(*head_key)) {
        if (url.has_value()) return url;
        return queue_.find(*head_key);  // value read raced; rare
      }
      // Another fetcher won this key: retry with the next head.
    }
  }

  std::size_t size() const { return queue_.size(); }

 private:
  // A thin extension of FRSkipList: early-exit iteration for head lookup.
  class Queue : public lf::FRSkipList<long, std::string> {
   public:
    template <typename Fn>
    void for_each_until(Fn&& fn) const {
      for_each_prefix(std::forward<Fn>(fn));
    }

   private:
    template <typename Fn>
    void for_each_prefix(Fn&& fn) const {
      bool keep_going = true;
      this->for_each([&](const long& k, const std::string& v) {
        if (keep_going) keep_going = fn(k, v);
      });
    }
  };

  Queue queue_;
  std::atomic<std::uint64_t> seq_{0};
};

}  // namespace

int main() {
  UrlFrontier frontier;
  std::atomic<std::uint64_t> fetched{0};
  std::atomic<std::uint64_t> discovered{0};
  std::atomic<bool> stop{false};

  // Seed crawl.
  for (int i = 0; i < 100; ++i)
    frontier.add(0, "https://seed.example/" + std::to_string(i));
  discovered += 100;

  // Fetchers: take the most urgent URL; fetching it "discovers" outlinks
  // at lower urgency (a classic BFS-ish frontier).
  std::vector<std::thread> fetchers;
  for (int t = 0; t < 4; ++t) {
    fetchers.emplace_back([&, t] {
      lf::Xoshiro256 rng(42 + t);
      while (!stop.load(std::memory_order_acquire)) {
        auto url = frontier.take();
        if (!url.has_value()) {
          std::this_thread::yield();
          continue;
        }
        const auto n = fetched.fetch_add(1, std::memory_order_relaxed);
        // "Parse": discover 0-2 outlinks with priority 1-3.
        const auto outlinks = rng.below(3);
        for (std::uint64_t i = 0; i < outlinks; ++i) {
          frontier.add(static_cast<int>(1 + rng.below(3)),
                       *url + "/child" + std::to_string(i));
          discovered.fetch_add(1, std::memory_order_relaxed);
        }
        if (n >= 5'000) stop.store(true, std::memory_order_release);
      }
    });
  }
  for (auto& f : fetchers) f.join();

  std::printf("crawled %llu URLs, discovered %llu, %zu left in frontier\n",
              static_cast<unsigned long long>(fetched.load()),
              static_cast<unsigned long long>(discovered.load()),
              frontier.size());
  return 0;
}
