// adversarial_demo — the paper's Section 3.1 story, told interactively.
//
// Walks through the exact execution the paper constructs to show why
// Harris-style restarts are asymptotically worse than flag/backlink
// recovery, printing the per-round costs of both lists side by side.
//
//   build/examples/adversarial_demo [list_size] [rounds]
#include <cstdio>
#include <cstdlib>

#include "lf/baselines/harris_list.h"
#include "lf/core/fr_list.h"
#include "lf/instrument/counters.h"
#include "lf/reclaim/leaky.h"

namespace {

using FR =
    lf::FRList<long, long, std::less<long>, lf::reclaim::LeakyReclaimer>;
using Harris =
    lf::HarrisList<long, long, std::less<long>, lf::reclaim::LeakyReclaimer>;

// Single-threaded re-enactment: the "inserter" and "deleter" roles are
// played in strict alternation via the two-phase hooks, which makes every
// step countable and reproducible without any real concurrency.
template <typename List>
void enact(const char* name, long n, long rounds) {
  List list;
  for (long k = 1; k <= n; ++k) list.insert(k, k);

  typename List::InsertCursor cur;
  list.insert_locate(n + 1, n + 1, cur);  // inserter: locate the end

  std::printf("\n%s: n=%ld, the inserter has located its position "
              "(predecessor = node %ld)\n",
              name, n, n);
  std::printf("%-8s %-18s %-14s %s\n", "round", "steps this round",
              "cumulative", "(deleter kills the inserter's predecessor,");
  std::printf("%-8s %-18s %-14s %s\n", "", "", "",
              " then the inserter attempts its C&S)");

  std::uint64_t cumulative = 0;
  for (long r = 0; r < rounds; ++r) {
    list.erase(n - r);  // the adversary deletes the predecessor
    const auto before = lf::stats::aggregate();
    list.insert_try_once(cur);  // C&S fails; the list recovers its way
    const auto delta = lf::stats::aggregate() - before;
    cumulative += delta.essential_steps();
    if (r < 4 || r == rounds - 1) {
      std::printf("%-8ld %-18llu %-14llu\n", r + 1,
                  static_cast<unsigned long long>(delta.essential_steps()),
                  static_cast<unsigned long long>(cumulative));
    } else if (r == 4) {
      std::printf("...\n");
    }
  }
  if (cur.node != nullptr) {
    list.insert_try_once(cur);  // no interference this time: succeeds
  }
  std::printf("%s total recovery cost over %ld interferences: %llu steps "
              "(%.1f per interference)\n",
              name, rounds, static_cast<unsigned long long>(cumulative),
              static_cast<double>(cumulative) / static_cast<double>(rounds));
}

}  // namespace

int main(int argc, char** argv) {
  const long n = argc > 1 ? std::atol(argv[1]) : 512;
  const long rounds = argc > 2 ? std::atol(argv[2]) : n / 2;

  std::printf(
      "The Section 3.1 adversary: %ld keys, %ld rounds. Each round the\n"
      "deleter marks the inserter's located predecessor right before its\n"
      "C&S. Harris's list restarts from the head (~list-length steps);\n"
      "the Fomitchev-Ruppert list follows one backlink.\n",
      n, rounds);

  enact<Harris>("HarrisList", n, rounds);
  enact<FR>("FRList", n, rounds);

  std::printf(
      "\nThis is the paper's Ω(n̄·c̄) vs O(n̄+c̄) separation: scale n up\n"
      "and Harris's per-interference cost scales with it; the FR list's\n"
      "does not. (Run bench_adversarial for the full sweep.)\n");
  return 0;
}
