// kv_memtable — a write-ahead-log-less "memtable" in the LSM-tree sense:
// the sorted in-memory staging structure of a key-value store, serving
// concurrent writers and readers, periodically flushed in key order.
//
// This is the canonical production use of a concurrent skip list (LevelDB
// and RocksDB both stage writes in one); the FR skip list additionally
// makes every operation lock-free, so a stalled writer can never block
// the flusher or the readers.
//
//   build/examples/kv_memtable
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "lf/core/fr_skiplist.h"
#include "lf/util/random.h"

namespace {

// Values are immutable once inserted (the paper's dictionary has no
// update-in-place); an overwriting put is erase+insert, which readers see
// as a miss-or-either — good enough for a demo, real memtables version.
//
// The layout parameter is spelled out (it is also the default): flat
// pooled towers are exactly what a memtable wants — one arena allocation
// per put, towers recycled through the epoch grace period as overwrites
// churn, and contiguous towers for the flusher's range scans. RocksDB's
// memtable skip list sits on a concurrent arena for the same reasons.
using MemTable =
    lf::FRSkipList<std::string, std::string, std::less<std::string>,
                   lf::reclaim::EpochReclaimer, 24, lf::mem::FlatTowers>;

std::string make_key(std::uint64_t i) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "user%08llu",
                static_cast<unsigned long long>(i));
  return buf;
}

}  // namespace

int main() {
  MemTable table;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> writes{0}, reads{0}, hits{0};

  // Writers: upsert random keys.
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&, t] {
      lf::Xoshiro256 rng(100 + t);
      while (!stop.load(std::memory_order_acquire)) {
        const auto key = make_key(rng.below(50'000));
        std::string value = "v";
        value += std::to_string(rng.below(1'000'000));
        table.erase(key);
        table.insert(key, std::move(value));
        writes.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Readers: point lookups.
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      lf::Xoshiro256 rng(200 + t);
      while (!stop.load(std::memory_order_acquire)) {
        if (table.find(make_key(rng.below(50'000))).has_value())
          hits.fetch_add(1, std::memory_order_relaxed);
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Flusher: every "epoch", snapshot the table in key order (what an LSM
  // flush would write as an SSTable) without ever blocking the writers.
  std::uint64_t flushed_total = 0;
  for (int flush = 1; flush <= 5; ++flush) {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    std::uint64_t entries = 0;
    std::string first, last;
    table.for_each([&](const std::string& k, const std::string&) {
      if (entries == 0) first = k;
      last = k;
      ++entries;
    });
    flushed_total += entries;
    std::printf("flush #%d: %8llu entries  [%s .. %s]\n", flush,
                static_cast<unsigned long long>(entries), first.c_str(),
                last.c_str());
  }

  stop.store(true, std::memory_order_release);
  for (auto& w : writers) w.join();
  for (auto& r : readers) r.join();

  std::printf(
      "totals: %llu writes, %llu reads (%.1f%% hit rate), "
      "%llu entries snapshotted across 5 flushes\n",
      static_cast<unsigned long long>(writes.load()),
      static_cast<unsigned long long>(reads.load()),
      reads.load() ? 100.0 * static_cast<double>(hits.load()) /
                         static_cast<double>(reads.load())
                   : 0.0,
      static_cast<unsigned long long>(flushed_total));
  return 0;
}
