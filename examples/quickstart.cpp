// Quickstart: the 5-minute tour of the public API.
//
//   build/examples/quickstart
//
// Shows both structures (FRList for short sorted sets, FRSkipList for
// large dictionaries), the operations the paper defines (Search, Insert,
// Delete), snapshot iteration, and how concurrent use looks.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "lf/core/fr_list.h"
#include "lf/core/fr_skiplist.h"

int main() {
  // ---- A lock-free sorted linked list (paper Section 3) ----------------
  lf::FRList<int, std::string> list;

  list.insert(3, "three");
  list.insert(1, "one");
  list.insert(2, "two");
  list.insert(2, "TWO");  // duplicate keys are rejected -> returns false

  std::printf("list contains 2?  %s\n", list.contains(2) ? "yes" : "no");
  if (auto v = list.find(2)) std::printf("list[2] = %s\n", v->c_str());

  list.erase(1);
  std::printf("after erase(1), size = %zu, keys in order:", list.size());
  list.for_each([](int k, const std::string&) { std::printf(" %d", k); });
  std::printf("\n");

  // ---- A lock-free skip list (paper Section 4) --------------------------
  // Same dictionary API, O(log n) expected cost: use it when n is large.
  lf::FRSkipList<long, long> dict;
  for (long k = 0; k < 100'000; ++k) dict.insert(k, k * k);
  std::printf("dict[777] = %ld (of %zu entries)\n", *dict.find(777),
              dict.size());

  // ---- Concurrent use ----------------------------------------------------
  // Every operation is linearizable and lock-free: no operation ever
  // blocks another, and memory reclamation (epoch-based) is built in.
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&dict, t] {
      for (long i = 0; i < 10'000; ++i) {
        const long k = t * 10'000L + i + 200'000L;
        dict.insert(k, k);
        dict.contains(k - 1);
        if (i % 2 == 0) dict.erase(k);
      }
    });
  }
  for (auto& w : workers) w.join();
  std::printf("after concurrent churn: %zu entries\n", dict.size());

  return 0;
}
