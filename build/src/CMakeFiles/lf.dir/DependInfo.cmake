
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lf/chk/linearizability.cpp" "src/CMakeFiles/lf.dir/lf/chk/linearizability.cpp.o" "gcc" "src/CMakeFiles/lf.dir/lf/chk/linearizability.cpp.o.d"
  "/root/repo/src/lf/harness/bench_env.cpp" "src/CMakeFiles/lf.dir/lf/harness/bench_env.cpp.o" "gcc" "src/CMakeFiles/lf.dir/lf/harness/bench_env.cpp.o.d"
  "/root/repo/src/lf/harness/table.cpp" "src/CMakeFiles/lf.dir/lf/harness/table.cpp.o" "gcc" "src/CMakeFiles/lf.dir/lf/harness/table.cpp.o.d"
  "/root/repo/src/lf/instrument/contention.cpp" "src/CMakeFiles/lf.dir/lf/instrument/contention.cpp.o" "gcc" "src/CMakeFiles/lf.dir/lf/instrument/contention.cpp.o.d"
  "/root/repo/src/lf/instrument/counters.cpp" "src/CMakeFiles/lf.dir/lf/instrument/counters.cpp.o" "gcc" "src/CMakeFiles/lf.dir/lf/instrument/counters.cpp.o.d"
  "/root/repo/src/lf/reclaim/epoch.cpp" "src/CMakeFiles/lf.dir/lf/reclaim/epoch.cpp.o" "gcc" "src/CMakeFiles/lf.dir/lf/reclaim/epoch.cpp.o.d"
  "/root/repo/src/lf/reclaim/hazard.cpp" "src/CMakeFiles/lf.dir/lf/reclaim/hazard.cpp.o" "gcc" "src/CMakeFiles/lf.dir/lf/reclaim/hazard.cpp.o.d"
  "/root/repo/src/lf/workload/adversary.cpp" "src/CMakeFiles/lf.dir/lf/workload/adversary.cpp.o" "gcc" "src/CMakeFiles/lf.dir/lf/workload/adversary.cpp.o.d"
  "/root/repo/src/lf/workload/runner.cpp" "src/CMakeFiles/lf.dir/lf/workload/runner.cpp.o" "gcc" "src/CMakeFiles/lf.dir/lf/workload/runner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
