# Empty dependencies file for lf.
# This may be replaced when dependencies are built.
