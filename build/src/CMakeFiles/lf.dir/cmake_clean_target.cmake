file(REMOVE_RECURSE
  "liblf.a"
)
