file(REMOVE_RECURSE
  "CMakeFiles/lf.dir/lf/chk/linearizability.cpp.o"
  "CMakeFiles/lf.dir/lf/chk/linearizability.cpp.o.d"
  "CMakeFiles/lf.dir/lf/harness/bench_env.cpp.o"
  "CMakeFiles/lf.dir/lf/harness/bench_env.cpp.o.d"
  "CMakeFiles/lf.dir/lf/harness/table.cpp.o"
  "CMakeFiles/lf.dir/lf/harness/table.cpp.o.d"
  "CMakeFiles/lf.dir/lf/instrument/contention.cpp.o"
  "CMakeFiles/lf.dir/lf/instrument/contention.cpp.o.d"
  "CMakeFiles/lf.dir/lf/instrument/counters.cpp.o"
  "CMakeFiles/lf.dir/lf/instrument/counters.cpp.o.d"
  "CMakeFiles/lf.dir/lf/reclaim/epoch.cpp.o"
  "CMakeFiles/lf.dir/lf/reclaim/epoch.cpp.o.d"
  "CMakeFiles/lf.dir/lf/reclaim/hazard.cpp.o"
  "CMakeFiles/lf.dir/lf/reclaim/hazard.cpp.o.d"
  "CMakeFiles/lf.dir/lf/workload/adversary.cpp.o"
  "CMakeFiles/lf.dir/lf/workload/adversary.cpp.o.d"
  "CMakeFiles/lf.dir/lf/workload/runner.cpp.o"
  "CMakeFiles/lf.dir/lf/workload/runner.cpp.o.d"
  "liblf.a"
  "liblf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
