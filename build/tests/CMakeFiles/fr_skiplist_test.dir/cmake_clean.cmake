file(REMOVE_RECURSE
  "CMakeFiles/fr_skiplist_test.dir/fr_skiplist_basic_test.cpp.o"
  "CMakeFiles/fr_skiplist_test.dir/fr_skiplist_basic_test.cpp.o.d"
  "CMakeFiles/fr_skiplist_test.dir/fr_skiplist_concurrent_test.cpp.o"
  "CMakeFiles/fr_skiplist_test.dir/fr_skiplist_concurrent_test.cpp.o.d"
  "CMakeFiles/fr_skiplist_test.dir/fr_skiplist_rc_test.cpp.o"
  "CMakeFiles/fr_skiplist_test.dir/fr_skiplist_rc_test.cpp.o.d"
  "CMakeFiles/fr_skiplist_test.dir/fr_skiplist_whitebox_test.cpp.o"
  "CMakeFiles/fr_skiplist_test.dir/fr_skiplist_whitebox_test.cpp.o.d"
  "fr_skiplist_test"
  "fr_skiplist_test.pdb"
  "fr_skiplist_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fr_skiplist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
