# Empty dependencies file for fr_skiplist_test.
# This may be replaced when dependencies are built.
