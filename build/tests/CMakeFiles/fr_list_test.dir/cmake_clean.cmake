file(REMOVE_RECURSE
  "CMakeFiles/fr_list_test.dir/fr_list_basic_test.cpp.o"
  "CMakeFiles/fr_list_test.dir/fr_list_basic_test.cpp.o.d"
  "CMakeFiles/fr_list_test.dir/fr_list_concurrent_test.cpp.o"
  "CMakeFiles/fr_list_test.dir/fr_list_concurrent_test.cpp.o.d"
  "CMakeFiles/fr_list_test.dir/fr_list_helping_test.cpp.o"
  "CMakeFiles/fr_list_test.dir/fr_list_helping_test.cpp.o.d"
  "CMakeFiles/fr_list_test.dir/fr_list_rc_test.cpp.o"
  "CMakeFiles/fr_list_test.dir/fr_list_rc_test.cpp.o.d"
  "CMakeFiles/fr_list_test.dir/fr_list_whitebox_test.cpp.o"
  "CMakeFiles/fr_list_test.dir/fr_list_whitebox_test.cpp.o.d"
  "fr_list_test"
  "fr_list_test.pdb"
  "fr_list_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fr_list_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
