# Empty compiler generated dependencies file for fr_list_test.
# This may be replaced when dependencies are built.
