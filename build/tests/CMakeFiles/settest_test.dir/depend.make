# Empty dependencies file for settest_test.
# This may be replaced when dependencies are built.
