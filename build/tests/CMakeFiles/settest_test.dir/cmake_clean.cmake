file(REMOVE_RECURSE
  "CMakeFiles/settest_test.dir/set_property_test.cpp.o"
  "CMakeFiles/settest_test.dir/set_property_test.cpp.o.d"
  "CMakeFiles/settest_test.dir/set_typed_test.cpp.o"
  "CMakeFiles/settest_test.dir/set_typed_test.cpp.o.d"
  "settest_test"
  "settest_test.pdb"
  "settest_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/settest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
