# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/reclaim_test[1]_include.cmake")
include("/root/repo/build/tests/fr_list_test[1]_include.cmake")
include("/root/repo/build/tests/fr_skiplist_test[1]_include.cmake")
include("/root/repo/build/tests/extras_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/settest_test[1]_include.cmake")
include("/root/repo/build/tests/linearizability_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/schedule_fuzz_test[1]_include.cmake")
