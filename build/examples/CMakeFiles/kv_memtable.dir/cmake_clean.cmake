file(REMOVE_RECURSE
  "CMakeFiles/kv_memtable.dir/kv_memtable.cpp.o"
  "CMakeFiles/kv_memtable.dir/kv_memtable.cpp.o.d"
  "kv_memtable"
  "kv_memtable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_memtable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
