# Empty dependencies file for url_frontier.
# This may be replaced when dependencies are built.
