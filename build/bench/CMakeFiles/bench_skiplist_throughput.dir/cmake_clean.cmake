file(REMOVE_RECURSE
  "CMakeFiles/bench_skiplist_throughput.dir/bench_skiplist_throughput.cpp.o"
  "CMakeFiles/bench_skiplist_throughput.dir/bench_skiplist_throughput.cpp.o.d"
  "bench_skiplist_throughput"
  "bench_skiplist_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_skiplist_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
