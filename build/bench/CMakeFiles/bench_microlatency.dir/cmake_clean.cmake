file(REMOVE_RECURSE
  "CMakeFiles/bench_microlatency.dir/bench_microlatency.cpp.o"
  "CMakeFiles/bench_microlatency.dir/bench_microlatency.cpp.o.d"
  "bench_microlatency"
  "bench_microlatency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_microlatency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
