# Empty compiler generated dependencies file for bench_microlatency.
# This may be replaced when dependencies are built.
