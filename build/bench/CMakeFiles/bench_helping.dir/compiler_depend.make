# Empty compiler generated dependencies file for bench_helping.
# This may be replaced when dependencies are built.
