file(REMOVE_RECURSE
  "CMakeFiles/bench_helping.dir/bench_helping.cpp.o"
  "CMakeFiles/bench_helping.dir/bench_helping.cpp.o.d"
  "bench_helping"
  "bench_helping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_helping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
