# Empty compiler generated dependencies file for bench_skiplist_logn.
# This may be replaced when dependencies are built.
