file(REMOVE_RECURSE
  "CMakeFiles/bench_skiplist_logn.dir/bench_skiplist_logn.cpp.o"
  "CMakeFiles/bench_skiplist_logn.dir/bench_skiplist_logn.cpp.o.d"
  "bench_skiplist_logn"
  "bench_skiplist_logn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_skiplist_logn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
