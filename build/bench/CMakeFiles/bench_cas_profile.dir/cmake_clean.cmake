file(REMOVE_RECURSE
  "CMakeFiles/bench_cas_profile.dir/bench_cas_profile.cpp.o"
  "CMakeFiles/bench_cas_profile.dir/bench_cas_profile.cpp.o.d"
  "bench_cas_profile"
  "bench_cas_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cas_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
