# Empty dependencies file for bench_cas_profile.
# This may be replaced when dependencies are built.
