file(REMOVE_RECURSE
  "CMakeFiles/bench_backlink_ablation.dir/bench_backlink_ablation.cpp.o"
  "CMakeFiles/bench_backlink_ablation.dir/bench_backlink_ablation.cpp.o.d"
  "bench_backlink_ablation"
  "bench_backlink_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_backlink_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
