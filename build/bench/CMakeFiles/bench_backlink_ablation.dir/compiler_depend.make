# Empty compiler generated dependencies file for bench_backlink_ablation.
# This may be replaced when dependencies are built.
