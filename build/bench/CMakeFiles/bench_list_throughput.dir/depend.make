# Empty dependencies file for bench_list_throughput.
# This may be replaced when dependencies are built.
