file(REMOVE_RECURSE
  "CMakeFiles/bench_list_throughput.dir/bench_list_throughput.cpp.o"
  "CMakeFiles/bench_list_throughput.dir/bench_list_throughput.cpp.o.d"
  "bench_list_throughput"
  "bench_list_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_list_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
