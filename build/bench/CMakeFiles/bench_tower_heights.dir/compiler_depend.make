# Empty compiler generated dependencies file for bench_tower_heights.
# This may be replaced when dependencies are built.
