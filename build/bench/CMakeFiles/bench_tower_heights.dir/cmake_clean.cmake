file(REMOVE_RECURSE
  "CMakeFiles/bench_tower_heights.dir/bench_tower_heights.cpp.o"
  "CMakeFiles/bench_tower_heights.dir/bench_tower_heights.cpp.o.d"
  "bench_tower_heights"
  "bench_tower_heights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tower_heights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
