// E13 — finger search: the thread-local hint layer (DESIGN.md §10) against
// head-started searches, on the workloads it was built for.
//
// Matrix: {finger on, finger off} x {flat, chained} tower layout under the
// epoch reclaimer, plus a flat-layout column under the hazard reclaimer
// (publish-then-revalidate fingers: one retained slot per fingered level,
// each holding that level's pred's tower root), at 1, 8 and 16 threads, on
// three key streams:
//
//   * zipf-0.99   — Zipfian popularity with SCRAMBLED positions (the raw
//                   generator puts hot keys at the left edge of the key
//                   space, where a head start is already nearly optimal —
//                   scrambling keeps the skew but moves it off the edge).
//   * repeat-range — scan-like locality: a narrow window of keys reused for
//                   a few hundred operations before jumping.
//   * uniform     — the control: no locality to exploit, so the finger's
//                   validation overhead is all that can show up (< a few
//                   percent, or the layer is mispriced).
//
// The claim under test (ISSUE acceptance): on the localized streams the
// finger-enabled skip list does >= 20% fewer essential steps/op and less
// wall-clock per op than finger-off at every thread count, while uniform
// regresses < 3%. On this repo's single-core CI host the multi-thread
// wall-clock rows measure oversubscribed scheduling, not parallelism —
// steps/op is the schedule-independent headline (see EXPERIMENTS.md).
//
// Output: tables plus machine-readable BENCH_finger.json.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "lf/core/fr_skiplist.h"
#include "lf/core/fr_skiplist_rc.h"
#include "lf/harness/bench_env.h"
#include "lf/harness/json_writer.h"
#include "lf/harness/table.h"
#include "lf/instrument/counters.h"
#include "lf/mem/tower.h"
#include "lf/reclaim/epoch.h"
#include "lf/reclaim/hazard.h"
#include "lf/sync/finger.h"
#include "lf/workload/runner.h"

namespace {

using lf::harness::Table;
namespace wl = lf::workload;

template <typename Layout, typename Finger,
          typename Reclaimer = lf::reclaim::EpochReclaimer>
using Skip =
    lf::FRSkipList<long, long, std::less<long>, Reclaimer, 24, Layout, Finger>;

constexpr std::uint64_t kKeySpace = 4096;
constexpr std::uint64_t kPrefill = 2048;
constexpr std::uint64_t kOpsTotal = 240'000;

struct Workload {
  const char* name;
  wl::KeyDist dist;
  wl::KeyGen::Options opts;
};

const Workload kWorkloads[] = {
    {"zipf-0.99", wl::KeyDist::kZipfian, {.scramble = true}},
    {"repeat-range", wl::KeyDist::kRepeatedRange,
     {.range_width = 64, .range_dwell = 256}},
    {"uniform", wl::KeyDist::kUniform, {}},
};

struct Row {
  std::string layout;
  std::string reclaimer;  // "epoch" | "hazard" (publish-then-revalidate)
  bool finger = false;
  std::string workload;
  int threads = 0;
  double mops = 0;
  double ns_per_op = 0;
  double steps_per_op = 0;
  double hit_rate = 0;
  double skip_per_op = 0;
};

template <typename Layout, typename Finger,
          typename Reclaimer = lf::reclaim::EpochReclaimer>
Row run_one(const char* layout_name, const char* reclaimer_name,
            bool finger_on, const Workload& w, int threads) {
  wl::RunConfig cfg;
  cfg.threads = threads;
  cfg.ops_per_thread = kOpsTotal / static_cast<std::uint64_t>(threads);
  cfg.key_space = kKeySpace;
  cfg.prefill = kPrefill;
  cfg.mix = {10, 10};  // 10i/10d/80s, the read-leaning standard grid point
  cfg.dist = w.dist;
  cfg.keygen = w.opts;
  cfg.seed = 0xf168e4;
  cfg.measure_contention = false;

  Skip<Layout, Finger, Reclaimer> set;
  wl::prefill(set, cfg);
  const auto res = wl::run_workload(set, cfg);

  Row r;
  r.layout = layout_name;
  r.reclaimer = reclaimer_name;
  r.finger = finger_on;
  r.workload = w.name;
  r.threads = threads;
  r.mops = res.mops_per_sec();
  r.ns_per_op = res.total_ops == 0
                    ? 0
                    : res.seconds * 1e9 / static_cast<double>(res.total_ops);
  r.steps_per_op = res.steps_per_op();
  r.hit_rate = res.steps.finger_hit_rate();
  r.skip_per_op = static_cast<double>(res.steps.finger_skip) /
                  static_cast<double>(res.total_ops);
  lf::reclaim::EpochDomain::global().drain();
  lf::reclaim::HazardDomain::global().scan();
  return r;
}

template <typename Layout>
void run_layout(const char* layout_name, std::vector<Row>& rows) {
  for (const Workload& w : kWorkloads) {
    for (int threads : {1, 8, 16}) {
      rows.push_back(run_one<Layout, lf::sync::FingerOff>(
          layout_name, "epoch", false, w, threads));
      rows.push_back(run_one<Layout, lf::sync::FingerOn>(layout_name, "epoch",
                                                         true, w, threads));
    }
  }
}

// The hazard-reclaimer configuration (publish-then-revalidate fingers).
// Flat towers only: multi-level hazard fingers need the flat layout's
// one-block-per-tower retirement (a chained tower degrades to a level-1
// finger), so the chained axis would only re-measure that restriction.
void run_hazard(std::vector<Row>& rows) {
  using HP = lf::reclaim::HazardReclaimer;
  for (const Workload& w : kWorkloads) {
    for (int threads : {1, 8, 16}) {
      rows.push_back(run_one<lf::mem::FlatTowers, lf::sync::FingerOff, HP>(
          "flat", "hazard", false, w, threads));
      rows.push_back(run_one<lf::mem::FlatTowers, lf::sync::FingerOn, HP>(
          "flat", "hazard", true, w, threads));
    }
  }
}

// The reference-counted variant (FRSkipListRC): stamp-validated fingers
// over a type-stable arena. Its own class, so it gets its own run_one.
template <typename Finger>
Row run_one_rc(bool finger_on, const Workload& w, int threads) {
  wl::RunConfig cfg;
  cfg.threads = threads;
  cfg.ops_per_thread = kOpsTotal / static_cast<std::uint64_t>(threads);
  cfg.key_space = kKeySpace;
  cfg.prefill = kPrefill;
  cfg.mix = {10, 10};
  cfg.dist = w.dist;
  cfg.keygen = w.opts;
  cfg.seed = 0xf168e4;
  cfg.measure_contention = false;

  lf::FRSkipListRC<long, long, std::less<long>, 24, Finger> set;
  wl::prefill(set, cfg);
  const auto res = wl::run_workload(set, cfg);

  Row r;
  r.layout = "arena";
  r.reclaimer = "rc";
  r.finger = finger_on;
  r.workload = w.name;
  r.threads = threads;
  r.mops = res.mops_per_sec();
  r.ns_per_op = res.total_ops == 0
                    ? 0
                    : res.seconds * 1e9 / static_cast<double>(res.total_ops);
  r.steps_per_op = res.steps_per_op();
  r.hit_rate = res.steps.finger_hit_rate();
  r.skip_per_op = static_cast<double>(res.steps.finger_skip) /
                  static_cast<double>(res.total_ops);
  return r;
}

void run_rc(std::vector<Row>& rows) {
  for (const Workload& w : kWorkloads) {
    for (int threads : {1, 8, 16}) {
      rows.push_back(run_one_rc<lf::sync::FingerOff>(false, w, threads));
      rows.push_back(run_one_rc<lf::sync::FingerOn>(true, w, threads));
    }
  }
}

const Row* find_row(const std::vector<Row>& rows, const std::string& layout,
                    const std::string& reclaimer, bool finger,
                    const char* workload, int threads) {
  for (const Row& r : rows) {
    if (r.layout == layout && r.reclaimer == reclaimer &&
        r.finger == finger && r.workload == workload &&
        r.threads == threads) {
      return &r;
    }
  }
  return nullptr;
}

void emit_json(const std::vector<Row>& rows) {
  lf::harness::JsonWriter j;
  j.begin_object();
  j.field("experiment", "E13 finger search");
  j.field("key_space", kKeySpace);
  j.field("total_ops", kOpsTotal);
  j.field("mix", "10i/10d/80s");
  j.key("configs").begin_array();
  for (const Row& r : rows) {
    j.begin_object();
    j.field("layout", r.layout.c_str());
    j.field("reclaimer", r.reclaimer.c_str());
    j.field("finger", r.finger);
    j.field("workload", r.workload.c_str());
    j.field("threads", static_cast<std::uint64_t>(r.threads));
    j.field("mops_per_sec", r.mops);
    j.field("ns_per_op", r.ns_per_op);
    j.field("essential_steps_per_op", r.steps_per_op);
    j.field("finger_hit_rate", r.hit_rate);
    j.field("finger_skip_per_op", r.skip_per_op);
    j.end_object();
  }
  j.end_array();
  j.end_object();
  std::ofstream f("BENCH_finger.json");
  f << j.str() << "\n";
  std::cout << "wrote BENCH_finger.json\n";
}

}  // namespace

int main() {
  lf::harness::print_environment(
      "E13 (finger search)",
      "per-thread search hints start where the last search ended; localized "
      "workloads should drop steps/op sharply, uniform must not regress");

  std::vector<Row> rows;
  run_layout<lf::mem::FlatTowers>("flat", rows);
  run_layout<lf::mem::ChainedTowers>("chained", rows);
  run_hazard(rows);
  run_rc(rows);

  for (const Workload& w : kWorkloads) {
    lf::harness::print_section(std::string("workload: ") + w.name);
    Table t({"layout", "reclaim", "finger", "threads", "Mops/s", "ns/op",
             "steps/op", "hit rate", "skip/op"});
    for (const Row& r : rows) {
      if (r.workload != w.name) continue;
      t.add_row({r.layout, r.reclaimer, r.finger ? "on" : "off",
                 std::to_string(r.threads), Table::num(r.mops, 3),
                 Table::num(r.ns_per_op, 0), Table::num(r.steps_per_op, 2),
                 Table::num(r.hit_rate, 3), Table::num(r.skip_per_op, 2)});
    }
    t.print();
  }

  // Acceptance summary: steps/op reduction of finger-on vs finger-off.
  lf::harness::print_section("finger-on steps/op reduction vs finger-off");
  Table s({"layout", "reclaim", "workload", "threads", "off", "on",
           "reduction"});
  struct Config {
    const char* layout;
    const char* reclaimer;
  };
  for (const Config& c : {Config{"flat", "epoch"}, Config{"chained", "epoch"},
                          Config{"flat", "hazard"}, Config{"arena", "rc"}}) {
    for (const Workload& w : kWorkloads) {
      for (int threads : {1, 8, 16}) {
        const Row* off =
            find_row(rows, c.layout, c.reclaimer, false, w.name, threads);
        const Row* on =
            find_row(rows, c.layout, c.reclaimer, true, w.name, threads);
        if (off == nullptr || on == nullptr || off->steps_per_op == 0)
          continue;
        const double red = 1.0 - on->steps_per_op / off->steps_per_op;
        s.add_row({c.layout, c.reclaimer, w.name, std::to_string(threads),
                   Table::num(off->steps_per_op, 2),
                   Table::num(on->steps_per_op, 2),
                   Table::num(100.0 * red, 1) + "%"});
      }
    }
  }
  s.print();
  std::cout << "Expected shape: zipf-0.99 and repeat-range reductions >= 20%\n"
               "at every thread count; uniform within a few percent of zero\n"
               "(validation cost only). The hazard rows run the flat layout,\n"
               "where each fingered level retains its pred's tower root in\n"
               "its own hazard slot, so their reductions track the epoch\n"
               "rows. ns/op follows steps/op at 1 thread; multi-thread\n"
               "wall clock on a single core mostly measures\n"
               "oversubscription.\n\n";

  emit_json(rows);
  return 0;
}
