// E9 — memory-reclamation overhead (Section 5: "We have not explicitly
// incorporated a memory management technique, but a possible approach is
// to use Valois's reference counting method").
//
// This repository's substitution: epoch-based reclamation as the default
// (safe for backlink traversal) and hazard pointers for the Michael
// baseline. This bench quantifies what each policy costs over the paper's
// leak-everything setting, on a 50/50 insert/delete churn that maximizes
// retirement traffic.
#include <iostream>
#include <string>

#include "lf/baselines/michael_list.h"
#include "lf/core/fr_list.h"
#include "lf/core/fr_list_rc.h"
#include "lf/core/fr_skiplist.h"
#include "lf/core/fr_skiplist_rc.h"
#include "lf/harness/bench_env.h"
#include "lf/harness/table.h"
#include "lf/reclaim/epoch.h"
#include "lf/reclaim/hazard.h"
#include "lf/reclaim/leaky.h"
#include "lf/workload/runner.h"

namespace {

constexpr int kThreads = 4;
constexpr std::uint64_t kOps = 120'000;

lf::workload::RunConfig config() {
  lf::workload::RunConfig cfg;
  cfg.threads = kThreads;
  cfg.ops_per_thread = kOps / kThreads;
  cfg.key_space = 512;
  cfg.prefill = 256;
  cfg.mix = {50, 50};
  cfg.seed = 31;
  return cfg;
}

template <typename Set>
void row(lf::harness::Table& table, const char* name, Set& set) {
  const auto cfg = config();
  lf::workload::prefill(set, cfg);
  const auto res = lf::workload::run_workload(set, cfg);
  table.add_row(
      {name, lf::harness::Table::num(res.mops_per_sec(), 2),
       lf::harness::Table::num(res.steps_per_op(), 1),
       lf::harness::Table::num(
           static_cast<double>(res.steps.node_retired) /
               static_cast<double>(res.total_ops),
           3),
       std::to_string(res.steps.node_retired),
       std::to_string(res.steps.node_freed)});
}

}  // namespace

int main() {
  lf::harness::print_environment(
      "E9 (Section 5)",
      "reclamation policy cost: leak-everything (the paper's setting) vs "
      "epoch-based vs hazard pointers");

  lf::harness::print_section(
      "50i/50d churn, 4 threads, 512-key space, 120k ops");
  lf::harness::Table table({"configuration", "Mops/s", "steps/op",
                            "retired/op", "retired", "freed (in run)"});
  {
    lf::FRList<long, long, std::less<long>, lf::reclaim::LeakyReclaimer> s;
    row(table, "FRList + Leaky (paper setting)", s);
  }
  {
    lf::reclaim::EpochDomain domain;
    lf::FRList<long, long> s{lf::reclaim::EpochReclaimer(domain)};
    row(table, "FRList + Epoch", s);
  }
  {
    lf::reclaim::EpochDomain domain;
    lf::FRSkipList<long, long> s{lf::reclaim::EpochReclaimer(domain)};
    row(table, "FRSkipList + Epoch", s);
  }
  {
    lf::FRListRC<long, long> s;
    row(table, "FRListRC + RefCounting (Valois)", s);
  }
  {
    lf::FRSkipListRC<long, long> s;
    row(table, "FRSkipListRC + RefCounting", s);
  }
  {
    lf::MichaelList<long, long, std::less<long>,
                    lf::reclaim::LeakyReclaimer> s;
    row(table, "MichaelList + Leaky", s);
  }
  {
    lf::reclaim::EpochDomain domain;
    lf::MichaelList<long, long> s{};
    row(table, "MichaelList + Epoch(global)", s);
  }
  {
    lf::reclaim::HazardDomain domain;
    lf::MichaelListHP<long, long> s(domain);
    row(table, "MichaelListHP + HazardPtrs", s);
  }
  table.print();

  std::cout << "Expected shape: epoch guards cost a few percent over leaky\n"
               "(two atomic ops per operation); hazard pointers cost more\n"
               "(a protect+validate fence per traversal hop). freed < \n"
               "retired is normal — the remainder drains at teardown.\n";
  return 0;
}
