// E8 — helping (Sections 3.1, 3.3): "To preserve the lock-freedom
// property, we allow processes to help one another with deletions."
//
// Delete-heavy hotspot at growing thread counts. Measured per operation:
// HelpMarked/HelpFlagged invocations, C&S failure rate, and the average
// point contention. The paper's analysis bills at most O(c(S)) extra steps
// per operation, so helps/op must track the contention level, not the
// operation count or list size.
#include <iostream>
#include <string>

#include "lf/core/fr_list.h"
#include "lf/core/fr_skiplist.h"
#include "lf/harness/bench_env.h"
#include "lf/harness/table.h"
#include "lf/workload/runner.h"

namespace {

template <typename Set>
void sweep(const char* name, std::uint64_t key_space) {
  lf::harness::print_section(name);
  lf::harness::Table table({"threads", "helps/op", "HelpFlagged/op",
                            "HelpMarked/op", "CAS fail/op", "avg c(S)",
                            "steps/op"});
  for (int t : {1, 2, 4, 8, 16}) {
    Set set;
    lf::workload::RunConfig cfg;
    cfg.threads = t;
    cfg.ops_per_thread = 60'000 / static_cast<std::uint64_t>(t);
    cfg.key_space = key_space;
    cfg.prefill = key_space / 2;
    cfg.mix = {45, 45};
    cfg.seed = 29;
    lf::workload::prefill(set, cfg);
    const auto res = lf::workload::run_workload(set, cfg);
    const double ops = static_cast<double>(res.total_ops);
    table.add_row(
        {std::to_string(t),
         lf::harness::Table::num(
             static_cast<double>(res.steps.help_marked +
                                 res.steps.help_flagged) /
                 ops,
             4),
         lf::harness::Table::num(
             static_cast<double>(res.steps.help_flagged) / ops, 4),
         lf::harness::Table::num(
             static_cast<double>(res.steps.help_marked) / ops, 4),
         lf::harness::Table::num(
             static_cast<double>(res.steps.cas_failures()) / ops, 4),
         lf::harness::Table::num(res.avg_contention, 2),
         lf::harness::Table::num(res.steps_per_op(), 1)});
  }
  table.print();
}

}  // namespace

int main() {
  lf::harness::print_environment(
      "E8 (Sections 3.1, 3.3)",
      "helping traffic per operation is bounded by the contention, "
      "preserving lock-freedom without runaway costs");

  sweep<lf::FRList<long, long>>("FRList, 64-key hotspot, 45i/45d/10s", 64);
  sweep<lf::FRSkipList<long, long>>(
      "FRSkipList, 64-key hotspot, 45i/45d/10s", 64);

  std::cout << "Note: every deletion calls HelpMarked/HelpFlagged at least\n"
               "once for its own completion (the ~0.5 baseline under the\n"
               "45% delete mix); the CONTENTION-driven component is the\n"
               "growth of helps/op and CAS fail/op with the thread count,\n"
               "which must track avg c(S).\n";
  return 0;
}
