// E7 — ablation of the flag bit (Section 3.1):
//
//   "The introduction of backlinks alone, however, does not guarantee the
//    desired operation complexity. The problem is that long chains of
//    backlinks can be traversed by the same process many times. This
//    happens when these chains grow towards the right, i.e. when backlink
//    pointers are set to marked nodes ... We eliminate this possibility by
//    introducing flag bits."
//
// Part (a) builds the pathology DETERMINISTICALLY. Schedule: keys 1..m are
// in the list; an inserter has located the end (predecessor = node m);
// deleters have each located their victim's predecessor, then complete
// left-to-right with those now-stale hints:
//
//   * FRListNoFlag: completing the deletion of node i stores backlink(i) =
//     node i-1, which is ALREADY MARKED for every i >= 3 — the backlink
//     chain from node m reaches the unmarked anchor only after m-1 hops.
//   * FRList: the flagging C&S validates the predecessor atomically, so a
//     deletion's backlink always targets a node that is unmarked at set
//     time; under the same left-to-right deletion order every backlink
//     points directly at the anchor and recovery is one hop, independent
//     of m.
//
// Part (b) repeats the stochastic hotspot for completeness (on few-core
// hosts it produces little interference; the deterministic part carries
// the claim).
#include <iostream>
#include <string>
#include <vector>

#include "lf/core/fr_list.h"
#include "lf/core/fr_list_noflag.h"
#include "lf/harness/bench_env.h"
#include "lf/harness/table.h"
#include "lf/instrument/counters.h"
#include "lf/reclaim/leaky.h"
#include "lf/workload/runner.h"

namespace {

using FR =
    lf::FRList<long, long, std::less<long>, lf::reclaim::LeakyReclaimer>;
using NoFlag =
    lf::FRListNoFlag<long, long, std::less<long>, lf::reclaim::LeakyReclaimer>;

// Recovery cost (backlink hops) of one insertion that located before m
// stale-hint deletions, for the flagless variant.
std::uint64_t noflag_recovery_chain(long m) {
  NoFlag list;
  for (long k = 0; k <= m; ++k) list.insert(k, k);  // 0 is the anchor

  // The inserter locates the end of the list first: predecessor = node m.
  NoFlag::InsertCursor ins;
  list.insert_locate(m + 1, m + 1, ins);

  // Deleters locate their victims' predecessors, then complete
  // left-to-right with the now-stale hints: backlink(i) = node i-1, which
  // is already marked for every i >= 2.
  std::vector<NoFlag::EraseCursor> cursors(static_cast<std::size_t>(m));
  for (long i = 1; i <= m; ++i)
    list.erase_locate(i, cursors[static_cast<std::size_t>(i - 1)]);
  for (long i = 1; i <= m; ++i)
    list.erase_complete(cursors[static_cast<std::size_t>(i - 1)]);

  // Recover from node m: the insert's C&S fails against the marked node
  // and walks the backlink chain.
  const auto before = lf::stats::aggregate();
  list.insert_complete(ins);
  const auto delta = lf::stats::aggregate() - before;
  return delta.backlink_traversal;
}

// Same scenario for the real FRList: deletions run left-to-right as whole
// operations (the flag step makes a stale-hint completion impossible — the
// seam the ablation exposes does not exist here).
std::uint64_t fr_recovery_chain(long m) {
  FR list;
  for (long k = 0; k <= m; ++k) list.insert(k, k);
  FR::InsertCursor cur;
  list.insert_locate(m + 1, m + 1, cur);  // located: predecessor = node m
  for (long i = 1; i <= m; ++i) list.erase(i);
  const auto before = lf::stats::aggregate();
  list.insert_complete(cur);
  const auto delta = lf::stats::aggregate() - before;
  return delta.backlink_traversal;
}

void stochastic_hotspot() {
  lf::harness::print_section(
      "(b) stochastic hotspot (8 threads, 45i/45d/10s, 48 keys)");
  lf::harness::Table table({"impl", "recoveries", "mean chain", "max chain",
                            "backlinks/op"});
  auto run = [&](const char* name, auto& set) {
    lf::stats::reset_chain_hist();
    lf::workload::RunConfig cfg;
    cfg.threads = 8;
    cfg.ops_per_thread = 8'000;
    cfg.key_space = 48;
    cfg.prefill = 24;
    cfg.mix = {45, 45};
    cfg.seed = 23;
    lf::workload::prefill(set, cfg);
    const auto res = lf::workload::run_workload(set, cfg);
    const auto h = lf::stats::aggregate_chain_hist();
    table.add_row(
        {name, std::to_string(h.count()),
         lf::harness::Table::num(h.mean(), 2), std::to_string(h.max()),
         lf::harness::Table::num(
             static_cast<double>(res.steps.backlink_traversal) /
                 static_cast<double>(res.total_ops),
             5)});
  };
  lf::FRList<long, long> with_flags;
  run("FRList (flags)", with_flags);
  lf::FRListNoFlag<long, long> without;
  run("FRListNoFlag", without);
  table.print();
}

}  // namespace

int main() {
  lf::harness::print_environment(
      "E7 (Section 3.1)",
      "flag bits prevent backlinks from targeting marked nodes; without "
      "them recovery chains grow with the deletion count");

  lf::harness::print_section(
      "(a) deterministic stale-hint schedule: recovery cost after m "
      "deletions");
  lf::harness::Table table({"m (deletions)", "FRList hops", "NoFlag hops",
                            "ratio"});
  for (long m : {8L, 16L, 32L, 64L, 128L, 256L, 512L}) {
    const auto fr = fr_recovery_chain(m);
    const auto nf = noflag_recovery_chain(m);
    table.add_row({std::to_string(m), std::to_string(fr),
                   std::to_string(nf),
                   lf::harness::Table::ratio(static_cast<double>(nf),
                                             static_cast<double>(fr))});
  }
  table.print();
  std::cout << "Expected shape: FRList recovers in O(1) hops regardless of\n"
               "m; the flagless variant's chain grows linearly in m.\n\n";

  stochastic_hotspot();
  return 0;
}
