// Micro-latency benchmarks (google-benchmark): per-operation wall costs of
// the core structures at several sizes, single-threaded and with
// benchmark's thread support. Complements the experiment binaries (E1-E10),
// which report the paper's step metric; this one is for profiling-grade
// per-op timing (allocation, cache effects, guard overhead).
#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <mutex>

#include "lf/baselines/harris_list.h"
#include "lf/core/fr_list.h"
#include "lf/core/fr_skiplist.h"
#include "lf/util/random.h"

namespace {

// One shared, prefilled instance per (type, size): reused across benchmark
// repetitions and shared by the Threads() variants. Deliberately leaked at
// process exit.
template <typename Set>
Set& shared_set(long n) {
  static std::mutex mu;
  static auto* sets = new std::map<long, std::unique_ptr<Set>>;
  std::lock_guard lock(mu);
  auto& slot = (*sets)[n];
  if (!slot) {
    slot = std::make_unique<Set>();
    for (long k = 0; k < n; ++k) slot->insert(2 * k, k);  // evens only
  }
  return *slot;
}

template <typename Set>
void BM_Contains(benchmark::State& state) {
  Set& set = shared_set<Set>(state.range(0));
  lf::Xoshiro256 rng(1234 + static_cast<unsigned>(state.thread_index()));
  const auto span = static_cast<std::uint64_t>(2 * state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        set.contains(static_cast<long>(rng.below(span))));
  }
  state.SetItemsProcessed(state.iterations());
}

template <typename Set>
void BM_InsertErasePair(benchmark::State& state) {
  Set& set = shared_set<Set>(state.range(0));
  lf::Xoshiro256 rng(99 + static_cast<unsigned>(state.thread_index()));
  const auto span = static_cast<std::uint64_t>(2 * state.range(0));
  for (auto _ : state) {
    const long k = static_cast<long>(rng.below(span)) | 1;  // odd keys only
    set.insert(k, k);
    set.erase(k);
  }
  state.SetItemsProcessed(2 * state.iterations());
}

using FR = lf::FRList<long, long>;
using Skip = lf::FRSkipList<long, long>;
using Harris = lf::HarrisList<long, long>;

}  // namespace

BENCHMARK(BM_Contains<FR>)->Arg(256)->Arg(2048);
BENCHMARK(BM_Contains<Skip>)->Arg(2048)->Arg(65536);
BENCHMARK(BM_Contains<Harris>)->Arg(256)->Arg(2048);
BENCHMARK(BM_InsertErasePair<FR>)->Arg(256);
BENCHMARK(BM_InsertErasePair<Skip>)->Arg(2048);
BENCHMARK(BM_InsertErasePair<Harris>)->Arg(256);
BENCHMARK(BM_Contains<Skip>)->Arg(16384)->Threads(4)->UseRealTime();
BENCHMARK(BM_InsertErasePair<Skip>)->Arg(2048)->Threads(4)->UseRealTime();

BENCHMARK_MAIN();
