// E12 — recovery cost under forced C&S failures (chaos layer, mode 2).
//
// The paper's Section 4 contrast, made deterministic: when an operation's
// C&S fails, Fomitchev-Ruppert recovers locally (backlink walk from the
// failure point) while the Harris/Fraser designs restart the search from
// the head. Real contention produces failures stochastically; here the
// chaos layer forces k of every m attempts at the *insertion* C&S site to
// fail, so both designs face an identical, reproducible failure train and
// the steps/op gap is attributable to the recovery policy alone.
//
// Forced failures count as C&S attempts (they are steps the algorithm
// really would execute), so essential steps/op includes the failure train
// itself plus whatever recovery it triggers.
//
// Built in every mode: with -DLF_CHAOS=OFF this binary statically verifies
// that LF_CHAOS_POINT() expands to `((void)0)` — the zero-cost-when-off
// guarantee — and runs the uninjected baseline table only.
#include <iostream>
#include <string>

#include "lf/baselines/harris_list.h"
#include "lf/baselines/restart_skiplist.h"
#include "lf/chaos/chaos.h"
#include "lf/core/fr_list.h"
#include "lf/core/fr_skiplist.h"
#include "lf/harness/bench_env.h"
#include "lf/harness/table.h"
#include "lf/instrument/counters.h"
#include "lf/workload/runner.h"

namespace {

namespace chaos = lf::chaos;

// ---- Static zero-cost check (both modes) ---------------------------------
#define LF_E12_STR2(x) #x
#define LF_E12_STR(x) LF_E12_STR2(x)

constexpr bool str_eq(const char* a, const char* b) {
  while (*a && *a == *b) {
    ++a;
    ++b;
  }
  return *a == *b;
}

#if !LF_CHAOS
// The whole point of the compile-time gate: with chaos off, an injection
// point is literally a no-op expression, not a call into a stub.
static_assert(str_eq(LF_E12_STR(LF_CHAOS_POINT(kListInsertCas)), "((void)0)"),
              "LF_CHAOS_POINT must compile to nothing when LF_CHAOS is off");
#endif

lf::workload::RunConfig config() {
  lf::workload::RunConfig cfg;
  cfg.threads = 4;
  cfg.ops_per_thread = 20'000;
  cfg.key_space = 512;
  cfg.prefill = 256;
  cfg.mix = {40, 40};  // 40% insert / 40% erase / 20% search
  cfg.seed = 1207;
  return cfg;
}

struct Row {
  double steps_per_op;
  double backlinks_per_op;
  double restarts_per_op;
};

template <typename Set>
Row measure([[maybe_unused]] chaos::Site insert_site,
            [[maybe_unused]] unsigned fail_per_16) {
#if LF_CHAOS
  chaos::reset();
  if (fail_per_16 > 0)
    chaos::arm_cas_failure_pattern(insert_site, fail_per_16, 16);
#endif
  Set set;
  const auto cfg = config();
  lf::workload::prefill(set, cfg);
  const auto res = lf::workload::run_workload(set, cfg);
#if LF_CHAOS
  chaos::reset();
#endif
  const auto ops = static_cast<double>(res.total_ops);
  return Row{res.steps_per_op(),
             static_cast<double>(res.steps.backlink_traversal) / ops,
             static_cast<double>(res.steps.restart) / ops};
}

void compare(const char* title, const char* fr_name, const char* base_name,
             Row (*fr_run)(unsigned), Row (*base_run)(unsigned)) {
  lf::harness::print_section(title);
  lf::harness::Table table({"forced fails /16", fr_name + std::string(" steps/op"),
                            base_name + std::string(" steps/op"), "ratio",
                            "backlinks/op", "restarts/op"});
  for (unsigned f : {0u, 1u, 2u, 4u, 8u}) {
    const Row fr = fr_run(f);
    const Row base = base_run(f);
    table.add_row({std::to_string(f),
                   lf::harness::Table::num(fr.steps_per_op, 2),
                   lf::harness::Table::num(base.steps_per_op, 2),
                   lf::harness::Table::ratio(base.steps_per_op,
                                             fr.steps_per_op),
                   lf::harness::Table::num(fr.backlinks_per_op, 4),
                   lf::harness::Table::num(base.restarts_per_op, 4)});
#if !LF_CHAOS
    break;  // injection compiled out: only the f=0 baseline is meaningful
#endif
  }
  table.print();
}

Row run_fr_list(unsigned f) {
  return measure<lf::FRList<long, long>>(chaos::Site::kListInsertCas, f);
}
Row run_harris(unsigned f) {
  return measure<lf::HarrisList<long, long>>(chaos::Site::kBaseInsertCas, f);
}
Row run_fr_skip(unsigned f) {
  return measure<lf::FRSkipList<long, long>>(chaos::Site::kSkipInsertCas, f);
}
Row run_restart_skip(unsigned f) {
  return measure<lf::RestartSkipList<long, long>>(chaos::Site::kBaseInsertCas,
                                                  f);
}

}  // namespace

int main() {
  lf::harness::print_environment(
      "E12 (chaos layer)",
      "under identical forced C&S-failure trains, backlink recovery keeps "
      "steps/op lower than restart-from-the-head recovery");

  if (!chaos::kCompiledIn) {
    std::cout << "LF_CHAOS is OFF: injection is compiled out "
                 "(LF_CHAOS_POINT == ((void)0), statically verified).\n"
                 "Reporting the uninjected baseline only; reconfigure with "
                 "-DLF_CHAOS=ON for the failure-train sweep.\n\n";
  }

  compare("(a) ordered lists: forced failures at the insertion C&S",
          "FRList", "HarrisList", &run_fr_list, &run_harris);
  std::cout << '\n';
  compare("(b) skip lists: forced failures at the insertion C&S",
          "FRSkipList", "RestartSkipList", &run_fr_skip, &run_restart_skip);

  std::cout << "\nExpected shape: at f=0 the designs are comparable; as the\n"
               "failure train lengthens, HarrisList/RestartSkipList pay a\n"
               "full restart from the head per forced failure while\n"
               "FRList/FRSkipList recover locally from the failure point (a\n"
               "backlink walk when the predecessor was really marked, a local\n"
               "re-search otherwise), so their steps/op stays flat and the\n"
               "ratio grows with f.\n";
  return 0;
}
