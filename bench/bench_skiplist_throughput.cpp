// E4 — skip-list comparison: the paper's design (FR levels with backlinks
// and flags) vs a Fraser/Harris-style restart skip list (models reference
// [2]) vs a reader/writer-locked Pugh skip list (models [11], [13]).
#include <iostream>
#include <string>

#include "lf/baselines/restart_skiplist.h"
#include "lf/baselines/rwlock_skiplist.h"
#include "lf/core/fr_skiplist.h"
#include "lf/harness/bench_env.h"
#include "lf/harness/table.h"
#include "lf/workload/runner.h"

namespace {

template <typename Set>
lf::workload::RunResult measure(int threads, std::uint64_t n,
                                lf::workload::OpMix mix,
                                std::uint64_t total_ops) {
  Set set;
  lf::workload::RunConfig cfg;
  cfg.threads = threads;
  cfg.ops_per_thread = total_ops / static_cast<std::uint64_t>(threads);
  cfg.key_space = 2 * n;
  cfg.prefill = n;
  cfg.mix = mix;
  cfg.seed = 13;
  lf::workload::prefill(set, cfg);
  return lf::workload::run_workload(set, cfg);
}

struct Impl {
  const char* name;
  lf::workload::RunResult (*run)(int, std::uint64_t, lf::workload::OpMix,
                                 std::uint64_t);
};

const Impl kImpls[] = {
    {"FRSkipList (paper)", &measure<lf::FRSkipList<long, long>>},
    {"RestartSkipList", &measure<lf::RestartSkipList<long, long>>},
    {"RWLockSkipList", &measure<lf::RWLockSkipList<long, long>>},
};

void grid(std::uint64_t n, lf::workload::OpMix mix, std::uint64_t ops) {
  lf::harness::print_section("n = " + std::to_string(n) + ", mix " +
                             mix.name());
  lf::harness::Table table({"impl", "t=1 Mops", "t=2 Mops", "t=4 Mops",
                            "t=8 Mops", "steps/op (t=4)", "restarts/op"});
  for (const Impl& impl : kImpls) {
    std::string cells[4];
    double steps4 = 0, restarts4 = 0;
    int i = 0;
    for (int t : {1, 2, 4, 8}) {
      const auto res = impl.run(t, n, mix, ops);
      cells[i++] = lf::harness::Table::num(res.mops_per_sec(), 2);
      if (t == 4) {
        steps4 = res.steps_per_op();
        restarts4 = static_cast<double>(res.steps.restart) /
                    static_cast<double>(res.total_ops);
      }
    }
    table.add_row({impl.name, cells[0], cells[1], cells[2], cells[3],
                   lf::harness::Table::num(steps4, 1),
                   lf::harness::Table::num(restarts4, 4)});
  }
  table.print();
}

}  // namespace

int main() {
  lf::harness::print_environment(
      "E4 (Section 4, Section 2)",
      "FR skip list is competitive with restart-style lock-free skip lists "
      "and beats lock-based ones under update load, without restarts");

  grid(16'384, {10, 10}, 60'000);
  grid(16'384, {30, 30}, 60'000);
  grid(1'024, {50, 50}, 60'000);

  std::cout << "The restart column shows the recovery-strategy difference:\n"
               "the FR skip list's is always 0 (backlink recovery); the\n"
               "restart skip list re-descends from the top of the head\n"
               "tower on every interference.\n";
  return 0;
}
