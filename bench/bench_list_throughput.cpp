// E3 — list comparison across implementations, mixes and thread counts,
// mirroring the experimental methodology of Harris (DISC'01) and Michael
// (SPAA'02), the works whose results the paper cites as evidence that
// lock-free lists are practical.
//
// Reported in both units: Mops/s (wall clock — only meaningful relative to
// core count) and the paper's steps/op (schedule-driven, portable).
#include <iostream>
#include <string>

#include "lf/baselines/coarse_list.h"
#include "lf/baselines/harris_list.h"
#include "lf/baselines/lazy_list.h"
#include "lf/baselines/michael_list.h"
#include "lf/core/fr_list.h"
#include "lf/harness/bench_env.h"
#include "lf/harness/table.h"
#include "lf/workload/runner.h"

namespace {

template <typename Set>
lf::workload::RunResult measure(int threads, std::uint64_t n,
                                lf::workload::OpMix mix,
                                std::uint64_t total_ops) {
  Set set;
  lf::workload::RunConfig cfg;
  cfg.threads = threads;
  cfg.ops_per_thread = total_ops / static_cast<std::uint64_t>(threads);
  cfg.key_space = 2 * n;
  cfg.prefill = n;
  cfg.mix = mix;
  cfg.seed = 11;
  lf::workload::prefill(set, cfg);
  return lf::workload::run_workload(set, cfg);
}

struct Impl {
  const char* name;
  lf::workload::RunResult (*run)(int, std::uint64_t, lf::workload::OpMix,
                                 std::uint64_t);
};

const Impl kImpls[] = {
    {"FRList (paper)", &measure<lf::FRList<long, long>>},
    {"HarrisList", &measure<lf::HarrisList<long, long>>},
    {"MichaelList", &measure<lf::MichaelList<long, long>>},
    {"LazyList", &measure<lf::LazyList<long, long>>},
    {"CoarseList", &measure<lf::CoarseList<long, long>>},
};

void grid(std::uint64_t n, lf::workload::OpMix mix, std::uint64_t ops) {
  lf::harness::print_section("n = " + std::to_string(n) + ", mix " +
                             mix.name());
  lf::harness::Table table({"impl", "t=1 Mops", "t=2 Mops", "t=4 Mops",
                            "t=8 Mops", "steps/op (t=4)", "restarts/op"});
  for (const Impl& impl : kImpls) {
    std::string cells[4];
    double steps4 = 0, restarts4 = 0;
    int i = 0;
    for (int t : {1, 2, 4, 8}) {
      const auto res = impl.run(t, n, mix, ops);
      cells[i++] = lf::harness::Table::num(res.mops_per_sec(), 2);
      if (t == 4) {
        steps4 = res.steps_per_op();
        restarts4 = static_cast<double>(res.steps.restart) /
                    static_cast<double>(res.total_ops);
      }
    }
    table.add_row({impl.name, cells[0], cells[1], cells[2], cells[3],
                   lf::harness::Table::num(steps4, 1),
                   lf::harness::Table::num(restarts4, 4)});
  }
  table.print();
}

}  // namespace

int main() {
  lf::harness::print_environment(
      "E3 (Sections 1-2)",
      "FR list does competitive work per op vs Harris/Michael and avoids "
      "their restarts; lock-free beats coarse locking under concurrency");

  grid(512, {10, 10}, 60'000);   // read-mostly
  grid(512, {50, 50}, 60'000);   // update-only
  grid(4096, {10, 10}, 40'000);  // larger list, read-mostly

  std::cout << "Note: wall-clock scalability across t is only meaningful\n"
               "with >= t physical cores; steps/op and restarts/op are the\n"
               "portable comparison (restarts are Harris/Michael recovery;\n"
               "the FR list never restarts).\n";
  return 0;
}
