// E14 — stalled-reader recovery: neutralization latency and backlog bounds
// vs. stall duration (DESIGN.md §11).
//
// Plain EBR is only as live as its slowest reader: a thread parked while
// pinned stalls the epoch for exactly as long as it sleeps, and the retire
// backlog grows with survivor churn for the whole stall. With the
// resilience layer armed, the blame detector ejects the frozen pin after a
// bounded number of failed advances, so recovery time is set by ADVANCER
// ACTIVITY (survivor churn driving try_advance), not by the stall duration
// — the recovery-time curve flattens as stalls grow, which is the claim
// this experiment records. The frees the ejection enables divert into the
// quarantine until the victim acknowledges, so the quarantine depth also
// bounds how much memory the stall can strand.
//
// Method: a victim pins a private domain and sleeps for stall_ms while 3
// workers churn an FRList in the same domain; the main thread samples the
// retired backlog, quarantine depth, and global epoch every 500 us. The
// recovery time is the interval from the victim's pin to the first sample
// whose epoch passed pin+1 (i.e. the grace period no longer includes the
// stalled pin). No chaos layer needed: the victim parks on a plain sleep,
// so this builds and runs in every configuration.
//
// Output: table plus machine-readable BENCH_fault_recovery.json. The
// retire_backlog / quarantine_depth fields are reported (never gated) by
// tools/bench_trend.py — their magnitude tracks runner speed.
#include <atomic>
#include <chrono>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "lf/core/fr_list.h"
#include "lf/harness/bench_env.h"
#include "lf/harness/json_writer.h"
#include "lf/harness/table.h"
#include "lf/instrument/counters.h"
#include "lf/reclaim/epoch.h"
#include "lf/util/random.h"

namespace {

using Clock = std::chrono::steady_clock;
using lf::reclaim::EpochDomain;

constexpr int kWorkers = 3;
constexpr long kKeySpace = 256;
constexpr std::uint32_t kBlameThreshold = 16;  // the documented default
constexpr std::uint64_t kSoftCap = 1u << 16;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

struct Row {
  int stall_ms;
  double recovery_ms;            // pin -> epoch past the pinned grace window
  std::uint64_t max_backlog;     // peak retired_count() during the run
  std::uint64_t max_quarantine;  // peak quarantine_depth() during the run
  double ejections;              // total neutralizations (victim + benign
                                 // collateral ejections of workers that were
                                 // descheduled while pinned; they re-pin and
                                 // settle, see DESIGN.md §11)
  double drain_ms;               // post-ack drain of backlog + quarantine
};

Row run_one(int stall_ms) {
  using List =
      lf::FRList<long, long, std::less<long>, lf::reclaim::EpochReclaimer>;
  EpochDomain domain;
  EpochDomain::ResilienceOptions ro;
  ro.neutralize = true;
  ro.blame_threshold = kBlameThreshold;
  ro.quarantine_soft_cap = kSoftCap;
  domain.set_resilience(ro);
  List set{lf::reclaim::EpochReclaimer(domain)};
  for (long k = 0; k < kKeySpace; k += 2) set.insert(k, k);

  const auto before = lf::stats::aggregate();
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < kWorkers; ++t) {
    workers.emplace_back([&set, &stop, t] {
      lf::Xoshiro256 rng(0xe14 + static_cast<std::uint64_t>(t) * 7919);
      while (!stop.load(std::memory_order_acquire)) {
        const long k = static_cast<long>(rng.below(kKeySpace));
        if (rng.below(2) == 0) {
          set.insert(k, k);
        } else {
          set.erase(k);
        }
      }
    });
  }

  std::atomic<bool> pinned{false};
  std::atomic<std::uint64_t> e_pin{0};
  std::thread victim([&domain, &pinned, &e_pin, stall_ms] {
    auto g = domain.guard();
    e_pin.store(domain.pinned_epoch(), std::memory_order_release);
    pinned.store(true, std::memory_order_release);
    std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms));
  });
  while (!pinned.load(std::memory_order_acquire)) std::this_thread::yield();

  Row row{};
  row.stall_ms = stall_ms;
  row.recovery_ms = -1.0;
  const auto t0 = Clock::now();
  const auto deadline =
      t0 + std::chrono::milliseconds(stall_ms) + std::chrono::seconds(5);
  // Sample until the epoch passes the stalled pin's grace window (by
  // ejection or by the victim waking, whichever first), then keep watching
  // briefly so backlog peaks reached after recovery are not missed.
  while (Clock::now() < deadline) {
    row.max_backlog = std::max(row.max_backlog, domain.retired_count());
    row.max_quarantine = std::max(row.max_quarantine,
                                  domain.quarantine_depth());
    if (row.recovery_ms < 0 &&
        domain.epoch() >= e_pin.load(std::memory_order_acquire) + 2) {
      row.recovery_ms = ms_between(t0, Clock::now());
      break;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
  victim.join();
  stop.store(true, std::memory_order_release);
  for (std::thread& w : workers) w.join();

  // The victim acknowledged any ejection on its unpin; the backlog and
  // quarantine must now drain completely.
  const auto d0 = Clock::now();
  domain.drain();
  row.drain_ms = ms_between(d0, Clock::now());
  row.ejections =
      static_cast<double>((lf::stats::aggregate() - before).epoch_eject);
  if (domain.quarantine_depth() != 0 || domain.retired_count() != 0) {
    std::cerr << "E14: backlog failed to drain (quarantine="
              << domain.quarantine_depth() << ", retired="
              << domain.retired_count() << ")\n";
  }
  return row;
}

void emit_json(const std::vector<Row>& rows) {
  lf::harness::JsonWriter j;
  j.begin_object();
  j.field("experiment", "E14 stalled-reader recovery");
  j.field("key_space", static_cast<std::uint64_t>(kKeySpace));
  j.key("configs").begin_array();
  for (const Row& r : rows) {
    j.begin_object();
    j.field("workers", kWorkers);
    j.field("blame_threshold", static_cast<int>(kBlameThreshold));
    j.field("quarantine_soft_cap", static_cast<std::uint64_t>(kSoftCap));
    j.field("stall_ms", r.stall_ms);
    // Run-varying numbers are doubles or info-metric leaves on purpose: an
    // integer here would enter bench_trend.py's configuration identity and
    // mark every run [new].
    j.field("recovery_ms", r.recovery_ms);
    j.field("retire_backlog", r.max_backlog);      // info metric, not gated
    j.field("quarantine_depth", r.max_quarantine);  // info metric, not gated
    j.field("quarantine_bounded", r.max_quarantine <= kSoftCap);
    j.field("ejections", r.ejections);
    j.field("drain_ms", r.drain_ms);
    j.end_object();
  }
  j.end_array();
  j.end_object();
  std::ofstream f("BENCH_fault_recovery.json");
  f << j.str() << "\n";
  std::cout << "wrote BENCH_fault_recovery.json\n";
}

}  // namespace

int main() {
  lf::harness::print_environment(
      "E14 (stalled-reader recovery)",
      "with neutralization armed, epoch recovery time is bounded by "
      "advancer activity, not by how long the stalled reader sleeps");

  std::vector<Row> rows;
  for (int stall_ms : {0, 20, 80, 320}) rows.push_back(run_one(stall_ms));

  lf::harness::print_section("recovery vs stall duration");
  lf::harness::Table t({"stall ms", "recovery ms", "max backlog",
                        "max quarantine", "ejections", "drain ms"});
  for (const Row& r : rows) {
    t.add_row({std::to_string(r.stall_ms),
               lf::harness::Table::num(r.recovery_ms, 2),
               std::to_string(r.max_backlog),
               std::to_string(r.max_quarantine),
               lf::harness::Table::num(r.ejections, 0),
               lf::harness::Table::num(r.drain_ms, 2)});
  }
  t.print();
  std::cout
      << "Expected shape: without resilience, recovery would equal the\n"
         "stall duration. With it, recovery flattens: the long stalls\n"
         "recover in roughly the same few milliseconds as the short ones,\n"
         "the backlog peaks track churn-during-stall rather than growing\n"
         "without bound, and the quarantine stays under its soft cap and\n"
         "drains to zero once every ejection is acknowledged. Ejection\n"
         "counts above one per run are collateral neutralizations of\n"
         "workers descheduled while pinned (oversubscribed runners);\n"
         "those are benign — the worker re-pins and settles.\n";

  emit_json(rows);
  return 0;
}
