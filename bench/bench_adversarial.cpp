// E1 — the Section 3.1 adversarial execution.
//
// Paper claim: on the end-of-list schedule (q-1 inserters locate, one
// deleter kills their predecessor, inserters' C&S fails), Harris's list
// restarts from the head — total work Ω(q·n²), average cost Ω(n̄_E·c̄_E) —
// while the FR list recovers through one backlink, keeping the amortized
// cost O(n(S) + c(S)).
//
// Output: for each (q, n) the total essential steps and the per-failed-C&S
// recovery cost of both lists under the IDENTICAL deterministic schedule.
// Expected shape: Harris's recovery cost grows linearly with n; FRList's
// stays flat; the ratio grows without bound.
#include <cstdint>
#include <iostream>

#include "lf/baselines/harris_list.h"
#include "lf/core/fr_list.h"
#include "lf/harness/bench_env.h"
#include "lf/harness/table.h"
#include "lf/reclaim/leaky.h"
#include "lf/workload/adversary.h"

namespace {

using FR = lf::FRList<long, long, std::less<long>, lf::reclaim::LeakyReclaimer>;
using Harris =
    lf::HarrisList<long, long, std::less<long>, lf::reclaim::LeakyReclaimer>;

struct Cell {
  std::uint64_t total_steps;
  double steps_per_failure;  // inserter recovery cost per interference
  std::uint64_t failures;
};

template <typename List>
Cell run(int inserters, std::uint64_t n, std::uint64_t rounds) {
  List list;
  const auto res =
      lf::workload::run_adversarial_schedule(list, inserters, n, rounds);
  Cell cell;
  cell.total_steps = res.steps.essential_steps();
  cell.failures = res.steps.cas_failures();
  // Inserter-side recovery only: the deleter's Ω(n) searches and the
  // one-time locate phase are identical for both algorithms and are
  // subtracted by the driver's per-role accounting.
  cell.steps_per_failure = res.recovery_steps_per_failed_cas();
  return cell;
}

}  // namespace

int main() {
  lf::harness::print_environment(
      "E1 (Section 3.1)",
      "adversarial schedule: Harris restarts cost Ω(n) per interference; "
      "FR backlink recovery costs O(1)");

  for (int q : {2, 4, 8}) {
    lf::harness::print_section("q = " + std::to_string(q) +
                               " processes (" + std::to_string(q - 1) +
                               " inserters + 1 deleter)");
    lf::harness::Table table(
        {"n", "rounds", "FR steps", "Harris steps", "FR rec/fail",
         "Harris rec/fail", "total ratio", "recovery ratio"});
    for (std::uint64_t n : {64u, 128u, 256u, 512u, 1024u, 2048u}) {
      const std::uint64_t rounds = n / 2;
      const Cell fr = run<FR>(q - 1, n, rounds);
      const Cell ha = run<Harris>(q - 1, n, rounds);
      table.add_row(
          {std::to_string(n), std::to_string(rounds),
           lf::harness::Table::num(fr.total_steps),
           lf::harness::Table::num(ha.total_steps),
           lf::harness::Table::num(fr.steps_per_failure, 1),
           lf::harness::Table::num(ha.steps_per_failure, 1),
           lf::harness::Table::ratio(
               static_cast<double>(ha.total_steps),
               static_cast<double>(fr.total_steps)),
           lf::harness::Table::ratio(ha.steps_per_failure,
                                     fr.steps_per_failure)});
    }
    table.print();
  }

  std::cout << "Interpretation: 'rec/fail' is the traversal cost paid per\n"
               "failed C&S. The paper predicts O(1) for FRList (flat down\n"
               "the column) and Θ(n) for Harris (doubling with n), so the\n"
               "recovery ratio column should roughly double per row.\n";
  return 0;
}
