// E2 — the Section 3.4 amortized bound: t̂(S) = O(n(S) + c(S)).
//
// Two sweeps over a random mixed workload on FRList, measured in the
// paper's essential-step units:
//
//   (a) list size n grows at fixed thread count     -> steps/op must grow
//       LINEARLY in n (the O(n(S)) necessary-cost term): steps/op ÷ n
//       converges to a constant.
//   (b) thread count grows at fixed n               -> steps/op must grow
//       by at most an ADDITIVE O(c(S)) term: the concurrency overhead
//       (steps/op minus the single-thread baseline) stays within a small
//       multiple of the measured average contention, far below n.
#include <iostream>

#include "lf/core/fr_list.h"
#include "lf/harness/bench_env.h"
#include "lf/harness/table.h"
#include "lf/workload/runner.h"

namespace {

lf::workload::RunResult measure(int threads, std::uint64_t n,
                                std::uint64_t total_ops) {
  lf::FRList<long, long> list;
  lf::workload::RunConfig cfg;
  cfg.threads = threads;
  cfg.ops_per_thread = total_ops / static_cast<std::uint64_t>(threads);
  cfg.key_space = 2 * n;  // steady state keeps ~n keys present
  cfg.prefill = n;
  cfg.mix = {25, 25};  // 25i/25d/50s
  cfg.seed = 7;
  lf::workload::prefill(list, cfg);
  return lf::workload::run_workload(list, cfg);
}

}  // namespace

int main() {
  lf::harness::print_environment(
      "E2 (Section 3.4)",
      "amortized cost O(n(S) + c(S)): linear in size, additive in "
      "contention");

  lf::harness::print_section("(a) steps/op vs list size n  (threads = 4)");
  {
    lf::harness::Table table(
        {"n", "ops", "steps/op", "steps/op / n", "CAS/op", "avg c(S)"});
    for (std::uint64_t n : {128u, 256u, 512u, 1024u, 2048u, 4096u, 8192u}) {
      const std::uint64_t ops = std::max<std::uint64_t>(40'000, 4u * n);
      const auto res = measure(4, n, ops);
      table.add_row({std::to_string(n), std::to_string(res.total_ops),
                     lf::harness::Table::num(res.steps_per_op(), 1),
                     lf::harness::Table::num(res.steps_per_op() /
                                                 static_cast<double>(n),
                                             4),
                     lf::harness::Table::num(res.cas_per_op(), 2),
                     lf::harness::Table::num(res.avg_contention, 2)});
    }
    table.print();
    std::cout << "Linear claim holds when steps/op / n settles to a "
                 "constant (~the fraction of the list a mixed op "
                 "traverses).\n\n";
  }

  lf::harness::print_section("(b) steps/op vs thread count  (n = 1024)");
  {
    const auto base = measure(1, 1024, 60'000);
    lf::harness::Table table({"threads", "steps/op", "overhead vs t=1",
                              "avg c(S)", "CAS fail/op", "helps/op"});
    for (int t : {1, 2, 4, 8, 16}) {
      const auto res = measure(t, 1024, 60'000);
      const double helps =
          static_cast<double>(res.steps.help_marked +
                              res.steps.help_flagged) /
          static_cast<double>(res.total_ops);
      table.add_row(
          {std::to_string(t),
           lf::harness::Table::num(res.steps_per_op(), 1),
           lf::harness::Table::num(res.steps_per_op() - base.steps_per_op(),
                                   1),
           lf::harness::Table::num(res.avg_contention, 2),
           lf::harness::Table::num(
               static_cast<double>(res.steps.cas_failures()) /
                   static_cast<double>(res.total_ops),
               4),
           lf::harness::Table::num(helps, 4)});
    }
    table.print();
    std::cout << "Additive claim holds when the overhead column stays "
                 "within a small multiple of avg c(S) — orders of "
                 "magnitude below n = 1024.\n";
  }
  return 0;
}
