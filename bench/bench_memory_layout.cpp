// E11 — cache-conscious memory layer ablation: flat towers + pooled
// allocation vs the seed's pointer-chained, heap-allocated placement.
//
// The 2x2 matrix {chained, flat} x {heap, pool} isolates the two effects:
//
//   * LAYOUT (chained -> flat): a whole tower in one contiguous block puts
//     the root's hot fields in the block's first cache line and keeps the
//     down-descent inside the block; an insert costs one allocation
//     instead of one per level.
//   * ALLOCATOR (heap -> pool): per-thread freelists recycle blocks warm
//     and line-aligned, and the global allocator is hit only once per
//     256 KiB segment instead of once per node.
//
// The paper's complexity claims are layout-independent — the essential
// steps/op column must be flat across the matrix (the same algorithm
// executes the same CAS/backlink/pointer steps); only the wall-clock and
// allocator columns may move. On a single-core host the multi-thread
// throughput numbers measure lost-interleaving overhead rather than
// parallel speedup; the single-thread phases carry the cache-effect claim.
//
// Output: the usual tables, plus machine-readable BENCH_memory_layout.json.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "lf/core/fr_skiplist.h"
#include "lf/harness/bench_env.h"
#include "lf/harness/json_writer.h"
#include "lf/harness/table.h"
#include "lf/instrument/counters.h"
#include "lf/mem/pool.h"
#include "lf/mem/tower.h"
#include "lf/reclaim/epoch.h"
#include "lf/util/random.h"
#include "lf/util/timer.h"
#include "lf/workload/runner.h"

namespace {

using lf::harness::Table;
using lf::mem::PoolTotals;
using lf::mem::pool_totals;

template <typename Layout>
using SkipList = lf::FRSkipList<long, long, std::less<long>,
                                lf::reclaim::EpochReclaimer, 24, Layout>;

// Allocator traffic attributable to one measured region, for either
// allocation policy. "blocks" counts blocks handed to the structure;
// "global hits" counts round-trips to the global allocator (the expensive,
// lock-taking path the pool amortizes away).
struct AllocDelta {
  std::uint64_t blocks = 0;
  std::uint64_t global_hits = 0;
};

AllocDelta alloc_delta(const PoolTotals& before) {
  const PoolTotals d = pool_totals() - before;
  AllocDelta out;
  out.blocks = d.fresh_blocks + d.recycled_blocks + d.oversize + d.heap_allocs;
  out.global_hits = d.global_hits() + d.heap_allocs;
  return out;
}

struct PhaseResult {
  double seconds = 0;
  double mops = 0;
  double steps_per_op = 0;
  double blocks_per_op = 0;
  double hits_per_op = 0;
};

// Phase 1: build a set of kBuildKeys distinct keys, single thread, shuffled
// order. blocks/op here is the allocations-per-insert claim: flat = 1 block
// per tower; chained = one block per tower LEVEL (expected ~2 for fair
// coin flips).
constexpr std::size_t kBuildKeys = 200'000;

std::vector<long> shuffled_keys(std::size_t n, std::uint64_t seed) {
  std::vector<long> keys(n);
  for (std::size_t i = 0; i < n; ++i) keys[i] = static_cast<long>(i);
  lf::Xoshiro256 rng(seed);
  for (std::size_t i = n; i > 1; --i)
    std::swap(keys[i - 1], keys[rng.below(i)]);
  return keys;
}

template <typename Set>
PhaseResult build_phase(Set& set, const std::vector<long>& keys) {
  const PoolTotals mem_before = pool_totals();
  const auto steps_before = lf::stats::aggregate();
  lf::Stopwatch clock;
  for (long k : keys) set.insert(k, k);
  PhaseResult r;
  r.seconds = clock.elapsed_seconds();
  const auto steps = lf::stats::aggregate() - steps_before;
  const auto mem = alloc_delta(mem_before);
  const auto n = static_cast<double>(keys.size());
  r.mops = n / r.seconds / 1e6;
  r.steps_per_op = static_cast<double>(steps.essential_steps()) / n;
  r.blocks_per_op = static_cast<double>(mem.blocks) / n;
  r.hits_per_op = static_cast<double>(mem.global_hits) / n;
  return r;
}

// Phase 2: single-thread random searches over the built set — the
// pointer-chasing workload where node placement (flat block vs heap
// spread) shows up as wall-clock.
template <typename Set>
PhaseResult search_phase(const Set& set, std::uint64_t seed) {
  constexpr std::size_t kSearches = 400'000;
  lf::Xoshiro256 rng(seed);
  const auto steps_before = lf::stats::aggregate();
  lf::Stopwatch clock;
  for (std::size_t i = 0; i < kSearches; ++i)
    set.contains(static_cast<long>(rng.below(kBuildKeys)));
  PhaseResult r;
  r.seconds = clock.elapsed_seconds();
  const auto steps = lf::stats::aggregate() - steps_before;
  r.mops = static_cast<double>(kSearches) / r.seconds / 1e6;
  r.steps_per_op =
      static_cast<double>(steps.essential_steps()) / kSearches;
  return r;
}

// Phase 3: multi-thread churn on a small key range — every erase retires a
// tower whose block the pool recycles into a subsequent insert, so this is
// where pooled allocation pays (or would break, if reuse were not
// epoch-safe).
template <typename Set>
PhaseResult churn_phase(Set& set) {
  lf::workload::RunConfig cfg;
  cfg.threads = 4;
  cfg.ops_per_thread = 150'000;
  cfg.key_space = 2048;
  cfg.prefill = 1024;
  cfg.mix = {45, 45};
  cfg.seed = 17;
  cfg.measure_contention = false;
  lf::workload::prefill(set, cfg);
  const PoolTotals mem_before = pool_totals();
  const auto res = lf::workload::run_workload(set, cfg);
  const auto mem = alloc_delta(mem_before);
  PhaseResult r;
  r.seconds = res.seconds;
  r.mops = res.mops_per_sec();
  r.steps_per_op = res.steps_per_op();
  r.blocks_per_op =
      static_cast<double>(mem.blocks) / static_cast<double>(res.total_ops);
  r.hits_per_op = static_cast<double>(mem.global_hits) /
                  static_cast<double>(res.total_ops);
  return r;
}

struct ConfigResult {
  const char* name;
  PhaseResult build, search, churn;
};

template <typename Layout>
ConfigResult run_config() {
  ConfigResult out{Layout::kName, {}, {}, {}};
  const auto keys = shuffled_keys(kBuildKeys, 0x5eed);
  {
    SkipList<Layout> set;
    out.build = build_phase(set, keys);
    out.search = search_phase(set, 0xfeed);
  }
  {
    SkipList<Layout> set;
    out.churn = churn_phase(set);
  }
  // Both sets retired everything into the global domain; drain so the next
  // config starts from a clean slate (and pooled configs return blocks).
  lf::reclaim::EpochDomain::global().drain();
  return out;
}

void emit_json(const std::vector<ConfigResult>& results) {
  lf::harness::JsonWriter j;
  j.begin_object();
  j.field("experiment", "E11 memory layout");
  j.field("build_keys", static_cast<std::uint64_t>(kBuildKeys));
  j.key("configs").begin_array();
  for (const auto& c : results) {
    j.begin_object();
    j.field("layout", c.name);
    const auto phase = [&](const char* name, const PhaseResult& p,
                           bool alloc_cols) {
      j.key(name).begin_object();
      j.field("seconds", p.seconds);
      j.field("mops_per_sec", p.mops);
      j.field("essential_steps_per_op", p.steps_per_op);
      if (alloc_cols) {
        j.field("blocks_per_op", p.blocks_per_op);
        j.field("global_allocator_hits_per_op", p.hits_per_op);
      }
      j.end_object();
    };
    phase("build", c.build, true);
    phase("search", c.search, false);
    phase("churn", c.churn, true);
    j.end_object();
  }
  j.end_array();
  j.end_object();
  std::ofstream f("BENCH_memory_layout.json");
  f << j.str() << "\n";
  std::cout << "wrote BENCH_memory_layout.json\n";
}

}  // namespace

int main() {
  lf::harness::print_environment(
      "E11 (memory layer)",
      "flat towers + pooled allocation remove the per-level allocator "
      "round-trips and heap spread; essential steps/op must not move");

  std::vector<ConfigResult> results;
  results.push_back(run_config<lf::mem::ChainedTowers>());        // seed
  results.push_back(run_config<lf::mem::PooledChainedTowers>());
  results.push_back(run_config<lf::mem::FlatTowersHeap>());
  results.push_back(run_config<lf::mem::FlatTowers>());           // default

  lf::harness::print_section(
      "(a) build: 200k distinct inserts, 1 thread (blocks/op = allocations "
      "per insert)");
  Table build({"layout", "Mops/s", "steps/op", "blocks/op", "global hits/op"});
  for (const auto& c : results)
    build.add_row({c.name, Table::num(c.build.mops, 3),
                   Table::num(c.build.steps_per_op, 2),
                   Table::num(c.build.blocks_per_op, 3),
                   Table::num(c.build.hits_per_op, 5)});
  build.print();

  lf::harness::print_section("(b) search: 400k random contains, 1 thread");
  Table search({"layout", "Mops/s", "steps/op"});
  for (const auto& c : results)
    search.add_row({c.name, Table::num(c.search.mops, 3),
                    Table::num(c.search.steps_per_op, 2)});
  search.print();

  lf::harness::print_section(
      "(c) churn: 4 threads, 45i/45d/10s, 2048 keys (recycle pressure)");
  Table churn({"layout", "Mops/s", "steps/op", "blocks/op", "global hits/op"});
  for (const auto& c : results)
    churn.add_row({c.name, Table::num(c.churn.mops, 3),
                   Table::num(c.churn.steps_per_op, 2),
                   Table::num(c.churn.blocks_per_op, 3),
                   Table::num(c.churn.hits_per_op, 5)});
  churn.print();

  std::cout << "Expected shape: steps/op identical down each column (the\n"
               "algorithm is unchanged); flat halves blocks/op vs chained;\n"
               "pool drives global hits/op to ~0; flat/pool leads the\n"
               "wall-clock columns.\n\n";

  emit_json(results);
  return 0;
}
