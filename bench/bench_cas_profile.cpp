// E10 — C&S cost-model accounting (Sections 3.3-3.4).
//
// The paper's analysis bills costs to SUCCESSFUL C&S's and observes that
// "at most three C&S's can be part of any given operation": a successful
// insertion contributes one insertion C&S; a successful deletion one flag,
// one mark and one physical-deletion C&S. This bench verifies that
// bookkeeping identity live, per implementation, and profiles the C&S
// failure rates that the backlink/flag machinery (vs restarts) produces.
#include <iostream>
#include <string>

#include "lf/baselines/harris_list.h"
#include "lf/baselines/michael_list.h"
#include "lf/core/fr_list.h"
#include "lf/core/fr_list_noflag.h"
#include "lf/core/fr_skiplist.h"
#include "lf/harness/bench_env.h"
#include "lf/harness/table.h"
#include "lf/workload/runner.h"

namespace {

template <typename Set>
void row(lf::harness::Table& table, const char* name, int threads) {
  Set set;
  lf::workload::RunConfig cfg;
  cfg.threads = threads;
  cfg.ops_per_thread = 60'000 / static_cast<std::uint64_t>(threads);
  cfg.key_space = 256;
  cfg.prefill = 128;
  cfg.mix = {30, 30};
  cfg.seed = 37;
  lf::workload::prefill(set, cfg);
  const auto res = lf::workload::run_workload(set, cfg);
  const auto& s = res.steps;
  const double ops = static_cast<double>(res.total_ops);
  const double fail_frac =
      s.cas_attempt == 0
          ? 0
          : static_cast<double>(s.cas_failures()) /
                static_cast<double>(s.cas_attempt);
  table.add_row(
      {name, lf::harness::Table::num(static_cast<double>(s.cas_attempt) / ops, 3),
       lf::harness::Table::num(static_cast<double>(s.cas_success) / ops, 3),
       lf::harness::Table::num(fail_frac, 4),
       std::to_string(s.insert_cas), std::to_string(s.flag_cas),
       std::to_string(s.mark_cas), std::to_string(s.pdelete_cas)});
}

}  // namespace

int main() {
  lf::harness::print_environment(
      "E10 (Sections 3.3-3.4)",
      "successful C&S accounting: 1 per insertion, 3 per deletion "
      "(flag+mark+unlink); failure rates stay small");

  for (int threads : {1, 4, 8}) {
    lf::harness::print_section("30i/30d/40s, 256-key space, threads = " +
                               std::to_string(threads));
    lf::harness::Table table({"impl", "CAS/op", "succ CAS/op", "fail frac",
                              "insert", "flag", "mark", "unlink"});
    row<lf::FRList<long, long>>(table, "FRList", threads);
    row<lf::FRSkipList<long, long>>(table, "FRSkipList", threads);
    row<lf::FRListNoFlag<long, long>>(table, "FRListNoFlag", threads);
    row<lf::HarrisList<long, long>>(table, "HarrisList", threads);
    row<lf::MichaelList<long, long>>(table, "MichaelList", threads);
    table.print();
  }

  std::cout << "Identities to check per row: for the FR structures, the\n"
               "flag/mark/unlink columns are (near-)equal — every deletion\n"
               "performs exactly the three-step protocol (the skip list\n"
               "repeats it once per tower level). Harris/NoFlag have no\n"
               "flag column activity (2-step deletions). FRSkipList's\n"
               "CAS/op includes the extra tower levels (~2 nodes/tower\n"
               "expected).\n";
  return 0;
}
