// E6 — tower-height distribution (Section 4, last paragraph):
//
//   "We call a tower full if its insertion has finished without an
//    interruption ... the number of incomplete towers at any time is
//    bounded by the point contention. The distribution of the heights of
//    the full towers may be a little different from the heights
//    distribution in a sequential skip list ... we believe this would not
//    affect the expected running time significantly."
//
// Part (a): sequential build — heights must match geometric(1/2) exactly.
// Part (b): concurrent churn — report the full/incomplete census and the
// height distribution; incomplete towers must be a vanishing fraction and
// bounded by the measured contention level.
#include <cmath>
#include <iostream>
#include <thread>
#include <vector>

#include "lf/core/fr_skiplist.h"
#include "lf/harness/bench_env.h"
#include "lf/harness/table.h"
#include "lf/util/random.h"

namespace {

void print_distribution(const lf::FRSkipList<long, long>::TowerCensus& census,
                        const char* label) {
  lf::harness::print_section(label);
  lf::harness::Table table(
      {"height", "towers", "fraction", "geometric 2^-h", "rel err"});
  for (const auto& [h, cnt] : census.height_counts) {
    const double frac =
        static_cast<double>(cnt) / static_cast<double>(census.towers);
    const double expect = std::pow(0.5, h);
    table.add_row({std::to_string(h), std::to_string(cnt),
                   lf::harness::Table::num(frac, 4),
                   lf::harness::Table::num(expect, 4),
                   lf::harness::Table::num(
                       expect == 0 ? 0 : (frac - expect) / expect, 3)});
  }
  table.print();
  std::cout << "towers=" << census.towers << " full=" << census.full
            << " incomplete=" << census.incomplete << " ("
            << (census.towers
                    ? 100.0 * static_cast<double>(census.incomplete) /
                          static_cast<double>(census.towers)
                    : 0)
            << "%)\n\n";
}

}  // namespace

int main() {
  lf::harness::print_environment(
      "E6 (Section 4, last paragraph)",
      "tower heights are geometric(1/2); incomplete towers bounded by "
      "contention");

  {
    lf::FRSkipList<long, long> s;
    for (long k = 0; k < 100'000; ++k) s.insert(k, k);
    print_distribution(s.census(), "(a) sequential build of 100k towers");
  }

  {
    lf::FRSkipList<long, long> s;
    constexpr int kThreads = 8;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&s, t] {
        lf::Xoshiro256 rng(40 + static_cast<unsigned>(t));
        for (int i = 0; i < 60'000; ++i) {
          const long k = static_cast<long>(rng.below(40'000));
          if (rng.below(5) < 3) {
            s.insert(k, k);
          } else {
            s.erase(k);
          }
        }
      });
    }
    for (auto& w : workers) w.join();
    print_distribution(
        s.census(),
        "(b) after concurrent churn (8 threads, 60/40 insert/delete)");
    std::cout << "The paper bounds LIVE incomplete towers by the point\n"
                 "contention; at quiescence the count above also includes\n"
                 "towers whose construction was permanently interrupted by\n"
                 "a deletion that later lost to a reinsertion — it must be\n"
                 "a tiny fraction of all towers.\n";
  }
  return 0;
}
