// E5 — the skip list's expected O(log n) cost (Section 4: "searches,
// insertions, and deletions have an expected cost of O(log n)").
//
// Search-only workload over exponentially growing n: steps/op must track
// c·log2(n), i.e. the steps/op ÷ log2(n) column settles to a constant,
// against a linear-scan linked-list column that doubles per row.
#include <cmath>
#include <iostream>

#include "lf/core/fr_list.h"
#include "lf/core/fr_skiplist.h"
#include "lf/harness/bench_env.h"
#include "lf/harness/table.h"
#include "lf/workload/runner.h"

namespace {

template <typename Set>
lf::workload::RunResult search_only(int threads, std::uint64_t n,
                                    std::uint64_t total_ops) {
  Set set;
  lf::workload::RunConfig cfg;
  cfg.threads = threads;
  cfg.ops_per_thread = total_ops / static_cast<std::uint64_t>(threads);
  cfg.key_space = n;   // search over exactly the stored range
  cfg.prefill = n / 2;
  cfg.mix = {0, 0};  // search-only
  cfg.seed = 17;
  lf::workload::prefill(set, cfg);
  return lf::workload::run_workload(set, cfg);
}

}  // namespace

int main() {
  lf::harness::print_environment(
      "E5 (Section 4)",
      "skip-list operations cost O(log n) expected; the level-1-only list "
      "costs Θ(n)");

  lf::harness::print_section("search-only steps/op vs n  (threads = 1)");
  lf::harness::Table table({"n", "skiplist steps/op", "/log2(n)",
                            "list steps/op", "/n", "speedup"});
  for (std::uint64_t n : {256u, 1024u, 4096u, 16384u, 65536u, 131072u}) {
    const auto skip =
        search_only<lf::FRSkipList<long, long>>(1, n, 20'000);
    // The linear baseline gets fewer ops at large n to bound runtime.
    const std::uint64_t list_ops = n >= 16384 ? 2'000 : 10'000;
    const auto list = search_only<lf::FRList<long, long>>(1, n, list_ops);
    const double lg = std::log2(static_cast<double>(n));
    table.add_row(
        {std::to_string(n),
         lf::harness::Table::num(skip.steps_per_op(), 1),
         lf::harness::Table::num(skip.steps_per_op() / lg, 2),
         lf::harness::Table::num(list.steps_per_op(), 1),
         lf::harness::Table::num(list.steps_per_op() /
                                     static_cast<double>(n),
                                 4),
         lf::harness::Table::ratio(list.steps_per_op(),
                                   skip.steps_per_op())});
  }
  table.print();

  lf::harness::print_section(
      "same sweep under concurrency  (threads = 4, mixed 10i/10d/80s)");
  lf::harness::Table table2({"n", "skiplist steps/op", "/log2(n)",
                             "avg c(S)"});
  for (std::uint64_t n : {1024u, 8192u, 65536u}) {
    lf::FRSkipList<long, long> s;
    lf::workload::RunConfig cfg;
    cfg.threads = 4;
    cfg.ops_per_thread = 10'000;
    cfg.key_space = n;
    cfg.prefill = n / 2;
    cfg.mix = {10, 10};
    lf::workload::prefill(s, cfg);
    const auto res = lf::workload::run_workload(s, cfg);
    const double lg = std::log2(static_cast<double>(n));
    table2.add_row({std::to_string(n),
                    lf::harness::Table::num(res.steps_per_op(), 1),
                    lf::harness::Table::num(res.steps_per_op() / lg, 2),
                    lf::harness::Table::num(res.avg_contention, 2)});
  }
  table2.print();
  std::cout << "O(log n) holds when the /log2(n) column is flat while the\n"
               "linked list's /n column is flat (i.e. the list is linear).\n";
  return 0;
}
