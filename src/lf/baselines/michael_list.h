// MichaelList — M. M. Michael, "High Performance Dynamic Lock-Free Hash
// Tables and List-Based Sets", SPAA 2002 (the paper's reference [8]).
//
// Michael's list keeps Harris's logical-deletion mark but restructures the
// traversal so that at most THREE node references are live at any moment
// (prev, curr, next) and every marked node is unlinked one-at-a-time before
// the traversal moves past it. That discipline is what makes the algorithm
// compatible with hazard-pointer reclamation (reference [9]) — unlike
// Harris's search, which can traverse long marked chains it does not own.
//
// Two variants are provided:
//   MichaelList<Key,T,Compare,Reclaimer>  — guard-based (epoch by default).
//   MichaelListHP<Key,T,Compare>          — the full hazard-pointer protocol
//                                           on HazardDomain (protect +
//                                           validate + restart), exercising
//                                           the SMR substrate end to end.
//
// Like Harris's list, interference causes a restart from the head (counted
// in stats::restart); this list exists as the second baseline the paper
// compares against analytically in Sections 1-2.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <tuple>
#include <utility>

#include "lf/instrument/counters.h"
#include "lf/reclaim/epoch.h"
#include "lf/reclaim/hazard.h"
#include "lf/reclaim/reclaimer.h"
#include "lf/sync/succ_field.h"

namespace lf {

template <typename Key, typename T = Key, typename Compare = std::less<Key>,
          typename Reclaimer = reclaim::EpochReclaimer>
class MichaelList {
 public:
  using key_type = Key;
  using mapped_type = T;
  using key_compare = Compare;

  struct Node;

 private:
  using Succ = sync::SuccField<Node>;
  using View = sync::SuccView<Node>;

 public:
  struct alignas(8) Node {
    enum class Kind : unsigned char { kHead, kInterior, kTail };

    Kind kind;
    Key key;
    T value;
    Succ succ;

    Node(Kind k, Key key_arg, T value_arg)
        : kind(k), key(std::move(key_arg)), value(std::move(value_arg)) {}
  };

  MichaelList() {
    head_ = new Node(Node::Kind::kHead, Key{}, T{});
    tail_ = new Node(Node::Kind::kTail, Key{}, T{});
    head_->succ.store_unsynchronized(View{tail_, false, false});
  }

  ~MichaelList() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->succ.load().right;
      delete n;
      n = next;
    }
  }

  MichaelList(const MichaelList&) = delete;
  MichaelList& operator=(const MichaelList&) = delete;

  bool insert(const Key& k, T value) {
    [[maybe_unused]] auto guard = reclaimer_.guard();
    Node* prev;
    Node* curr;
    bool found;
    std::tie(prev, curr, found) = search(k);
    if (found) {
      // Duplicate detected before allocating: zero allocator traffic.
      stats::tls().op_insert.inc();
      return false;
    }
    Node* node = new Node(Node::Kind::kInterior, k, std::move(value));
    for (;;) {
      node->succ.store_unsynchronized(View{curr, false, false});
      const View result =
          prev->succ.cas(View{curr, false, false}, View{node, false, false});
      if (result == View{curr, false, false}) {
        stats::tls().insert_cas.inc();
        stats::tls().op_insert.inc();
        return true;
      }
      stats::tls().restart.inc();
      std::tie(prev, curr, found) = search(k);
      if (found) {
        delete node;  // never published; lost to a mid-retry duplicate
        stats::tls().op_insert.inc();
        return false;
      }
    }
  }

  bool erase(const Key& k) {
    [[maybe_unused]] auto guard = reclaimer_.guard();
    bool erased = false;
    for (;;) {
      auto [prev, curr, found] = search(k);
      if (!found) break;
      const View curr_succ = curr->succ.load();
      if (curr_succ.mark) {
        stats::tls().restart.inc();
        continue;
      }
      const View result = curr->succ.cas(
          View{curr_succ.right, false, false},
          View{curr_succ.right, true, false});
      if (result != View{curr_succ.right, false, false}) {
        stats::tls().restart.inc();
        continue;
      }
      stats::tls().mark_cas.inc();
      erased = true;
      const View unlink = prev->succ.cas(View{curr, false, false},
                                         View{curr_succ.right, false, false});
      if (unlink == View{curr, false, false}) {
        stats::tls().pdelete_cas.inc();
        reclaimer_.retire(curr);
      } else {
        search(k);  // clean up
      }
      break;
    }
    stats::tls().op_erase.inc();
    return erased;
  }

  std::optional<T> find(const Key& k) const {
    [[maybe_unused]] auto guard = reclaimer_.guard();
    auto [prev, curr, found] = search(k);
    (void)prev;
    std::optional<T> out;
    if (found) out.emplace(curr->value);
    stats::tls().op_search.inc();
    return out;
  }

  bool contains(const Key& k) const {
    [[maybe_unused]] auto guard = reclaimer_.guard();
    auto [prev, curr, found] = search(k);
    (void)prev;
    (void)curr;
    stats::tls().op_search.inc();
    return found;
  }

  std::size_t size() const {
    [[maybe_unused]] auto guard = reclaimer_.guard();
    std::size_t n = 0;
    for (Node* p = head_->succ.load().right; p->kind != Node::Kind::kTail;
         p = p->succ.load().right) {
      if (!p->succ.load().mark) ++n;
    }
    return n;
  }

 private:
  bool node_lt(const Node* n, const Key& k) const {
    if (n->kind == Node::Kind::kHead) return true;
    if (n->kind == Node::Kind::kTail) return false;
    return comp_(n->key, k);
  }
  bool node_eq(const Node* n, const Key& k) const {
    return n->kind == Node::Kind::kInterior && !comp_(n->key, k) &&
           !comp_(k, n->key);
  }

  // Michael's Find: returns (prev, curr, found) with prev unmarked,
  // prev.right == curr, prev.key < k <= curr.key; unlinks each marked node
  // it meets, restarting from head when any C&S fails.
  std::tuple<Node*, Node*, bool> search(const Key& k) const {
    auto& c = stats::tls();
  try_again:
    Node* prev = head_;
    Node* curr = prev->succ.load().right;
    for (;;) {
      if (curr->kind == Node::Kind::kTail) return {prev, curr, false};
      const View curr_succ = curr->succ.load();
      if (curr_succ.mark) {
        const View result = prev->succ.cas(
            View{curr, false, false}, View{curr_succ.right, false, false});
        if (result != View{curr, false, false}) {
          c.restart.inc();
          goto try_again;
        }
        c.pdelete_cas.inc();
        reclaimer_.retire(curr);
        curr = curr_succ.right;
        c.next_update.inc();
        continue;
      }
      if (!node_lt(curr, k)) return {prev, curr, node_eq(curr, k)};
      prev = curr;
      curr = curr_succ.right;
      c.curr_update.inc();
    }
  }

  Compare comp_;
  mutable Reclaimer reclaimer_;
  Node* head_;
  Node* tail_;
};

// ---------------------------------------------------------------------------
// MichaelListHP: the same algorithm with Michael's full hazard-pointer
// protocol. Slots: 0 = curr, 1 = prev. Each advance publishes the new curr,
// then validates that prev still links to it (which also proves curr was
// not retired before the publication became visible).
// ---------------------------------------------------------------------------
template <typename Key, typename T = Key, typename Compare = std::less<Key>>
class MichaelListHP {
 public:
  using key_type = Key;
  using mapped_type = T;
  using key_compare = Compare;

  struct Node;

 private:
  using Succ = sync::SuccField<Node>;
  using View = sync::SuccView<Node>;

 public:
  struct alignas(8) Node {
    enum class Kind : unsigned char { kHead, kInterior, kTail };

    Kind kind;
    Key key;
    T value;
    Succ succ;

    Node(Kind k, Key key_arg, T value_arg)
        : kind(k), key(std::move(key_arg)), value(std::move(value_arg)) {}
  };

  explicit MichaelListHP(reclaim::HazardDomain& domain =
                             reclaim::HazardDomain::global())
      : domain_(domain) {
    head_ = new Node(Node::Kind::kHead, Key{}, T{});
    tail_ = new Node(Node::Kind::kTail, Key{}, T{});
    head_->succ.store_unsynchronized(View{tail_, false, false});
  }

  ~MichaelListHP() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->succ.load().right;
      delete n;
      n = next;
    }
  }

  MichaelListHP(const MichaelListHP&) = delete;
  MichaelListHP& operator=(const MichaelListHP&) = delete;

  bool insert(const Key& k, T value) {
    auto& hp = domain_.slots();
    Node* prev;
    Node* curr;
    bool found;
    std::tie(prev, curr, found) = search(k, hp);
    if (found) {
      // Duplicate detected before allocating: zero allocator traffic.
      hp.clear_all();
      stats::tls().op_insert.inc();
      return false;
    }
    Node* node = new Node(Node::Kind::kInterior, k, std::move(value));
    for (;;) {
      node->succ.store_unsynchronized(View{curr, false, false});
      const View result =
          prev->succ.cas(View{curr, false, false}, View{node, false, false});
      if (result == View{curr, false, false}) {
        stats::tls().insert_cas.inc();
        hp.clear_all();
        stats::tls().op_insert.inc();
        return true;
      }
      stats::tls().restart.inc();
      std::tie(prev, curr, found) = search(k, hp);
      if (found) {
        delete node;  // never published; lost to a mid-retry duplicate
        hp.clear_all();
        stats::tls().op_insert.inc();
        return false;
      }
    }
  }

  bool erase(const Key& k) {
    auto& hp = domain_.slots();
    bool erased = false;
    for (;;) {
      auto [prev, curr, found] = search(k, hp);
      if (!found) break;
      const View curr_succ = curr->succ.load();
      if (curr_succ.mark) {
        stats::tls().restart.inc();
        continue;
      }
      const View result = curr->succ.cas(
          View{curr_succ.right, false, false},
          View{curr_succ.right, true, false});
      if (result != View{curr_succ.right, false, false}) {
        stats::tls().restart.inc();
        continue;
      }
      stats::tls().mark_cas.inc();
      erased = true;
      const View unlink = prev->succ.cas(View{curr, false, false},
                                         View{curr_succ.right, false, false});
      if (unlink == View{curr, false, false}) {
        stats::tls().pdelete_cas.inc();
        domain_.retire(curr);
      } else {
        search(k, hp);
      }
      break;
    }
    hp.clear_all();
    stats::tls().op_erase.inc();
    return erased;
  }

  std::optional<T> find(const Key& k) const {
    auto& hp = domain_.slots();
    auto [prev, curr, found] = search(k, hp);
    (void)prev;
    std::optional<T> out;
    if (found) out.emplace(curr->value);
    hp.clear_all();
    stats::tls().op_search.inc();
    return out;
  }

  bool contains(const Key& k) const { return find(k).has_value(); }

  std::size_t size() const {
    // Size is only meaningful at quiescence for this diagnostic helper.
    std::size_t n = 0;
    for (Node* p = head_->succ.load().right; p->kind != Node::Kind::kTail;
         p = p->succ.load().right) {
      if (!p->succ.load().mark) ++n;
    }
    return n;
  }

 private:
  bool node_lt(const Node* n, const Key& k) const {
    if (n->kind == Node::Kind::kHead) return true;
    if (n->kind == Node::Kind::kTail) return false;
    return comp_(n->key, k);
  }
  bool node_eq(const Node* n, const Key& k) const {
    return n->kind == Node::Kind::kInterior && !comp_(n->key, k) &&
           !comp_(k, n->key);
  }

  // Hazard-slot usage: the traversal keeps two published references live
  // (0 = curr, 1 = prev); the third of Michael's three references (next) is
  // protected transitively by the validation that prev still links to curr.
  static_assert(2 <= reclaim::HazardDomain::kMichaelListSlots,
                "MichaelListHP publishes slots 0 and 1; they must lie "
                "inside the Michael-list slot budget");

  // Find with hazard protection. On return, slot 0 protects curr and
  // slot 1 protects prev, so the caller's C&S operates on protected nodes.
  std::tuple<Node*, Node*, bool> search(
      const Key& k, reclaim::HazardDomain::ThreadSlots& hp) const {
    auto& c = stats::tls();
  try_again:
    Node* prev = head_;
    hp.set(1, prev);  // head is never retired; published for uniformity
    Node* curr = prev->succ.load().right;
    for (;;) {
      // Publish curr, then validate it is still prev's unmarked successor
      // — the audited publish-then-revalidate step (ThreadSlots::protect;
      // fence discipline documented in reclaim/hazard.h). Success proves
      // curr was not retired before our publication, so it is safe to
      // dereference until we clear the slot.
      if (!hp.protect(0, curr, [&]() -> Node* {
            const View check = prev->succ.load();
            return check.mark ? nullptr : check.right;
          })) {
        c.restart.inc();
        goto try_again;
      }
      if (curr->kind == Node::Kind::kTail) return {prev, curr, false};
      const View curr_succ = curr->succ.load();
      if (curr_succ.mark) {
        const View result = prev->succ.cas(
            View{curr, false, false}, View{curr_succ.right, false, false});
        if (result != View{curr, false, false}) {
          c.restart.inc();
          goto try_again;
        }
        c.pdelete_cas.inc();
        domain_.retire(curr);
        curr = curr_succ.right;
        c.next_update.inc();
        continue;
      }
      if (!node_lt(curr, k)) return {prev, curr, node_eq(curr, k)};
      prev = curr;
      // Not a protect() site: curr is already protected by slot 0 at this
      // moment, so copying it into slot 1 transfers an existing guarantee —
      // there is no publish/reload race to revalidate.
      hp.set(1, prev);
      curr = curr_succ.right;
      c.curr_update.inc();
    }
  }

  Compare comp_;
  reclaim::HazardDomain& domain_;
  Node* head_;
  Node* tail_;
};

}  // namespace lf
