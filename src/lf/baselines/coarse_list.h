// CoarseList — a mutex-protected sorted singly-linked list.
//
// The lock-based strawman: every operation takes one global lock, so there
// is no concurrency at all inside the structure. It demonstrates (a) the
// semantics every other implementation must match (it is trivially
// linearizable), and (b) the blocking behaviour the paper's introduction
// argues against ("a delay of one process can cause performance
// degradation and priority inversion").
//
// Traversal steps are tallied like the lock-free lists' so that
// step-per-operation comparisons in the benches are apples-to-apples.
#pragma once

#include <cstddef>
#include <functional>
#include <mutex>
#include <optional>
#include <utility>

#include "lf/instrument/counters.h"

namespace lf {

template <typename Key, typename T = Key, typename Compare = std::less<Key>>
class CoarseList {
 public:
  using key_type = Key;
  using mapped_type = T;
  using key_compare = Compare;

  CoarseList() = default;

  ~CoarseList() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next;
      delete n;
      n = next;
    }
  }

  CoarseList(const CoarseList&) = delete;
  CoarseList& operator=(const CoarseList&) = delete;

  bool insert(const Key& k, T value) {
    std::lock_guard lock(mu_);
    auto [prev, curr] = locate(k);
    bool inserted = false;
    if (curr == nullptr || comp_(k, curr->key)) {
      Node* node = new Node{k, std::move(value), curr};
      (prev == nullptr ? head_ : prev->next) = node;
      ++size_;
      inserted = true;
    }
    stats::tls().op_insert.inc();
    return inserted;
  }

  bool erase(const Key& k) {
    std::lock_guard lock(mu_);
    auto [prev, curr] = locate(k);
    bool erased = false;
    if (curr != nullptr && !comp_(k, curr->key)) {
      (prev == nullptr ? head_ : prev->next) = curr->next;
      delete curr;
      --size_;
      erased = true;
    }
    stats::tls().op_erase.inc();
    return erased;
  }

  std::optional<T> find(const Key& k) const {
    std::lock_guard lock(mu_);
    auto [prev, curr] = locate(k);
    (void)prev;
    std::optional<T> out;
    if (curr != nullptr && !comp_(k, curr->key)) out.emplace(curr->value);
    stats::tls().op_search.inc();
    return out;
  }

  bool contains(const Key& k) const {
    std::lock_guard lock(mu_);
    auto [prev, curr] = locate(k);
    (void)prev;
    stats::tls().op_search.inc();
    return curr != nullptr && !comp_(k, curr->key);
  }

  std::size_t size() const {
    std::lock_guard lock(mu_);
    return size_;
  }

 private:
  struct Node {
    Key key;
    T value;
    Node* next;
  };

  // (prev, curr) with prev.key < k <= curr.key; null prev means head slot.
  std::pair<Node*, Node*> locate(const Key& k) const {
    auto& c = stats::tls();
    Node* prev = nullptr;
    Node* curr = head_;
    while (curr != nullptr && comp_(curr->key, k)) {
      prev = curr;
      curr = curr->next;
      c.curr_update.inc();
    }
    return {prev, curr};
  }

  mutable std::mutex mu_;
  Compare comp_;
  Node* head_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace lf
