// LazyList — the lock-based fine-grained list of Heller, Herlihy, Luchangco,
// Moir, Scherer & Shavit ("A Lazy Concurrent List-Based Set Algorithm",
// OPODIS 2005). Included as the strongest LOCK-BASED comparison point: it
// postdates the paper but is the standard lock-based contender in later
// experimental studies of exactly these structures.
//
// Design: per-node mutexes, a `marked` flag for logical deletion, optimistic
// traversal with post-lock validation, and a WAIT-FREE contains() that never
// locks. Because contains() traverses without locks, unlinked nodes must
// outlive concurrent readers: retirement goes through the epoch domain just
// like the lock-free lists.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <mutex>
#include <optional>
#include <utility>

#include "lf/instrument/counters.h"
#include "lf/reclaim/epoch.h"

namespace lf {

template <typename Key, typename T = Key, typename Compare = std::less<Key>>
class LazyList {
 public:
  using key_type = Key;
  using mapped_type = T;
  using key_compare = Compare;

  explicit LazyList(reclaim::EpochDomain& domain =
                        reclaim::EpochDomain::global())
      : domain_(domain) {
    head_ = new Node(Node::Kind::kHead, Key{}, T{});
    tail_ = new Node(Node::Kind::kTail, Key{}, T{});
    head_->next.store(tail_, std::memory_order_relaxed);
  }

  ~LazyList() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next.load(std::memory_order_relaxed);
      delete n;
      n = next;
    }
  }

  LazyList(const LazyList&) = delete;
  LazyList& operator=(const LazyList&) = delete;

  bool insert(const Key& k, T value) {
    [[maybe_unused]] auto guard = domain_.guard();
    bool inserted = false;
    for (;;) {
      auto [pred, curr] = locate(k);
      std::scoped_lock lock(pred->mu, curr->mu);
      if (!validate(pred, curr)) {
        stats::tls().restart.inc();
        continue;
      }
      if (node_eq(curr, k)) break;  // duplicate
      Node* node = new Node(Node::Kind::kInterior, k, std::move(value));
      node->next.store(curr, std::memory_order_relaxed);
      pred->next.store(node, std::memory_order_release);
      inserted = true;
      break;
    }
    stats::tls().op_insert.inc();
    return inserted;
  }

  bool erase(const Key& k) {
    [[maybe_unused]] auto guard = domain_.guard();
    bool erased = false;
    for (;;) {
      auto [pred, curr] = locate(k);
      std::scoped_lock lock(pred->mu, curr->mu);
      if (!validate(pred, curr)) {
        stats::tls().restart.inc();
        continue;
      }
      if (!node_eq(curr, k)) break;  // absent
      curr->marked.store(true, std::memory_order_release);  // logical
      pred->next.store(curr->next.load(std::memory_order_relaxed),
                       std::memory_order_release);          // physical
      domain_.retire(curr);
      erased = true;
      break;
    }
    stats::tls().op_erase.inc();
    return erased;
  }

  // Wait-free: one pass, no locks, no retries.
  bool contains(const Key& k) const {
    [[maybe_unused]] auto guard = domain_.guard();
    auto& c = stats::tls();
    Node* curr = head_;
    while (node_lt(curr, k)) {
      curr = curr->next.load(std::memory_order_acquire);
      c.curr_update.inc();
    }
    stats::tls().op_search.inc();
    return node_eq(curr, k) && !curr->marked.load(std::memory_order_acquire);
  }

  std::optional<T> find(const Key& k) const {
    [[maybe_unused]] auto guard = domain_.guard();
    auto& c = stats::tls();
    Node* curr = head_;
    while (node_lt(curr, k)) {
      curr = curr->next.load(std::memory_order_acquire);
      c.curr_update.inc();
    }
    stats::tls().op_search.inc();
    std::optional<T> out;
    if (node_eq(curr, k) && !curr->marked.load(std::memory_order_acquire))
      out.emplace(curr->value);
    return out;
  }

  std::size_t size() const {
    [[maybe_unused]] auto guard = domain_.guard();
    std::size_t n = 0;
    for (Node* p = head_->next.load(std::memory_order_acquire);
         p->kind != Node::Kind::kTail;
         p = p->next.load(std::memory_order_acquire)) {
      if (!p->marked.load(std::memory_order_acquire)) ++n;
    }
    return n;
  }

 private:
  struct Node {
    enum class Kind : unsigned char { kHead, kInterior, kTail };

    Kind kind;
    Key key;
    T value;
    std::atomic<Node*> next{nullptr};
    std::atomic<bool> marked{false};
    std::mutex mu;

    Node(Kind k, Key key_arg, T value_arg)
        : kind(k), key(std::move(key_arg)), value(std::move(value_arg)) {}
  };

  bool node_lt(const Node* n, const Key& k) const {
    if (n->kind == Node::Kind::kHead) return true;
    if (n->kind == Node::Kind::kTail) return false;
    return comp_(n->key, k);
  }
  bool node_eq(const Node* n, const Key& k) const {
    return n->kind == Node::Kind::kInterior && !comp_(n->key, k) &&
           !comp_(k, n->key);
  }

  // Unlocked optimistic traversal: pred.key < k <= curr.key.
  std::pair<Node*, Node*> locate(const Key& k) const {
    auto& c = stats::tls();
    Node* pred = head_;
    Node* curr = pred->next.load(std::memory_order_acquire);
    while (node_lt(curr, k)) {
      pred = curr;
      curr = curr->next.load(std::memory_order_acquire);
      c.curr_update.inc();
    }
    return {pred, curr};
  }

  // Post-lock validation: neither node deleted, still adjacent.
  static bool validate(const Node* pred, const Node* curr) {
    return !pred->marked.load(std::memory_order_acquire) &&
           !curr->marked.load(std::memory_order_acquire) &&
           pred->next.load(std::memory_order_acquire) == curr;
  }

  Compare comp_;
  reclaim::EpochDomain& domain_;
  Node* head_;
  Node* tail_;
};

}  // namespace lf
