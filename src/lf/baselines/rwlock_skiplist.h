// RWLockSkipList — Pugh's sequential skip list ("Skip Lists: A Probabilistic
// Alternative to Balanced Trees", CACM 1990; the paper's reference [12])
// behind a readers-writer lock.
//
// This models the lock-based concurrent skip lists the paper cites
// ([11], [13]) at the coarsest granularity: searches share the structure,
// updates exclude everyone. It is the lock-based comparison point for
// experiment E4 and doubles as the REFERENCE IMPLEMENTATION for
// differential tests (its sequential core is simple enough to be obviously
// correct).
#pragma once

#include <cstddef>
#include <functional>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <thread>
#include <utility>

#include "lf/instrument/counters.h"
#include "lf/util/random.h"

namespace lf {

template <typename Key, typename T = Key, typename Compare = std::less<Key>,
          int MaxLevel = 24>
class RWLockSkipList {
 public:
  using key_type = Key;
  using mapped_type = T;
  using key_compare = Compare;

  RWLockSkipList() {
    head_ = new Node(MaxLevel, Key{}, T{});
    for (int lv = 0; lv < MaxLevel; ++lv) head_->next[lv] = nullptr;
  }

  ~RWLockSkipList() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next[0];
      delete n;
      n = next;
    }
  }

  RWLockSkipList(const RWLockSkipList&) = delete;
  RWLockSkipList& operator=(const RWLockSkipList&) = delete;

  bool insert(const Key& k, T value) {
    std::unique_lock lock(mu_);
    Node* preds[MaxLevel];
    Node* curr = locate(k, preds);
    bool inserted = false;
    if (curr == nullptr || comp_(k, curr->key)) {
      const int h = tls_rng().tower_height(MaxLevel);
      Node* node = new Node(h, k, std::move(value));
      for (int lv = 0; lv < h; ++lv) {
        node->next[lv] = next_of(preds[lv], lv);
        set_next(preds[lv], lv, node);
      }
      if (h > level_) level_ = h;
      ++size_;
      inserted = true;
    }
    stats::tls().op_insert.inc();
    return inserted;
  }

  bool erase(const Key& k) {
    std::unique_lock lock(mu_);
    Node* preds[MaxLevel];
    Node* curr = locate(k, preds);
    bool erased = false;
    if (curr != nullptr && !comp_(k, curr->key)) {
      for (int lv = 0; lv < curr->height; ++lv) {
        if (next_of(preds[lv], lv) == curr)
          set_next(preds[lv], lv, curr->next[lv]);
      }
      delete curr;
      --size_;
      erased = true;
    }
    stats::tls().op_erase.inc();
    return erased;
  }

  std::optional<T> find(const Key& k) const {
    std::shared_lock lock(mu_);
    Node* preds[MaxLevel];
    Node* curr = locate(k, preds);
    std::optional<T> out;
    if (curr != nullptr && !comp_(k, curr->key)) out.emplace(curr->value);
    stats::tls().op_search.inc();
    return out;
  }

  bool contains(const Key& k) const {
    std::shared_lock lock(mu_);
    Node* preds[MaxLevel];
    Node* curr = locate(k, preds);
    stats::tls().op_search.inc();
    return curr != nullptr && !comp_(k, curr->key);
  }

  std::size_t size() const {
    std::shared_lock lock(mu_);
    return size_;
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    std::shared_lock lock(mu_);
    for (Node* p = head_->next[0]; p != nullptr; p = p->next[0])
      fn(p->key, p->value);
  }

 private:
  struct Node {
    int height;
    Key key;
    T value;
    Node* next[MaxLevel];

    Node(int h, Key key_arg, T value_arg)
        : height(h), key(std::move(key_arg)), value(std::move(value_arg)) {}
  };

  static Xoshiro256& tls_rng() {
    thread_local Xoshiro256 rng(
        0x94d049bb133111ebULL ^
        std::hash<std::thread::id>{}(std::this_thread::get_id()));
    return rng;
  }

  Node* next_of(Node* n, int lv) const { return n->next[lv]; }
  void set_next(Node* n, int lv, Node* to) const { n->next[lv] = to; }

  // Standard Pugh search: fills preds[] and returns the first node with
  // key >= k at level 0 (or null).
  Node* locate(const Key& k, Node** preds) const {
    auto& c = stats::tls();
    Node* pred = head_;
    for (int lv = level_ - 1; lv >= 0; --lv) {
      Node* curr = pred->next[lv];
      while (curr != nullptr && comp_(curr->key, k)) {
        pred = curr;
        curr = curr->next[lv];
        c.curr_update.inc();
      }
      preds[lv] = pred;
    }
    for (int lv = level_; lv < MaxLevel; ++lv) preds[lv] = head_;
    return preds[0]->next[0];
  }

  mutable std::shared_mutex mu_;
  Compare comp_;
  Node* head_;
  int level_ = 1;  // highest level in use
  std::size_t size_ = 0;
};

}  // namespace lf
