// RestartSkipList — a lock-free skip list in the Fraser / Harris style
// (the paper's reference [2]; also the textbook algorithm of Herlihy &
// Shavit). It models the design the paper contrasts with in Section 4:
// "Fraser's algorithms use Harris's design style where an operation
// restarts if it detects interference from a concurrent operation."
//
// Architecture: Pugh's original — ONE node per key with an array of
// (next pointer, mark bit) successor fields, one per level. Deletion marks
// the node's levels top-down and lets find() snip marked nodes; ANY C&S
// failure during find() restarts the whole descent from the top of the
// head tower (counted in stats::restart). No backlinks, no flags, no
// recovery — the contrast for experiments E4/E7.
//
// Reclamation: a node unlinked at level 0 can remain linked at upper
// levels, so per-unlink retirement is unsound for ANY grace-period scheme.
// Production designs solve this with careful link-count tracking; as a
// baseline, this implementation keeps an allocation registry (a Treiber
// stack of every node ever allocated) and frees everything in the
// destructor. Memory is reclaimed at teardown, not during the run — noted
// in DESIGN.md and irrelevant to the step/throughput comparisons it is
// used for.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <thread>
#include <utility>

#include "lf/chaos/chaos.h"
#include "lf/instrument/counters.h"
#include "lf/sync/succ_field.h"
#include "lf/util/random.h"

namespace lf {

template <typename Key, typename T = Key, typename Compare = std::less<Key>,
          int MaxLevel = 24>
class RestartSkipList {
 public:
  using key_type = Key;
  using mapped_type = T;
  using key_compare = Compare;

  struct Node;

 private:
  using Succ = sync::SuccField<Node>;
  using View = sync::SuccView<Node>;

 public:
  static constexpr int kMaxTowerHeight = MaxLevel;

  struct alignas(8) Node {
    enum class Kind : unsigned char { kHead, kInterior, kTail };

    Kind kind;
    int height;  // levels 0..height-1 in use
    Key key;
    T value;
    Succ next[MaxLevel];
    Node* alloc_next = nullptr;  // allocation-registry link

    Node(Kind k, int h, Key key_arg, T value_arg)
        : kind(k),
          height(h),
          key(std::move(key_arg)),
          value(std::move(value_arg)) {}
  };

  RestartSkipList() {
    head_ = new Node(Node::Kind::kHead, MaxLevel, Key{}, T{});
    tail_ = new Node(Node::Kind::kTail, MaxLevel, Key{}, T{});
    for (int lv = 0; lv < MaxLevel; ++lv)
      head_->next[lv].store_unsynchronized(View{tail_, false, false});
  }

  ~RestartSkipList() {
    Node* n = alloc_head_.load(std::memory_order_acquire);
    while (n != nullptr) {
      Node* next = n->alloc_next;
      delete n;
      n = next;
    }
    delete head_;
    delete tail_;
  }

  RestartSkipList(const RestartSkipList&) = delete;
  RestartSkipList& operator=(const RestartSkipList&) = delete;

  bool insert(const Key& k, T value) {
    auto& c = stats::tls();
    Node* preds[MaxLevel];
    Node* succs[MaxLevel];
    if (find(k, preds, succs)) {
      stats::tls().op_insert.inc();
      return false;  // duplicate detected before allocating: zero allocs
    }
    const int h = tls_rng().tower_height(MaxLevel);
    Node* node = new Node(Node::Kind::kInterior, h, k, std::move(value));
    for (;;) {
      for (int lv = 0; lv < h; ++lv)
        node->next[lv].store_unsynchronized(View{succs[lv], false, false});
      // Link level 0: the linearization point.
      const View res =
          chaos_cas(chaos::Site::kBaseInsertCas, preds[0]->next[0],
                    View{succs[0], false, false}, View{node, false, false});
      if (res != View{succs[0], false, false}) {
        c.restart.inc();
        if (find(k, preds, succs)) {
          delete node;  // never published; lost to a mid-retry duplicate
          stats::tls().op_insert.inc();
          return false;
        }
        continue;
      }
      c.insert_cas.inc();
      // Published: hand the node to the allocation registry (reclaimed at
      // destruction; this baseline deliberately leaks until then).
      register_allocation(node);
      // Link the upper levels, re-finding on interference.
      for (int lv = 1; lv < h; ++lv) {
        for (;;) {
          const View mine = node->next[lv].load();
          if (mine.mark) goto done;  // concurrent remove reached this level
          Node* succ = succs[lv];
          if (mine.right != succ) {
            const View redirect = node->next[lv].cas(
                View{mine.right, false, false}, View{succ, false, false});
            if (redirect != View{mine.right, false, false}) continue;
          }
          const View link =
              chaos_cas(chaos::Site::kBaseInsertCas, preds[lv]->next[lv],
                        View{succ, false, false}, View{node, false, false});
          if (link == View{succ, false, false}) {
            c.insert_cas.inc();
            break;
          }
          c.restart.inc();
          if (!find(k, preds, succs) || succs[0] != node) goto done;
        }
      }
    done:
      stats::tls().op_insert.inc();
      return true;
    }
  }

  bool erase(const Key& k) {
    auto& c = stats::tls();
    Node* preds[MaxLevel];
    Node* succs[MaxLevel];
    bool erased = false;
    if (find(k, preds, succs)) {
      Node* victim = succs[0];
      // Mark the upper levels top-down.
      for (int lv = victim->height - 1; lv >= 1; --lv) {
        View v = victim->next[lv].load();
        while (!v.mark) {
          victim->next[lv].cas(View{v.right, false, false},
                               View{v.right, true, false});
          v = victim->next[lv].load();
        }
      }
      // Mark level 0: whoever lands this C&S owns the deletion.
      for (;;) {
        const View v = victim->next[0].load();
        if (v.mark) break;  // a concurrent erase won
        const View res =
            chaos_cas(chaos::Site::kBaseMarkCas, victim->next[0],
                      View{v.right, false, false}, View{v.right, true, false});
        if (res == View{v.right, false, false}) {
          c.mark_cas.inc();
          erased = true;
          find(k, preds, succs);  // snip the marked node everywhere
          break;
        }
      }
    }
    stats::tls().op_erase.inc();
    return erased;
  }

  std::optional<T> find(const Key& k) const {
    Node* preds[MaxLevel];
    Node* succs[MaxLevel];
    std::optional<T> out;
    if (find(k, preds, succs)) out.emplace(succs[0]->value);
    stats::tls().op_search.inc();
    return out;
  }

  bool contains(const Key& k) const {
    // Wait-free-style read-only traversal (Herlihy-Shavit contains): skips
    // marked nodes without snipping, so it never restarts.
    auto& c = stats::tls();
    Node* pred = head_;
    Node* curr = nullptr;
    for (int lv = MaxLevel - 1; lv >= 0; --lv) {
      curr = pred->next[lv].load().right;
      for (;;) {
        View curr_succ = curr->next[lv].load();
        while (curr_succ.mark) {
          curr = curr_succ.right;
          curr_succ = curr->next[lv].load();
          c.next_update.inc();
        }
        if (node_lt(curr, k)) {
          pred = curr;
          curr = curr_succ.right;
          c.curr_update.inc();
        } else {
          break;
        }
      }
    }
    stats::tls().op_search.inc();
    return node_eq(curr, k) && !curr->next[0].load().mark;
  }

  std::size_t size() const {
    std::size_t n = 0;
    for (Node* p = head_->next[0].load().right; p->kind != Node::Kind::kTail;
         p = p->next[0].load().right) {
      if (!p->next[0].load().mark) ++n;
    }
    return n;
  }

 private:
  // Chaos wrapper, as in HarrisList: E12 forces failures here to measure
  // restart-from-the-top recovery against FRSkipList's backlink recovery.
  static View chaos_cas([[maybe_unused]] chaos::Site site, Succ& field,
                        View expected, View desired) {
#if LF_CHAOS
    chaos::point(site);
    if (chaos::force_cas_fail(site)) {
      stats::tls().cas_attempt.inc();
      return View{nullptr, true, false};
    }
#endif
    return field.cas(expected, desired);
  }

  bool node_lt(const Node* n, const Key& k) const {
    if (n->kind == Node::Kind::kHead) return true;
    if (n->kind == Node::Kind::kTail) return false;
    return comp_(n->key, k);
  }
  bool node_eq(const Node* n, const Key& k) const {
    return n->kind == Node::Kind::kInterior && !comp_(n->key, k) &&
           !comp_(k, n->key);
  }

  static Xoshiro256& tls_rng() {
    thread_local Xoshiro256 rng(
        0xd1b54a32d192ed03ULL ^
        std::hash<std::thread::id>{}(std::this_thread::get_id()));
    return rng;
  }

  void register_allocation(Node* node) const {
    Node* old = alloc_head_.load(std::memory_order_relaxed);
    do {
      node->alloc_next = old;
    } while (!alloc_head_.compare_exchange_weak(old, node,
                                                std::memory_order_release,
                                                std::memory_order_relaxed));
  }

  // The Herlihy-Shavit find: descends the head tower computing preds/succs
  // at every level, snipping marked nodes; restarts the whole descent on
  // any failed snip. Returns whether an unmarked level-0 match was found.
  bool find(const Key& k, Node** preds, Node** succs) const {
    auto& c = stats::tls();
  retry:
    Node* pred = head_;
    for (int lv = MaxLevel - 1; lv >= 0; --lv) {
      Node* curr = pred->next[lv].load().right;
      for (;;) {
        View curr_succ = curr->next[lv].load();
        while (curr_succ.mark) {
          const View res =
              chaos_cas(chaos::Site::kBaseUnlinkCas, pred->next[lv],
                        View{curr, false, false},
                        View{curr_succ.right, false, false});
          if (res != View{curr, false, false}) {
            c.restart.inc();
            goto retry;
          }
          c.pdelete_cas.inc();
          curr = curr_succ.right;
          curr_succ = curr->next[lv].load();
          c.next_update.inc();
        }
        if (node_lt(curr, k)) {
          pred = curr;
          curr = curr_succ.right;
          c.curr_update.inc();
        } else {
          break;
        }
      }
      preds[lv] = pred;
      succs[lv] = curr;
    }
    return node_eq(succs[0], k);
  }

  Compare comp_;
  Node* head_;
  Node* tail_;
  mutable std::atomic<Node*> alloc_head_{nullptr};
};

}  // namespace lf
