// HarrisList — T. Harris, "A Pragmatic Implementation of Non-Blocking
// Linked-Lists", DISC 2001 (the paper's reference [3] and its main
// comparison target).
//
// Each node's successor field carries a single MARK bit: deletion marks the
// node (logical deletion, freezing its successor field) and then unlinks it
// (physical deletion). The crucial behavioural difference from FRList is
// what happens on interference: "When this happens, Harris's algorithms
// require P1 to restart from the beginning of the list, which can lead to
// poor performance" (Section 3.1). Every such restart is counted in
// stats::restart, and the paper's Ω(n̄·c̄) adversarial execution against
// this list is reproduced by bench_adversarial (E1) through the same
// two-phase insertion hooks FRList exposes.
//
// Reclamation: a node (or chain of marked nodes) is retired by the thread
// whose C&S physically unlinked it. Safe under epoch reclamation; NOT safe
// under hazard pointers (Harris's traversal can hold pointers to freed
// chains — that is exactly the problem Michael's variant fixes).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <tuple>
#include <utility>

#include "lf/chaos/chaos.h"
#include "lf/instrument/counters.h"
#include "lf/reclaim/epoch.h"
#include "lf/reclaim/reclaimer.h"
#include "lf/sync/succ_field.h"

namespace lf {

template <typename Key, typename T = Key, typename Compare = std::less<Key>,
          typename Reclaimer = reclaim::EpochReclaimer>
class HarrisList {
 public:
  using key_type = Key;
  using mapped_type = T;
  using key_compare = Compare;

  struct Node;

 private:
  using Succ = sync::SuccField<Node>;
  using View = sync::SuccView<Node>;

 public:
  struct alignas(8) Node {
    enum class Kind : unsigned char { kHead, kInterior, kTail };

    Kind kind;
    Key key;
    T value;
    Succ succ;  // flag bit unused; mark bit only

    Node(Kind k, Key key_arg, T value_arg)
        : kind(k), key(std::move(key_arg)), value(std::move(value_arg)) {}
  };

  HarrisList() {
    head_ = new Node(Node::Kind::kHead, Key{}, T{});
    tail_ = new Node(Node::Kind::kTail, Key{}, T{});
    head_->succ.store_unsynchronized(View{tail_, false, false});
  }

  ~HarrisList() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->succ.load().right;
      delete n;
      n = next;
    }
  }

  HarrisList(const HarrisList&) = delete;
  HarrisList& operator=(const HarrisList&) = delete;

  bool insert(const Key& k, T value) {
    [[maybe_unused]] auto guard = reclaimer_.guard();
    Node* left;
    Node* right;
    std::tie(left, right) = search(k);
    if (node_eq(right, k)) {
      // Duplicate detected before allocating: this path costs no
      // allocator traffic at all.
      stats::tls().op_insert.inc();
      return false;
    }
    Node* node = new Node(Node::Kind::kInterior, k, std::move(value));
    for (;;) {
      node->succ.store_unsynchronized(View{right, false, false});
      const View result =
          chaos_cas(chaos::Site::kBaseInsertCas, left->succ,
                    View{right, false, false}, View{node, false, false});
      if (result == View{right, false, false}) {
        stats::tls().insert_cas.inc();
        stats::tls().op_insert.inc();
        return true;
      }
      stats::tls().restart.inc();  // Harris: restart from the head
      std::tie(left, right) = search(k);
      if (node_eq(right, k)) {
        delete node;  // never published; lost to a mid-retry duplicate
        stats::tls().op_insert.inc();
        return false;
      }
    }
  }

  bool erase(const Key& k) {
    [[maybe_unused]] auto guard = reclaimer_.guard();
    bool erased = false;
    for (;;) {
      auto [left, right] = search(k);
      if (!node_eq(right, k)) break;  // not found
      const View right_succ = right->succ.load();
      if (right_succ.mark) {
        stats::tls().restart.inc();
        continue;
      }
      // Logical deletion: mark right.
      const View result = chaos_cas(
          chaos::Site::kBaseMarkCas, right->succ,
          View{right_succ.right, false, false},
          View{right_succ.right, true, false});
      if (result != View{right_succ.right, false, false}) {
        stats::tls().restart.inc();
        continue;
      }
      stats::tls().mark_cas.inc();
      erased = true;
      // Physical deletion: try once; on failure let a search clean up.
      const View unlink =
          chaos_cas(chaos::Site::kBaseUnlinkCas, left->succ,
                    View{right, false, false},
                    View{right_succ.right, false, false});
      if (unlink == View{right, false, false}) {
        stats::tls().pdelete_cas.inc();
        reclaimer_.retire(right);
      } else {
        search(k);
      }
      break;
    }
    stats::tls().op_erase.inc();
    return erased;
  }

  std::optional<T> find(const Key& k) const {
    [[maybe_unused]] auto guard = reclaimer_.guard();
    auto [left, right] = search(k);
    (void)left;
    std::optional<T> out;
    if (node_eq(right, k)) out.emplace(right->value);
    stats::tls().op_search.inc();
    return out;
  }

  bool contains(const Key& k) const {
    [[maybe_unused]] auto guard = reclaimer_.guard();
    auto [left, right] = search(k);
    (void)left;
    stats::tls().op_search.inc();
    return node_eq(right, k);
  }

  std::size_t size() const {
    [[maybe_unused]] auto guard = reclaimer_.guard();
    std::size_t n = 0;
    for (Node* p = head_->succ.load().right; p->kind != Node::Kind::kTail;
         p = p->succ.load().right) {
      if (!p->succ.load().mark) ++n;
    }
    return n;
  }

  // ---- Two-phase insertion hooks (benchmark adversary, E1) -------------
  // Mirror of FRList::insert_locate/insert_complete so the Section 3.1
  // schedule can be applied to both lists identically.
  struct InsertCursor {
    Key key{};
    Node* left = nullptr;
    Node* right = nullptr;
    Node* node = nullptr;
  };

  bool insert_locate(const Key& k, T value, InsertCursor& cur) {
    [[maybe_unused]] auto guard = reclaimer_.guard();
    auto [left, right] = search(k);
    if (node_eq(right, k)) return false;
    cur.key = k;
    cur.left = left;
    cur.right = right;
    cur.node = new Node(Node::Kind::kInterior, k, std::move(value));
    return true;
  }

  bool insert_complete(InsertCursor& cur) {
    [[maybe_unused]] auto guard = reclaimer_.guard();
    Node* left = cur.left;
    Node* right = cur.right;
    bool inserted = false;
    for (;;) {
      cur.node->succ.store_unsynchronized(View{right, false, false});
      const View result =
          chaos_cas(chaos::Site::kBaseInsertCas, left->succ,
                    View{right, false, false}, View{cur.node, false, false});
      if (result == View{right, false, false}) {
        stats::tls().insert_cas.inc();
        inserted = true;
        break;
      }
      stats::tls().restart.inc();  // the whole search repeats from head
      std::tie(left, right) = search(cur.key);
      if (node_eq(right, cur.key)) {
        delete cur.node;
        break;
      }
    }
    cur.node = nullptr;
    stats::tls().op_insert.inc();
    return inserted;
  }

  // One iteration of the insert retry loop (mirror of
  // FRList::insert_try_once): one C&S attempt; on failure, Harris's
  // recovery is a full restart — a complete search from the head.
  enum class TryResult { kInserted, kRetry, kDuplicate };

  TryResult insert_try_once(InsertCursor& cur) {
    [[maybe_unused]] auto guard = reclaimer_.guard();
    auto& c = stats::tls();
    cur.node->succ.store_unsynchronized(View{cur.right, false, false});
    const View result =
        chaos_cas(chaos::Site::kBaseInsertCas, cur.left->succ,
                  View{cur.right, false, false}, View{cur.node, false, false});
    if (result == View{cur.right, false, false}) {
      c.insert_cas.inc();
      c.op_insert.inc();
      cur.node = nullptr;
      return TryResult::kInserted;
    }
    c.restart.inc();  // recovery = restart: re-search the whole list
    auto [left, right] = search(cur.key);
    if (node_eq(right, cur.key)) {
      delete cur.node;
      cur.node = nullptr;
      c.op_insert.inc();
      return TryResult::kDuplicate;
    }
    cur.left = left;
    cur.right = right;
    return TryResult::kRetry;
  }

  Node* head() const noexcept { return head_; }

 private:
  // Chaos wrapper, as in FRList: E12 forces failures here so restart-based
  // recovery can be compared against FRList's backlink recovery under the
  // same injected fault train.
  static View chaos_cas([[maybe_unused]] chaos::Site site, Succ& field,
                        View expected, View desired) {
#if LF_CHAOS
    chaos::point(site);
    if (chaos::force_cas_fail(site)) {
      stats::tls().cas_attempt.inc();
      return View{nullptr, true, false};
    }
#endif
    return field.cas(expected, desired);
  }

  bool node_lt(const Node* n, const Key& k) const {
    if (n->kind == Node::Kind::kHead) return true;
    if (n->kind == Node::Kind::kTail) return false;
    return comp_(n->key, k);
  }
  bool node_eq(const Node* n, const Key& k) const {
    return n->kind == Node::Kind::kInterior && !comp_(n->key, k) &&
           !comp_(k, n->key);
  }

  // Harris's search: returns adjacent (left, right) with left unmarked,
  // left.key < k <= right.key, unlinking any marked chain between them.
  // Restarts from the head whenever a C&S fails or adjacency is lost.
  std::pair<Node*, Node*> search(const Key& k) const {
    auto& c = stats::tls();
    for (;;) {
      // Phase 1: walk from head, remembering the last unmarked node.
      Node* left = head_;
      View left_succ = left->succ.load();
      Node* t = head_;
      View t_succ = left_succ;
      Node* right;
      for (;;) {
        if (!t_succ.mark) {
          left = t;
          left_succ = t_succ;
        }
        t = t_succ.right;
        c.curr_update.inc();
        if (t->kind == Node::Kind::kTail) break;
        t_succ = t->succ.load();
        if (!t_succ.mark && !node_lt(t, k)) break;
      }
      right = t;
      // Phase 2: already adjacent?
      if (left_succ.right == right) {
        if (right->kind != Node::Kind::kTail && right->succ.load().mark) {
          c.restart.inc();
          continue;  // right got marked under us
        }
        return {left, right};
      }
      // Phase 3: unlink the marked chain between left and right.
      const View result = chaos_cas(chaos::Site::kBaseUnlinkCas, left->succ,
                                    left_succ, View{right, false, false});
      if (result == left_succ) {
        c.pdelete_cas.inc();
        // The winner retires the whole unlinked chain.
        Node* dead = left_succ.right;
        while (dead != right) {
          Node* next = dead->succ.load().right;
          reclaimer_.retire(dead);
          dead = next;
        }
        if (right->kind != Node::Kind::kTail && right->succ.load().mark) {
          c.restart.inc();
          continue;
        }
        return {left, right};
      }
      c.restart.inc();
    }
  }

  Compare comp_;
  mutable Reclaimer reclaimer_;
  Node* head_;
  Node* tail_;
};

}  // namespace lf
