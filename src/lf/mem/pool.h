// Per-thread segment pool with size-class freelists — the allocation
// substrate for the lock-free structures' hot paths.
//
// Why a custom pool: the FR structures allocate one block per insert (a
// node, or a whole flat tower) and free it through the reclaimer after a
// grace period. Routing that churn through the global allocator puts a
// lock-protected, cache-cold malloc/free pair on every insert/delete;
// "Skiplists with Foresight" identifies exactly this allocator traffic and
// the resulting heap-spread node placement as the dominant real-machine
// cost of skip lists. The pool removes both: allocation is a thread-local
// freelist pop (or bump-pointer carve), and freed blocks are recycled
// line-aligned and warm.
//
// Design:
//   * Size classes are multiples of one cache line (64 B) up to 4 KiB;
//     larger requests fall through to the aligned global allocator
//     (counted, so benchmarks can verify the hot path never takes it).
//   * Every block is 64-byte aligned and a whole number of lines, so no
//     two pool blocks ever share a cache line — adjacent nodes cannot
//     false-share, and the tag bits of SuccField always have room.
//   * Each thread owns a cache: one freelist per class plus a bump region
//     carved from 256 KiB segments. allocate() touches no shared state
//     unless the local freelist AND bump region are empty, in which case
//     it adopts a batch from the shared pool or carves a fresh segment.
//   * deallocate() pushes onto the CALLING thread's freelist: the freeing
//     thread becomes the block's new owner. Under epoch-integrated
//     reclamation frees happen on whichever thread advances the epoch, so
//     ownership migrates with the reclamation work — by then the grace
//     period has passed and the block is safe to hand out again (see
//     DESIGN.md "Memory layout & reclamation-integrated pooling" for the
//     ABA argument).
//   * Segments are owned by an immortal process-wide registry and never
//     returned to the OS: a block freed during late static teardown (the
//     global epoch domain drains after main()) must still have a live
//     segment under it. Exiting threads donate their freelists to the
//     shared pool; the unfinished bump region is chopped into blocks and
//     donated too, so nothing is stranded.
//
// Accounting (PoolTotals) is process-wide and monotone; benchmarks diff
// snapshots around a measured region, and the pool unit tests assert the
// grow/recycle arithmetic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <thread>

#include "lf/util/align.h"

namespace lf::mem {

// One cache line per granule; classes 1..kNumClasses granules.
inline constexpr std::size_t kGranule = kCacheLineSize;
inline constexpr std::size_t kNumClasses = 64;
inline constexpr std::size_t kMaxPooledBytes = kGranule * kNumClasses;
inline constexpr std::size_t kSegmentBytes = 256 * 1024;
// Blocks adopted from the shared pool per refill (amortizes the lock).
inline constexpr std::size_t kAdoptBatch = 32;

// Process-wide, monotone counters. Exact when read at quiescence; relaxed
// (may be momentarily inconsistent) under concurrency, like all stats here.
struct PoolTotals {
  std::uint64_t requests = 0;        // pool_allocate calls
  std::uint64_t fresh_blocks = 0;    // served by carving a bump region
  std::uint64_t recycled_blocks = 0; // served from a freelist
  std::uint64_t freed_blocks = 0;    // pool_deallocate calls (pooled sizes)
  std::uint64_t segments = 0;        // 256 KiB segments from ::operator new
  std::uint64_t oversize = 0;        // requests > kMaxPooledBytes (global)
  std::uint64_t heap_allocs = 0;     // HeapAlloc::allocate calls
  std::uint64_t heap_frees = 0;      // HeapAlloc::deallocate calls
  std::uint64_t adopted_blocks = 0;  // blocks scavenged by pool_adopt_stalled

  // Global-allocator hits attributable to pooled allocation.
  std::uint64_t global_hits() const noexcept { return segments + oversize; }

  PoolTotals operator-(const PoolTotals& rhs) const noexcept {
    PoolTotals out;
    out.requests = requests - rhs.requests;
    out.fresh_blocks = fresh_blocks - rhs.fresh_blocks;
    out.recycled_blocks = recycled_blocks - rhs.recycled_blocks;
    out.freed_blocks = freed_blocks - rhs.freed_blocks;
    out.segments = segments - rhs.segments;
    out.oversize = oversize - rhs.oversize;
    out.heap_allocs = heap_allocs - rhs.heap_allocs;
    out.heap_frees = heap_frees - rhs.heap_frees;
    out.adopted_blocks = adopted_blocks - rhs.adopted_blocks;
    return out;
  }
};

// Raw pool interface. Returned memory is always 64-byte aligned. `bytes`
// passed to pool_deallocate must equal the original request (the usual
// sized-deallocation contract).
void* pool_allocate(std::size_t bytes);
void pool_deallocate(void* p, std::size_t bytes);
PoolTotals pool_totals();

// Stalled-thread adoption (DESIGN.md §11): donate the thread cache of a
// thread the CALLER VOUCHES cannot run concurrently with this call (parked
// with a happens-before edge, or verifiably dead) to the shared pool — its
// per-class freelists are spliced in and its unfinished bump region is
// chopped into blocks, exactly as clean thread exit would have done. The
// cache itself stays registered: if the thread resumes it simply finds
// empty freelists and refills through the normal shared-pool/segment path.
// Returns the number of blocks scavenged (also surfaced as
// PoolTotals::adopted_blocks).
std::uint64_t pool_adopt_stalled(std::thread::id tid);

// 64-byte-aligned global-allocator path with the same interface, so the
// allocation policy is a template knob and benchmarks can compare like
// with like (both policies line-isolate their blocks).
void* heap_allocate(std::size_t bytes);
void heap_deallocate(void* p, std::size_t bytes);

// ---- Allocation policies (template parameters of the structures) -------

struct PoolAlloc {
  static constexpr const char* kName = "pool";
  static void* allocate(std::size_t bytes) { return pool_allocate(bytes); }
  static void deallocate(void* p, std::size_t bytes) {
    pool_deallocate(p, bytes);
  }
};

struct HeapAlloc {
  static constexpr const char* kName = "heap";
  static void* allocate(std::size_t bytes) { return heap_allocate(bytes); }
  static void deallocate(void* p, std::size_t bytes) {
    heap_deallocate(p, bytes);
  }
};

}  // namespace lf::mem
