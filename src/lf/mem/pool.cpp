#include "lf/mem/pool.h"

#include <atomic>
#include <cassert>
#include <mutex>
#include <new>
#include <vector>

#include "lf/chaos/chaos.h"
#include "lf/instrument/counters.h"

namespace lf::mem {
namespace {

// Intrusive freelist link: a free block's first word points at the next
// free block of the same class. Safe because blocks are >= 64 bytes and
// dead (no reader can hold a reference once a block reaches a freelist —
// the reclaimer's grace period ended before the deleter ran).
struct FreeBlock {
  FreeBlock* next;
};

constexpr std::size_t size_class(std::size_t bytes) {
  return (bytes + kGranule - 1) / kGranule - 1;  // 0-based class index
}

constexpr std::size_t class_bytes(std::size_t cls) {
  return (cls + 1) * kGranule;
}

// Largest class that FITS in `bytes` (round down; requires bytes >= 64).
constexpr std::size_t fitting_class(std::size_t bytes) {
  const std::size_t granules = bytes / kGranule;
  return (granules > kNumClasses ? kNumClasses : granules) - 1;
}

// Shared side of the pool: segment ownership plus per-class overflow
// freelists that exiting threads donate to and running threads adopt from.
// Heap-allocated and never destroyed so blocks freed during late static
// teardown (e.g. the global epoch domain draining after main()) still have
// live segments under them.
struct ThreadCache;

// Live thread caches by owner, for stalled-thread adoption. Guarded by
// SharedPool::mu; entries are registered on first cache touch and removed
// by the cache's own destructor on clean thread exit.
struct CacheRef {
  ThreadCache* cache;
  std::thread::id owner;
};

struct SharedPool {
  std::mutex mu;
  FreeBlock* freelists[kNumClasses] = {};
  std::vector<void*> segments;  // owned; never returned to the OS
  std::vector<CacheRef> caches;

  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> fresh{0};
  std::atomic<std::uint64_t> recycled{0};
  std::atomic<std::uint64_t> freed{0};
  std::atomic<std::uint64_t> segment_count{0};
  std::atomic<std::uint64_t> oversize{0};
  std::atomic<std::uint64_t> heap_allocs{0};
  std::atomic<std::uint64_t> heap_frees{0};
  std::atomic<std::uint64_t> adopted{0};
};

SharedPool& shared() {
  static SharedPool* s = new SharedPool;  // immortal
  return *s;
}

// Thread-local side: one freelist per class and the current bump region.
struct ThreadCache {
  FreeBlock* freelists[kNumClasses] = {};
  char* bump = nullptr;
  char* bump_end = nullptr;

  ~ThreadCache() {
    SharedPool& s = shared();
    // Chop the unfinished bump region into the largest classes that fit so
    // no carved memory is stranded with the exiting thread.
    while (bump != nullptr &&
           static_cast<std::size_t>(bump_end - bump) >= kGranule) {
      const std::size_t cls =
          fitting_class(static_cast<std::size_t>(bump_end - bump));
      auto* b = reinterpret_cast<FreeBlock*>(bump);
      bump += class_bytes(cls);
      b->next = freelists[cls];
      freelists[cls] = b;
    }
    std::lock_guard lock(s.mu);
    std::erase_if(s.caches,
                  [this](const CacheRef& r) { return r.cache == this; });
    for (std::size_t cls = 0; cls < kNumClasses; ++cls) {
      if (freelists[cls] == nullptr) continue;
      FreeBlock* tail = freelists[cls];
      while (tail->next != nullptr) tail = tail->next;
      tail->next = s.freelists[cls];
      s.freelists[cls] = freelists[cls];
      freelists[cls] = nullptr;
    }
  }
};

// The cache is reached through a trivially-destructible pointer that the
// owner nulls on destruction. Main-thread thread_locals die BEFORE static
// storage, and the global epoch domain's teardown drain runs deleters that
// call pool_deallocate; after the cache is gone those frees fall back to
// the (immortal) shared pool instead of touching a dead thread_local.
thread_local ThreadCache* tls_ptr = nullptr;

struct TlsCacheOwner {
  ThreadCache cache;
  TlsCacheOwner() {
    SharedPool& s = shared();
    {
      std::lock_guard lock(s.mu);
      s.caches.push_back(CacheRef{&cache, std::this_thread::get_id()});
    }
    tls_ptr = &cache;
  }
  ~TlsCacheOwner() { tls_ptr = nullptr; }  // cache's dtor donates after this
};

ThreadCache* tls_cache() {
  thread_local TlsCacheOwner owner;  // constructed on first touch
  return tls_ptr;
}

// Post-teardown fallback: push straight onto the shared freelist.
void shared_deallocate(void* p, std::size_t cls) {
  SharedPool& s = shared();
  auto* b = static_cast<FreeBlock*>(p);
  std::lock_guard lock(s.mu);
  b->next = s.freelists[cls];
  s.freelists[cls] = b;
}

}  // namespace

void* pool_allocate(std::size_t bytes) {
  LF_CHAOS_POINT(kPoolAlloc);
#if LF_CHAOS
  // Injected OOM: throw before any pool state mutates, so callers observe
  // exactly what a real allocation failure at the entry would produce.
  if (chaos::should_fail_alloc(/*segment=*/false)) throw std::bad_alloc{};
#endif
  SharedPool& s = shared();
  s.requests.fetch_add(1, std::memory_order_relaxed);
  if (bytes == 0) bytes = 1;
  if (bytes > kMaxPooledBytes) {
    s.oversize.fetch_add(1, std::memory_order_relaxed);
    return ::operator new(bytes, std::align_val_t{kGranule});
  }
  const std::size_t cls = size_class(bytes);
  ThreadCache* cp = tls_cache();
  if (cp == nullptr) {
    // This thread's cache is already destroyed (static teardown): serve
    // from the shared pool, or fall back to the global allocator.
    {
      std::lock_guard lock(s.mu);
      if (FreeBlock* b = s.freelists[cls]) {
        s.freelists[cls] = b->next;
        s.recycled.fetch_add(1, std::memory_order_relaxed);
        return b;
      }
    }
    s.oversize.fetch_add(1, std::memory_order_relaxed);
    return ::operator new(class_bytes(cls), std::align_val_t{kGranule});
  }
  ThreadCache& c = *cp;

  if (c.freelists[cls] == nullptr) {
    // Adopt a batch from the shared pool (donations of exited threads,
    // plus anything another thread's cache overflowed — currently only
    // thread exit donates, so this lock is rare).
    std::lock_guard lock(s.mu);
    FreeBlock* head = s.freelists[cls];
    std::size_t n = 0;
    FreeBlock* tail = nullptr;
    for (FreeBlock* b = head; b != nullptr && n < kAdoptBatch; b = b->next) {
      tail = b;
      ++n;
    }
    if (tail != nullptr) {
      s.freelists[cls] = tail->next;
      tail->next = nullptr;
      c.freelists[cls] = head;
    }
  }
  if (c.freelists[cls] != nullptr) {
    FreeBlock* b = c.freelists[cls];
    c.freelists[cls] = b->next;
    s.recycled.fetch_add(1, std::memory_order_relaxed);
    return b;
  }

  const std::size_t sz = class_bytes(cls);
  if (static_cast<std::size_t>(c.bump_end - c.bump) < sz) {
    // Salvage the remainder (a smaller class may still fit), then carve a
    // fresh segment from the global allocator.
    while (static_cast<std::size_t>(c.bump_end - c.bump) >= kGranule) {
      const std::size_t fit =
          fitting_class(static_cast<std::size_t>(c.bump_end - c.bump));
      auto* b = reinterpret_cast<FreeBlock*>(c.bump);
      c.bump += class_bytes(fit);
      b->next = c.freelists[fit];
      c.freelists[fit] = b;
    }
    // From here to the end of the refill, every failure path must leave the
    // thread cache fully consistent: the old bump region has already been
    // chopped onto the freelists and bump/bump_end still describe an empty
    // (exhausted) region, so throwing at any point below strands nothing.
    LF_CHAOS_POINT(kPoolSegment);
#if LF_CHAOS
    if (chaos::should_fail_alloc(/*segment=*/true)) throw std::bad_alloc{};
#endif
    void* seg = ::operator new(kSegmentBytes, std::align_val_t{kGranule});
    try {
      std::lock_guard lock(s.mu);
      s.segments.push_back(seg);
    } catch (...) {
      // push_back threw (allocation of the registry's backing array): the
      // segment is not yet owned by anyone — release it or it leaks.
      ::operator delete(seg, std::align_val_t{kGranule});
      throw;
    }
    s.segment_count.fetch_add(1, std::memory_order_relaxed);
    c.bump = static_cast<char*>(seg);
    c.bump_end = c.bump + kSegmentBytes;
  }
  void* p = c.bump;
  c.bump += sz;
  s.fresh.fetch_add(1, std::memory_order_relaxed);
  return p;
}

void pool_deallocate(void* p, std::size_t bytes) {
  if (p == nullptr) return;
  LF_CHAOS_POINT(kPoolFree);
  SharedPool& s = shared();
  if (bytes == 0) bytes = 1;
  if (bytes > kMaxPooledBytes) {
    ::operator delete(p, std::align_val_t{kGranule});
    return;
  }
  const std::size_t cls = size_class(bytes);
  s.freed.fetch_add(1, std::memory_order_relaxed);
  ThreadCache* cp = tls_cache();
  if (cp == nullptr) {
    shared_deallocate(p, cls);
    return;
  }
  auto* b = static_cast<FreeBlock*>(p);
  b->next = cp->freelists[cls];
  cp->freelists[cls] = b;
}

std::uint64_t pool_adopt_stalled(std::thread::id tid) {
  SharedPool& s = shared();
  std::uint64_t adopted = 0;
  {
    // Under s.mu for the registry and the shared freelists; access to the
    // victim's own cache fields is covered by the caller's park/death
    // contract (pool.h), the same reasoning clean thread exit relies on.
    std::lock_guard lock(s.mu);
    for (const CacheRef& ref : s.caches) {
      if (ref.owner != tid) continue;
      ThreadCache& c = *ref.cache;
      while (c.bump != nullptr &&
             static_cast<std::size_t>(c.bump_end - c.bump) >= kGranule) {
        const std::size_t cls =
            fitting_class(static_cast<std::size_t>(c.bump_end - c.bump));
        auto* b = reinterpret_cast<FreeBlock*>(c.bump);
        c.bump += class_bytes(cls);
        b->next = s.freelists[cls];
        s.freelists[cls] = b;
        ++adopted;
      }
      c.bump = nullptr;
      c.bump_end = nullptr;
      for (std::size_t cls = 0; cls < kNumClasses; ++cls) {
        if (c.freelists[cls] == nullptr) continue;
        FreeBlock* tail = c.freelists[cls];
        ++adopted;
        while (tail->next != nullptr) {
          tail = tail->next;
          ++adopted;
        }
        tail->next = s.freelists[cls];
        s.freelists[cls] = c.freelists[cls];
        c.freelists[cls] = nullptr;
      }
      break;
    }
  }
  if (adopted > 0) {
    s.adopted.fetch_add(adopted, std::memory_order_relaxed);
    stats::tls().orphan_adopt.inc(adopted);
  }
  return adopted;
}

PoolTotals pool_totals() {
  SharedPool& s = shared();
  PoolTotals t;
  t.requests = s.requests.load(std::memory_order_relaxed);
  t.fresh_blocks = s.fresh.load(std::memory_order_relaxed);
  t.recycled_blocks = s.recycled.load(std::memory_order_relaxed);
  t.freed_blocks = s.freed.load(std::memory_order_relaxed);
  t.segments = s.segment_count.load(std::memory_order_relaxed);
  t.oversize = s.oversize.load(std::memory_order_relaxed);
  t.heap_allocs = s.heap_allocs.load(std::memory_order_relaxed);
  t.heap_frees = s.heap_frees.load(std::memory_order_relaxed);
  t.adopted_blocks = s.adopted.load(std::memory_order_relaxed);
  return t;
}

void* heap_allocate(std::size_t bytes) {
  shared().heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (bytes == 0) bytes = 1;
  return ::operator new(bytes, std::align_val_t{kGranule});
}

void heap_deallocate(void* p, std::size_t bytes) {
  if (p == nullptr) return;
  (void)bytes;
  shared().heap_frees.fetch_add(1, std::memory_order_relaxed);
  ::operator delete(p, std::align_val_t{kGranule});
}

}  // namespace lf::mem
