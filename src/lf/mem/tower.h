// Tower layout policies for FRSkipList: how the nodes of one skip-list
// tower are placed in memory, constructed, abandoned, and retired.
//
// The seed implementation allocated every tower level with its own `new
// Node`, so descending a tower hops across unrelated heap pages — the
// cache-miss tax "Skiplists with Foresight" identifies as the dominant
// real-machine cost of skip lists. FlatTowerLayout removes it: the whole
// tower (root + all planned levels) is ONE contiguous 64-byte-aligned
// block; the root sits at offset 0 with its hot fields (key, succ) in the
// first cache line, level v at offset (v-1)*sizeof(Node), and the `down`
// descent stays inside the block. One block also means ONE allocation per
// insert (instead of one per level) and ONE retirement per tower death.
//
// ChainedTowerLayout keeps the seed's pointer-chained placement so the
// ablation benches (bench_memory_layout) can compare both under either
// allocator. Both layouts require the Node type to provide:
//
//     planned_height   (int, root only)  — block size for flat towers
//     tower_top        (atomic<Node*>)   — highest constructed node
//     down             (Node*)           — next node toward the root
//
// which is exactly the tower-retirement bookkeeping FRSkipList::Node
// already carries (see its comments for the tower_alive protocol).
//
// Retirement is deleter-based (Reclaimer::retire_with): a flat tower's
// single deleter destroys every constructed node top-down and frees the
// block once; the chained layout retires each node with a per-node
// deleter. Either way the deleter runs only after the reclaimer's grace
// period, so a recycled block can never be handed out while a pinned
// reader still holds a pointer into it (the ABA-safety argument —
// DESIGN.md "Memory layout & reclamation-integrated pooling").
#pragma once

#include <atomic>
#include <cstddef>
#include <new>
#include <utility>

#include "lf/mem/pool.h"

namespace lf::mem {

template <typename Alloc>
struct ChainedTowerLayout {
  static constexpr bool kFlat = false;
  using Mem = Alloc;

  static constexpr const char* kName =
      Mem::kName[0] == 'p' ? "chained/pool" : "chained/heap";

  // Root of a new tower. planned_height is recorded on the root (the
  // census and the flat layout's block size both need it).
  template <typename Node, typename... Args>
  static Node* make_root(int planned_height, Args&&... args) {
    Node* root =
        ::new (Mem::allocate(sizeof(Node))) Node(std::forward<Args>(args)...);
    root->planned_height = planned_height;
    return root;
  }

  // Node for level `level` of root's tower, constructed lazily as the
  // build climbs.
  template <typename Node, typename... Args>
  static Node* make_upper(Node* /*root*/, int /*level*/, Args&&... args) {
    return ::new (Mem::allocate(sizeof(Node)))
        Node(std::forward<Args>(args)...);
  }

  // Sentinels (head levels, tail) use the same allocator so they are
  // line-isolated under both policies.
  template <typename Node, typename... Args>
  static Node* make_sentinel(Args&&... args) {
    return ::new (Mem::allocate(sizeof(Node)))
        Node(std::forward<Args>(args)...);
  }

  // A node constructed but never published: destroy and free immediately.
  template <typename Node>
  static void free_unpublished_upper(Node* n) {
    destroy_node<Node>(n);
  }
  template <typename Node>
  static void free_unpublished_root(Node* root) {
    destroy_node<Node>(root);
  }

  // Whole-tower retirement (tower_alive reached zero): hand every node of
  // the tower to the reclaimer individually, exactly like the seed.
  template <typename Node, typename Reclaimer>
  static void retire_tower(Reclaimer& r, Node* root) {
    Node* n = root->tower_top.load(std::memory_order_acquire);
    while (n != nullptr) {
      Node* below = n->down;
      r.retire_with(n, &destroy_node<Node>);
      n = below;
    }
  }

  template <typename Node>
  static void destroy_node(void* p) {
    Node* n = static_cast<Node*>(p);
    n->~Node();
    Mem::deallocate(p, sizeof(Node));
  }

  template <typename Node>
  static void free_sentinel(Node* n) {
    destroy_node<Node>(n);
  }
};

template <typename Alloc>
struct FlatTowerLayout {
  static constexpr bool kFlat = true;
  using Mem = Alloc;

  static constexpr const char* kName =
      Mem::kName[0] == 'p' ? "flat/pool" : "flat/heap";

  template <typename Node>
  static constexpr std::size_t tower_bytes(int height) {
    return sizeof(Node) * static_cast<std::size_t>(height);
  }

  // One contiguous block for the whole planned tower; the root occupies
  // slot 0 so its key and succ land in the block's first cache line.
  template <typename Node, typename... Args>
  static Node* make_root(int planned_height, Args&&... args) {
    void* block = Mem::allocate(tower_bytes<Node>(planned_height));
    Node* root = ::new (block) Node(std::forward<Args>(args)...);
    root->planned_height = planned_height;
    return root;
  }

  // Level v lives at slot v-1 of the root's block (levels are 1-based).
  template <typename Node, typename... Args>
  static Node* make_upper(Node* root, int level, Args&&... args) {
    void* slot = reinterpret_cast<char*>(root) +
                 sizeof(Node) * static_cast<std::size_t>(level - 1);
    return ::new (slot) Node(std::forward<Args>(args)...);
  }

  template <typename Node, typename... Args>
  static Node* make_sentinel(Args&&... args) {
    return ::new (Mem::allocate(sizeof(Node)))
        Node(std::forward<Args>(args)...);
  }

  // Never-published upper node: destroy in place; its slot dies with the
  // block when the tower is retired.
  template <typename Node>
  static void free_unpublished_upper(Node* n) {
    n->~Node();
  }

  // Never-published root: the whole block goes back at once.
  template <typename Node>
  static void free_unpublished_root(Node* root) {
    const int h = root->planned_height;
    root->~Node();
    Mem::deallocate(root, tower_bytes<Node>(h));
  }

  // Whole-tower retirement: ONE deleter for the whole block. The deleter
  // walks tower_top -> down -> ... -> root destroying every node that was
  // constructed (abandoned slots were already destroyed and removed from
  // the chain), then frees the block.
  template <typename Node, typename Reclaimer>
  static void retire_tower(Reclaimer& r, Node* root) {
    r.retire_with(root, &destroy_tower<Node>);
  }

  template <typename Node>
  static void destroy_tower(void* p) {
    Node* root = static_cast<Node*>(p);
    const std::size_t bytes = tower_bytes<Node>(root->planned_height);
    Node* n = root->tower_top.load(std::memory_order_acquire);
    while (n != nullptr) {
      Node* below = n->down;
      n->~Node();
      n = below;
    }
    Mem::deallocate(p, bytes);
  }

  template <typename Node>
  static void free_sentinel(Node* n) {
    n->~Node();
    Mem::deallocate(n, sizeof(Node));
  }
};

// The four configurations bench_memory_layout compares. FlatTowers is the
// default for FRSkipList; ChainedTowers reproduces the seed exactly.
using ChainedTowers = ChainedTowerLayout<HeapAlloc>;
using PooledChainedTowers = ChainedTowerLayout<PoolAlloc>;
using FlatTowers = FlatTowerLayout<PoolAlloc>;
using FlatTowersHeap = FlatTowerLayout<HeapAlloc>;

}  // namespace lf::mem
