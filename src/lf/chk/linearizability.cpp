#include "lf/chk/linearizability.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace lf::chk {
namespace {

// A set state is one bit per key.
using State = std::uint64_t;
// Which ops of the current chunk have been linearized.
using Mask = std::uint64_t;

// Apply op to state; returns false if the recorded result contradicts the
// sequential set semantics.
bool apply(OpKind kind, std::uint32_t key, bool result, State& state) {
  const State bit = State{1} << key;
  switch (kind) {
    case OpKind::kInsert:
      if (result == ((state & bit) != 0)) return false;  // ok iff was absent
      state |= bit;
      return true;
    case OpKind::kErase:
      if (result != ((state & bit) != 0)) return false;  // ok iff was present
      state &= ~bit;
      return true;
    case OpKind::kContains:
      return result == ((state & bit) != 0);
  }
  return false;
}

struct PairHash {
  std::size_t operator()(const std::pair<Mask, State>& p) const noexcept {
    // splitmix-style mix of the two words.
    std::uint64_t z = p.first ^ (p.second * 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }
};

// Exhaustive linearization search within one chunk: from `state`, try every
// not-yet-linearized op that is "minimal" (its invocation precedes the
// earliest response among pending ops — no other op MUST come first).
// Collects every reachable final state into `out`.
class ChunkSolver {
 public:
  ChunkSolver(const std::vector<Event>& ops) : ops_(ops) {
    full_ = (ops.size() == 64) ? ~Mask{0} : ((Mask{1} << ops.size()) - 1);
  }

  void solve(State entry, std::unordered_set<State>& out) {
    out_ = &out;
    dfs(0, entry);
  }

 private:
  void dfs(Mask done, State state) {
    if (done == full_) {
      out_->insert(state);
      return;
    }
    if (!seen_.insert({done, state}).second) return;
    // The earliest response among pending ops bounds which ops may be
    // linearized next: an op invoked after that response cannot precede it.
    std::uint64_t min_response = ~std::uint64_t{0};
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      if ((done >> i) & 1) continue;
      min_response = std::min(min_response, ops_[i].response);
    }
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      if ((done >> i) & 1) continue;
      if (ops_[i].invoke > min_response) continue;  // not minimal
      State next = state;
      if (!apply(ops_[i].kind, ops_[i].key, ops_[i].result, next)) continue;
      dfs(done | (Mask{1} << i), next);
    }
  }

  const std::vector<Event>& ops_;
  Mask full_;
  std::unordered_set<std::pair<Mask, State>, PairHash> seen_;
  std::unordered_set<State>* out_ = nullptr;
};

}  // namespace

std::vector<Event> HistoryRecorder::finish() const {
  std::vector<Event> all;
  for (const auto& log : per_thread_)
    all.insert(all.end(), log.begin(), log.end());
  return all;
}

CheckResult check_linearizable(std::vector<Event> history,
                               std::uint32_t key_space) {
  assert(key_space <= 64 && "state must fit one 64-bit mask");
  (void)key_space;

  CheckResult res;
  res.events = history.size();
  if (history.empty()) return res;

  std::sort(history.begin(), history.end(),
            [](const Event& a, const Event& b) { return a.invoke < b.invoke; });

  // Split at quiescent cuts: position i starts a new chunk when every
  // earlier op responded before op i was invoked. Chunks can then be solved
  // independently, threading the set of possible states through.
  std::vector<std::vector<Event>> chunks;
  std::uint64_t max_response_so_far = 0;
  for (const Event& e : history) {
    if (chunks.empty() ||
        (max_response_so_far < e.invoke && !chunks.back().empty())) {
      chunks.emplace_back();
    }
    chunks.back().push_back(e);
    max_response_so_far = std::max(max_response_so_far, e.response);
  }
  res.chunks = chunks.size();

  std::unordered_set<State> states{State{0}};  // structure started empty
  for (const auto& chunk : chunks) {
    res.largest_chunk = std::max(res.largest_chunk, chunk.size());
    if (chunk.size() > 64) {
      // Wider than the solver's op bitmask: report and stop; the verdict
      // covers the checked prefix only.
      ++res.skipped_chunks;
      return res;
    }
    std::unordered_set<State> next_states;
    ChunkSolver solver(chunk);
    for (State s : states) solver.solve(s, next_states);
    if (next_states.empty()) {
      res.linearizable = false;
      return res;
    }
    states = std::move(next_states);
  }
  return res;
}

}  // namespace lf::chk
