// Linearizability checking for concurrent set histories.
//
// The paper proves its implementations linearizable [6]; the tests verify
// it empirically: worker threads record timestamped invoke/response events
// for insert/erase/contains, and this checker decides (Wing & Gong style
// exhaustive search, with state memoization and quiescent-cut chunking)
// whether some legal sequential ordering of the operations — each placed
// between its invocation and response — explains every observed result.
//
// Scope: set semantics over a small integer key space (< 64 keys, so a
// state is one 64-bit mask) and histories whose concurrent windows are
// modest — exactly what the randomized linearizability tests generate.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace lf::chk {

enum class OpKind : unsigned char { kInsert, kErase, kContains };

struct Event {
  OpKind kind;
  std::uint32_t key;
  bool result;
  std::uint64_t invoke;
  std::uint64_t response;
};

// Thread-safe event recorder: a global logical clock ticks at every invoke
// and response, so recorded timestamps embed the real-time order.
class HistoryRecorder {
 public:
  explicit HistoryRecorder(int threads) : per_thread_(threads) {}

  std::uint64_t begin() { return clock_.fetch_add(1); }

  void end(int thread, OpKind kind, std::uint32_t key, bool result,
           std::uint64_t invoke_ts) {
    const std::uint64_t response = clock_.fetch_add(1);
    per_thread_[static_cast<std::size_t>(thread)].push_back(
        Event{kind, key, result, invoke_ts, response});
  }

  // Merge per-thread logs (call after joining workers).
  std::vector<Event> finish() const;

 private:
  std::atomic<std::uint64_t> clock_{0};
  std::vector<std::vector<Event>> per_thread_;
};

struct CheckResult {
  bool linearizable = true;
  std::size_t events = 0;
  std::size_t chunks = 0;         // quiescent segments analyzed
  std::size_t largest_chunk = 0;  // ops in the widest concurrent window
  std::size_t skipped_chunks = 0;  // windows wider than the 64-op solver cap
};

// Decide linearizability of `history` over keys [0, key_space).
// Requirements: key_space <= 64 (states are one 64-bit mask) and the
// structure must have started empty. A concurrent window wider than 64 ops
// exceeds the solver's bitmask: checking stops there and the result covers
// only the prefix (reported via skipped_chunks > 0; tests assert it is 0).
CheckResult check_linearizable(std::vector<Event> history,
                               std::uint32_t key_space);

}  // namespace lf::chk
