// Streaming histogram for integer samples (chain lengths, step counts,
// tower heights, latencies-in-steps).
//
// Buckets are exact up to kExactLimit and power-of-two beyond, so the
// memory footprint is fixed while small values (the common case for
// backlink-chain lengths) stay exact. Single-writer; merge across threads
// after the measured region.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>

namespace lf {

class Histogram {
 public:
  static constexpr std::uint64_t kExactLimit = 64;
  // 64 exact buckets + one per power of two from 2^6 up to 2^63.
  static constexpr int kBuckets = kExactLimit + 58;

  void record(std::uint64_t v) noexcept {
    ++counts_[bucket_of(v)];
    ++n_;
    sum_ += v;
    max_ = std::max(max_, v);
  }

  void merge(const Histogram& other) noexcept {
    for (int i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
    n_ += other.n_;
    sum_ += other.sum_;
    max_ = std::max(max_, other.max_);
  }

  std::uint64_t count() const noexcept { return n_; }
  std::uint64_t max() const noexcept { return max_; }
  double mean() const noexcept {
    return n_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(n_);
  }

  // Value at quantile q in [0,1]: upper bound of the bucket holding the
  // q-th sample (exact for values < kExactLimit).
  std::uint64_t quantile(double q) const noexcept {
    if (n_ == 0) return 0;
    const auto target =
        static_cast<std::uint64_t>(q * static_cast<double>(n_ - 1));
    std::uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
      seen += counts_[i];
      if (seen > target) return bucket_upper(i);
    }
    return max_;
  }

  std::uint64_t count_at_least(std::uint64_t v) const noexcept {
    std::uint64_t total = 0;
    for (int i = bucket_of(v); i < kBuckets; ++i) total += counts_[i];
    return total;
  }

  std::uint64_t bucket_count(int i) const noexcept { return counts_[i]; }

  static int bucket_of(std::uint64_t v) noexcept {
    if (v < kExactLimit) return static_cast<int>(v);
    // 64-bit values >= 64 have bit_width in [7, 64]; map to buckets 64..121.
    const int width = 64 - __builtin_clzll(v);
    return static_cast<int>(kExactLimit) + width - 7;
  }

  static std::uint64_t bucket_upper(int i) noexcept {
    if (i < static_cast<int>(kExactLimit)) return static_cast<std::uint64_t>(i);
    return (1ULL << (i - kExactLimit + 7)) - 1;
  }

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t n_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace lf
