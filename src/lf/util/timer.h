// Wall-clock stopwatch used by the benchmark harness.
#pragma once

#include <chrono>
#include <cstdint>

namespace lf {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  std::uint64_t elapsed_nanos() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace lf
