// Small fast PRNGs for workload generation.
//
// Benchmarks must not let RNG cost or RNG synchronization pollute the
// measurement, so we use xoshiro256** (public-domain algorithm by Blackman &
// Vigna): ~1ns per draw, 2^256-1 period, passes BigCrush. Each worker thread
// owns an independent, distinctly-seeded instance.
//
// Also provides the geometric level generator used by skip lists and a
// Zipfian generator (Gray et al., SIGMOD'94 rejection-free method) for
// skewed-key workloads.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace lf {

// SplitMix64: used only to expand a single seed word into PRNG state.
// (Vigna's recommended seeding procedure for the xoshiro family.)
inline std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256** generator. Not thread-safe by design: one instance per thread.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x2545f4914f6cdd1dULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). Lemire's multiply-shift reduction; the
  // modulo bias is at most 2^-64 * bound, negligible for workload generation.
  std::uint64_t below(std::uint64_t bound) noexcept {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(operator()()) * bound) >> 64);
  }

  // Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  // Flips fair coins and returns the number of consecutive heads plus one,
  // capped at `max_height`: the geometric(1/2) tower-height distribution the
  // paper's skip list uses ("the height of each tower is chosen randomly by
  // coin flips", Section 4).
  int tower_height(int max_height) noexcept {
    // Count trailing ones of a single draw: P(h >= k+1) = 2^-k, exactly the
    // repeated-coin-flip process, in one RNG call.
    const std::uint64_t bits = operator()();
    int h = 1;
    while (h < max_height && (bits >> (h - 1) & 1ULL) != 0) ++h;
    return h;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

// Zipfian key distribution over [0, n). theta in (0,1); theta ~0.99 is the
// YCSB default for a heavily skewed workload. Uses the classic analytic
// approximation (Gray et al.) so each draw is O(1).
class ZipfGenerator {
 public:
  ZipfGenerator(std::uint64_t n, double theta, std::uint64_t seed = 1)
      : n_(n), theta_(theta), rng_(seed) {
    zetan_ = zeta(n);
    const double zeta2 = zeta(2);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2 / zetan_);
  }

  std::uint64_t operator()() noexcept {
    const double u = rng_.uniform();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    return static_cast<std::uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  }

 private:
  double zeta(std::uint64_t n) const {
    double sum = 0;
    for (std::uint64_t i = 1; i <= n; ++i)
      sum += 1.0 / std::pow(static_cast<double>(i), theta_);
    return sum;
  }

  std::uint64_t n_;
  double theta_;
  double zetan_, alpha_, eta_;
  Xoshiro256 rng_;
};

}  // namespace lf
