// Software prefetch hint for pointer-chasing search loops.
//
// A list/skip-list search is a dependent-load chain: the next node's
// address is known one comparison before its cache line is needed. Issuing
// a prefetch the moment the pointer is loaded overlaps the line fill with
// the remaining work on the current node (key compare, mark/flag checks,
// step-counter updates) — the "foresight" trick of cache-conscious skip
// lists. Read-only (rw=0), high temporal locality (locality=3); a null or
// tail pointer is fine, prefetch never faults.
#pragma once

#if defined(__GNUC__) || defined(__clang__)
#define LF_PREFETCH(addr) __builtin_prefetch((addr), 0, 3)
#else
#define LF_PREFETCH(addr) ((void)0)
#endif
