// Cache-line alignment utilities.
//
// Shared counters and per-thread slots that sit on the same cache line
// serialize on the coherence protocol ("false sharing"); every mutable
// shared word in this library is padded to its own line.
#pragma once

#include <cstddef>
#include <new>

namespace lf {

// Pinned to 64 bytes rather than std::hardware_destructive_interference_size:
// the standard constant varies with compiler version and -mtune (GCC warns
// when it leaks into ABIs for exactly that reason), while 64 is correct for
// all mainstream x86-64 and AArch64 parts.
inline constexpr std::size_t kCacheLineSize = 64;

// A value padded out to occupy (at least) one full cache line.
//
// Usage:
//   lf::CacheAligned<std::atomic<uint64_t>> counters_[kMaxThreads];
template <typename T>
struct alignas(kCacheLineSize) CacheAligned {
  T value{};

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
};

}  // namespace lf
