#include "lf/reclaim/hazard.h"

#include <algorithm>
#include <unordered_map>

#include "lf/chaos/chaos.h"

namespace lf::reclaim {
namespace {

struct HPDomainIdMap {
  std::mutex mu;
  std::unordered_map<std::uint64_t, HazardDomain*> map;
  std::atomic<std::uint64_t> next_id{1};
};

HPDomainIdMap& hp_id_map() {
  static HPDomainIdMap* m = new HPDomainIdMap;  // immortal, see epoch.cpp
  return *m;
}

}  // namespace

HazardDomain::HazardDomain()
    : domain_id_(hp_id_map().next_id.fetch_add(1)) {
  retired_live_->store(0, std::memory_order_relaxed);
  std::lock_guard lock(hp_id_map().mu);
  hp_id_map().map.emplace(domain_id_, this);
}

HazardDomain::~HazardDomain() {
  {
    std::lock_guard lock(hp_id_map().mu);
    hp_id_map().map.erase(domain_id_);
  }
  // Precondition: no thread still operates on structures using this domain,
  // so nothing is protected and everything retired can be freed.
  std::lock_guard lock(registry_mu_);
  std::uint64_t freed = 0;
  auto free_chain = [&](RetiredNode* head) {
    while (head != nullptr) {
      RetiredNode* next = head->next;
      head->deleter(head->object);
      delete head;
      head = next;
      ++freed;
    }
  };
  for (ThreadSlots* rec : records_) {
    free_chain(rec->retired_);
    rec->retired_ = nullptr;
    delete rec;
  }
  records_.clear();
  free_chain(orphans_);
  orphans_ = nullptr;
  if (freed > 0) stats::tls().node_freed.inc(freed);
}

HazardDomain& HazardDomain::global() {
  static HazardDomain* d = new HazardDomain;
  return *d;
}

HazardDomain::ThreadSlots& HazardDomain::slots() {
  struct Entry {
    std::uint64_t domain_id;
    ThreadSlots* rec;
  };
  struct Cache {
    std::vector<Entry> entries;
    ~Cache() {
      for (const Entry& e : entries) {
        HazardDomain* domain = nullptr;
        {
          std::lock_guard lock(hp_id_map().mu);
          auto it = hp_id_map().map.find(e.domain_id);
          if (it != hp_id_map().map.end()) domain = it->second;
        }
        if (domain != nullptr) domain->release_record(e.rec);
      }
    }
  };
  thread_local Cache cache;

  for (const Entry& e : cache.entries)
    if (e.domain_id == domain_id_) return *e.rec;
  ThreadSlots* rec = acquire_record();
  cache.entries.push_back(Entry{domain_id_, rec});
  return *rec;
}

HazardDomain::ThreadSlots* HazardDomain::acquire_record() {
  std::lock_guard lock(registry_mu_);
  for (ThreadSlots* rec : records_) {
    if (!rec->in_use_) {
      rec->in_use_ = true;
      return rec;
    }
  }
  auto* rec = new ThreadSlots;
  rec->in_use_ = true;
  records_.push_back(rec);
  return rec;
}

void HazardDomain::release_record(ThreadSlots* rec) {
  rec->clear_all();
  std::lock_guard lock(registry_mu_);
  if (rec->retired_ != nullptr) {
    RetiredNode* tail = rec->retired_;
    while (tail->next != nullptr) tail = tail->next;
    tail->next = orphans_;
    orphans_ = rec->retired_;
    orphan_count_ += rec->retired_count_;
    rec->retired_ = nullptr;
    rec->retired_count_ = 0;
  }
  rec->in_use_ = false;
}

std::uint64_t HazardDomain::scan_threshold() const noexcept {
  // Michael's recommendation: scan when the retire list exceeds ~2x the
  // total number of hazard slots, giving amortized O(1) scans with bounded
  // unreclaimed garbage.
  return 2 * kSlotsPerThread *
             std::max<std::uint64_t>(records_.size(), 1) +
         16;
}

void HazardDomain::retire_erased(void* object, void (*deleter)(void*)) {
  LF_CHAOS_POINT(kHazardRetire);
  ThreadSlots& rec = slots();
  rec.retired_ = new RetiredNode{object, deleter, rec.retired_};
  ++rec.retired_count_;
  retired_live_->fetch_add(1, std::memory_order_relaxed);
  stats::tls().node_retired.inc();
  bool should_scan;
  {
    std::lock_guard lock(registry_mu_);
    should_scan = rec.retired_count_ + orphan_count_ >= scan_threshold();
  }
  if (should_scan) scan_record(rec);
}

void HazardDomain::scan() { scan_record(slots()); }

void HazardDomain::scan_record(ThreadSlots& rec) {
  LF_CHAOS_POINT(kHazardScan);  // entry, before any registry lock
  // Stage 1: adopt orphaned retire lists so garbage from exited threads is
  // not stranded.
  {
    std::lock_guard lock(registry_mu_);
    if (orphans_ != nullptr) {
      RetiredNode* tail = orphans_;
      while (tail->next != nullptr) tail = tail->next;
      tail->next = rec.retired_;
      rec.retired_ = orphans_;
      rec.retired_count_ += orphan_count_;
      orphans_ = nullptr;
      orphan_count_ = 0;
    }
  }

  // Stage 2: snapshot every published hazard pointer.
  std::vector<void*> protected_ptrs;
  {
    std::lock_guard lock(registry_mu_);
    protected_ptrs.reserve(records_.size() * kSlotsPerThread);
    for (ThreadSlots* r : records_) {
      for (const auto& slot : r->hp_) {
        void* p = slot.value.load(std::memory_order_seq_cst);
        if (p != nullptr) protected_ptrs.push_back(p);
      }
    }
  }
  std::sort(protected_ptrs.begin(), protected_ptrs.end());

  // Stage 3: free every retired node that is not protected.
  RetiredNode* keep = nullptr;
  std::uint64_t kept = 0, freed = 0;
  RetiredNode* cur = rec.retired_;
  while (cur != nullptr) {
    RetiredNode* next = cur->next;
    const bool is_protected = std::binary_search(
        protected_ptrs.begin(), protected_ptrs.end(), cur->object);
    if (is_protected) {
      cur->next = keep;
      keep = cur;
      ++kept;
    } else {
      cur->deleter(cur->object);
      delete cur;
      ++freed;
    }
    cur = next;
  }
  rec.retired_ = keep;
  rec.retired_count_ = kept;
  if (freed > 0) {
    retired_live_->fetch_sub(freed, std::memory_order_relaxed);
    stats::tls().node_freed.inc(freed);
  }
}

}  // namespace lf::reclaim
