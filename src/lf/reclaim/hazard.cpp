#include "lf/reclaim/hazard.h"

#include <algorithm>
#include <unordered_map>

#include "lf/chaos/chaos.h"

namespace lf::reclaim {
namespace {

struct HPDomainIdMap {
  std::mutex mu;
  std::unordered_map<std::uint64_t, HazardDomain*> map;
  std::atomic<std::uint64_t> next_id{1};
};

HPDomainIdMap& hp_id_map() {
  static HPDomainIdMap* m = new HPDomainIdMap;  // immortal, see epoch.cpp
  return *m;
}

}  // namespace

HazardDomain::HazardDomain()
    : domain_id_(hp_id_map().next_id.fetch_add(1)) {
  retired_live_->store(0, std::memory_order_relaxed);
  std::lock_guard lock(hp_id_map().mu);
  hp_id_map().map.emplace(domain_id_, this);
}

HazardDomain::~HazardDomain() {
  {
    std::lock_guard lock(hp_id_map().mu);
    hp_id_map().map.erase(domain_id_);
  }
  // Precondition: no thread still operates on structures using this domain,
  // so nothing is protected and everything retired can be freed.
  std::lock_guard lock(registry_mu_);
  std::uint64_t freed = 0;
  auto free_chain = [&](RetiredNode* head) {
    while (head != nullptr) {
      RetiredNode* next = head->next;
      head->deleter(head->object);
      delete head;
      head = next;
      ++freed;
    }
  };
  for (ThreadSlots* rec : records_) {
    free_chain(rec->retired_);
    rec->retired_ = nullptr;
    delete rec;
  }
  records_.clear();
  free_chain(orphans_);
  orphans_ = nullptr;
  if (freed > 0) stats::tls().node_freed.inc(freed);
}

HazardDomain& HazardDomain::global() {
  static HazardDomain* d = new HazardDomain;
  return *d;
}

HazardDomain::ThreadSlots& HazardDomain::slots() {
  struct Entry {
    std::uint64_t domain_id;
    ThreadSlots* rec;
  };
  struct Cache {
    std::vector<Entry> entries;
    ~Cache() {
      for (const Entry& e : entries) {
        HazardDomain* domain = nullptr;
        {
          std::lock_guard lock(hp_id_map().mu);
          auto it = hp_id_map().map.find(e.domain_id);
          if (it != hp_id_map().map.end()) domain = it->second;
        }
        if (domain != nullptr) domain->release_record(e.rec);
      }
    }
  };
  thread_local Cache cache;

  for (const Entry& e : cache.entries)
    if (e.domain_id == domain_id_) return *e.rec;
  ThreadSlots* rec = acquire_record();
  cache.entries.push_back(Entry{domain_id_, rec});
  return *rec;
}

HazardDomain::ThreadSlots* HazardDomain::acquire_record() {
  std::lock_guard lock(registry_mu_);
  for (ThreadSlots* rec : records_) {
    if (!rec->in_use_) {
      rec->in_use_ = true;
      rec->owner_id_ = std::this_thread::get_id();
      return rec;
    }
  }
  auto* rec = new ThreadSlots;
  rec->in_use_ = true;
  rec->owner_id_ = std::this_thread::get_id();
  records_.push_back(rec);
  return rec;
}

void HazardDomain::release_record(ThreadSlots* rec) {
  rec->clear_all();
  // Stale finger metadata must not outlive the slots: a later adopter of
  // this record republishes before any scan could walk from it (the slot
  // itself is already null, which is what scanners gate on).
  rec->finger_walker_.store(nullptr, std::memory_order_release);
  rec->finger_tag_.store(0, std::memory_order_release);
  rec->finger_walk_n_.store(0, std::memory_order_release);
  std::lock_guard lock(registry_mu_);
  if (rec->retired_ != nullptr) {
    RetiredNode* tail = rec->retired_;
    while (tail->next != nullptr) tail = tail->next;
    tail->next = orphans_;
    orphans_ = rec->retired_;
    orphan_count_ += rec->retired_count_;
    rec->retired_ = nullptr;
    rec->retired_count_ = 0;
  }
  rec->owner_id_ = std::thread::id{};
  rec->in_use_ = false;
}

bool HazardDomain::adopt_stalled(std::thread::id tid) {
  // Entirely under the registry lock: mutually exclusive with scan stage 2
  // and invalidate_fingers, so no scanner can be mid-walk from the fingers
  // we null. The caller's park/death contract (see hazard.h) excludes the
  // owner itself.
  std::lock_guard lock(registry_mu_);
  for (ThreadSlots* rec : records_) {
    if (!rec->in_use_ || rec->owner_id_ != tid) continue;
    // Seqlock write side, as in publish_finger: a torn observation makes a
    // scanner skip this record's chain walk, which is exactly right while
    // its fingers are being retired.
    rec->finger_seq_.fetch_add(1, std::memory_order_relaxed);
    for (int i = 0; i < kFingerEntries; ++i)
      rec->hp_[kFingerSlot + i].value.store(nullptr,
                                            std::memory_order_seq_cst);
    rec->hp_[kFingerHopSlot].value.store(nullptr, std::memory_order_seq_cst);
    rec->finger_walker_.store(nullptr, std::memory_order_release);
    rec->finger_tag_.store(0, std::memory_order_release);
    rec->finger_walk_n_.store(0, std::memory_order_release);
    rec->finger_seq_.fetch_add(1, std::memory_order_release);
    // The Michael-list slots [0, kMichaelListSlots) stay published: a
    // resumable victim may still dereference them (bounded retention).
    if (rec->retired_ != nullptr) {
      RetiredNode* tail = rec->retired_;
      while (tail->next != nullptr) tail = tail->next;
      tail->next = orphans_;
      orphans_ = rec->retired_;
      orphan_count_ += rec->retired_count_;
      stats::tls().orphan_adopt.inc(rec->retired_count_);
      rec->retired_ = nullptr;
      rec->retired_count_ = 0;
    }
    return true;
  }
  return false;
}

// ---- Retained-finger slot protocol ----------------------------------------

void HazardDomain::publish_finger(void* const* nodes, int n,
                                  ChainWalker walker, std::uint64_t tag,
                                  int walk_n) {
  ThreadSlots& rec = slots();
  // Seqlock write side: odd seq marks the (slots, walker, tag, walk count)
  // tuple as mid-rewrite so a concurrent scanner never pairs a pointer from
  // one publish with the walker (or walk count) of another (type confusion
  // on the walk).
  rec.finger_seq_.fetch_add(1, std::memory_order_relaxed);
  for (int i = 0; i < kFingerEntries; ++i)
    rec.hp_[kFingerSlot + i].value.store(i < n ? nodes[i] : nullptr,
                                         std::memory_order_seq_cst);
  rec.finger_walker_.store(walker, std::memory_order_release);
  rec.finger_tag_.store(tag, std::memory_order_release);
  rec.finger_walk_n_.store(std::min(walk_n, kFingerEntries),
                           std::memory_order_release);
  // A finished recovery walk's hop publication is dead once the new fingers
  // are in place; dropping it here keeps the hop slot's lifetime one
  // operation, so structure destructors only need to invalidate the finger
  // entries.
  rec.hp_[kFingerHopSlot].value.store(nullptr, std::memory_order_release);
  rec.finger_seq_.fetch_add(1, std::memory_order_release);
}

bool HazardDomain::reacquire_finger(const void* node, std::uint64_t tag,
                                    int idx) {
  LF_CHAOS_POINT(kHazardFingerReacquire);
  ThreadSlots& rec = slots();
  // Owner-only fields: both reads are of this thread's own last publish.
  // The only concurrent writer is invalidate_fingers, which can only null
  // the slot for OUR tag from OUR structure's destructor — excluded while
  // an operation is in flight (destruction requires quiescence) — or fail
  // its C&S for any other tag. Slot still == node under our tag means the
  // publication was never evicted: continuous protection since a moment the
  // node was provably alive, hence it is still dereferenceable. No branch
  // of this check dereferences `node`.
  return rec.hp_[kFingerSlot + idx].value.load(std::memory_order_seq_cst) ==
             node &&
         rec.finger_tag_.load(std::memory_order_relaxed) == tag;
}

void HazardDomain::invalidate_fingers(std::uint64_t tag) {
  // Under the registry lock, so it cannot interleave with a scan's chain
  // walk: once this returns, no scanner holds (or can re-read) a finger
  // into the dying structure, and the caller may free nodes directly.
  std::lock_guard lock(registry_mu_);
  for (ThreadSlots* rec : records_) {
    if (rec->finger_tag_.load(std::memory_order_acquire) != tag) continue;
    for (int i = 0; i < kFingerEntries; ++i) {
      void* p = rec->hp_[kFingerSlot + i].value.load(std::memory_order_seq_cst);
      if (p == nullptr) continue;
      // C&S, not a blind store: the owning thread may concurrently
      // republish the slot for a DIFFERENT (live) structure; losing that
      // race must not clobber the fresh publication. (If an
      // address-recycled node makes the C&S succeed against a fresh
      // publish, the victim thread's next reuse simply misses —
      // reacquire_finger fails closed.)
      rec->hp_[kFingerSlot + i].value.compare_exchange_strong(
          p, nullptr, std::memory_order_seq_cst);
    }
  }
}

std::uint64_t HazardDomain::scan_threshold() const noexcept {
  // Michael's recommendation: scan when the retire list exceeds ~2x the
  // total number of hazard slots, giving amortized O(1) scans with bounded
  // unreclaimed garbage.
  return 2 * kSlotsPerThread *
             std::max<std::uint64_t>(records_.size(), 1) +
         16;
}

void HazardDomain::retire_erased(void* object, void (*deleter)(void*)) {
  LF_CHAOS_POINT(kHazardRetire);
  ThreadSlots& rec = slots();
  rec.retired_ = new RetiredNode{object, deleter, rec.retired_};
  ++rec.retired_count_;
  retired_live_->fetch_add(1, std::memory_order_relaxed);
  stats::tls().node_retired.inc();
  bool should_scan;
  {
    std::lock_guard lock(registry_mu_);
    should_scan = rec.retired_count_ + orphan_count_ >= scan_threshold();
  }
  if (should_scan) scan_record(rec);
}

void HazardDomain::scan() { scan_record(slots()); }

void HazardDomain::scan_record(ThreadSlots& rec) {
  LF_CHAOS_POINT(kHazardScan);  // entry, before any registry lock
  // Stage 1: adopt orphaned retire lists so garbage from exited threads is
  // not stranded.
  {
    std::lock_guard lock(registry_mu_);
    if (orphans_ != nullptr) {
      RetiredNode* tail = orphans_;
      while (tail->next != nullptr) tail = tail->next;
      tail->next = rec.retired_;
      rec.retired_ = orphans_;
      rec.retired_count_ += orphan_count_;
      orphans_ = nullptr;
      orphan_count_ = 0;
    }
  }

  // Stage 2: snapshot every published hazard pointer, and for each record
  // with a published retained finger, walk the backlink chain of every
  // LEVEL-1 finger entry — entries [0, walk count) as declared by the
  // publish, the owner's level-1 cache ways — and protect every node on
  // them; upper finger entries never recover through backlinks (their
  // owners fall through to another level on a marked pred —
  // core/fr_skiplist.h), so the plain snapshot alone protects them. The
  // chain walks cover exactly the nodes
  // the owning thread's next finger_start may dereference during a
  // recovery walk. The walk
  // dereferences retired-but-unfreed nodes, which is safe here because
  // (a) stage 2 runs under the registry lock, so chain walks are mutually
  // exclusive with each other and with invalidate_fingers, and (b) any node
  // on a published finger's chain was spared by every earlier scan's stage
  // 2 (it was on the chain then too — backlinks are write-once and the
  // chain is fully formed before its leftmost node reaches this domain's
  // retired lists) or had not yet left the epoch stage (the epoch bridge:
  // a finger published under a pin only sees chain nodes handed to this
  // domain after that pin ended). Full argument: DESIGN.md §10.
  std::vector<void*> protected_ptrs;
  {
    std::lock_guard lock(registry_mu_);
    protected_ptrs.reserve(records_.size() * kSlotsPerThread);
    for (ThreadSlots* r : records_) {
      for (const auto& slot : r->hp_) {
        void* p = slot.value.load(std::memory_order_seq_cst);
        if (p != nullptr) protected_ptrs.push_back(p);
      }
      // Seqlock read side (write side: publish_finger). On any sign of a
      // concurrent republish, skip the walk: the old chain is abandoned
      // (the owner only walks from its CURRENT finger) and the new
      // finger's chain cannot hold anything in a retired list yet.
      const std::uint64_t seq =
          r->finger_seq_.load(std::memory_order_acquire);
      if ((seq & 1) != 0) continue;
      void* fingers[kFingerEntries];
      for (int i = 0; i < kFingerEntries; ++i)
        fingers[i] =
            r->hp_[kFingerSlot + i].value.load(std::memory_order_seq_cst);
      ChainWalker walker = r->finger_walker_.load(std::memory_order_acquire);
      const int walk_n = r->finger_walk_n_.load(std::memory_order_acquire);
      if (r->finger_seq_.load(std::memory_order_acquire) != seq) continue;
      if (walker == nullptr) continue;
      // The fingers themselves are already in the snapshot; protect the
      // rest of each level-1 way's backlink chain (walker returns null at
      // the first unmarked node, and backlink chains are acyclic —
      // strictly leftward).
      for (int i = 0; i < walk_n; ++i) {
        if (fingers[i] == nullptr) continue;
        for (void* p = walker(fingers[i]); p != nullptr; p = walker(p))
          protected_ptrs.push_back(p);
      }
    }
  }
  std::sort(protected_ptrs.begin(), protected_ptrs.end());

  // Stage 3: free every retired node that is not protected.
  RetiredNode* keep = nullptr;
  std::uint64_t kept = 0, freed = 0;
  RetiredNode* cur = rec.retired_;
  while (cur != nullptr) {
    RetiredNode* next = cur->next;
    const bool is_protected = std::binary_search(
        protected_ptrs.begin(), protected_ptrs.end(), cur->object);
    if (is_protected) {
      cur->next = keep;
      keep = cur;
      ++kept;
    } else {
      cur->deleter(cur->object);
      delete cur;
      ++freed;
    }
    cur = next;
  }
  rec.retired_ = keep;
  rec.retired_count_ = kept;
  if (freed > 0) {
    retired_live_->fetch_sub(freed, std::memory_order_relaxed);
    stats::tls().node_freed.inc(freed);
  }
}

}  // namespace lf::reclaim
