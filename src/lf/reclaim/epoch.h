// Epoch-based reclamation (EBR), after Fraser's thesis (the paper's
// reference [2]) — the default memory manager for every lock-free structure
// in this repository.
//
// Scheme: a global epoch counter advances when every thread currently inside
// a critical region ("pinned") has observed the current epoch. A node
// retired in epoch r becomes unreachable-by-new-operations at retire time,
// so once the global epoch reaches r+2 no pinned operation can still hold a
// reference and the node may be freed.
//
// Why this is safe for THIS paper's structures even though physically
// deleted nodes remain reachable through backlink chains: to follow a
// backlink into a physically deleted node X, an operation must hold some
// node Y whose backlink targets X, and it must have found Y while Y was
// still in the list — which happens-before Y's physical deletion, which
// happens-before X's (a flagged node cannot be marked until its successor's
// deletion completes, so deletions of adjacent nodes complete right-to-left),
// which happens-before X's retirement. Hence any operation that can ever
// reach X was pinned before X was retired, and the 2-epoch grace period
// covers it.
//
// Concurrency notes:
//   * pin() publishes (epoch, active) in a single word with a verify loop,
//     so the epoch a thread advertises is never stale relative to the global
//     it verified — the standard correctness requirement for 3-bucket EBR.
//   * retire() is wait-free (thread-local list append); amortized
//     reclamation work happens inside try_advance(), triggered every
//     kAdvanceEvery retirements.
//   * Threads may come and go: a thread's limbo lists are orphaned to the
//     domain on thread exit and adopted by a later advancer.
//
// Stalled-thread resilience (DESIGN.md §11): plain EBR is only as live as
// its slowest reader — a thread parked or killed while pinned stalls the
// epoch forever and retire backlogs grow without bound. When armed via
// set_resilience(), the advancer runs a stalled-pin detector: a slot whose
// state word AND per-slot heartbeat stay frozen across `blame_threshold`
// consecutive failed advances is NEUTRALIZED (its word is CAS'd to an
// *ejected* state that no longer blocks the epoch). Ejection alone would be
// unsound — the parked reader may resume and keep dereferencing — so while
// any ejection is outstanding every list that becomes freeable diverts into
// a domain QUARANTINE whose deleters do not run. Only when every ejected
// reader has acknowledged (its outermost unpin, or its next pin's publish
// loop, or adopt_stalled() on a thread vouched dead) does the quarantine
// drain. The epoch makes progress and the backlog is bounded by the churn
// during the stall, at the cost of deferring — never skipping — the frees.
//
// A domain must outlive every thread that ever pinned it; the process-wide
// default domain (EpochDomain::global()) trivially satisfies this. Tests
// that create their own domains join their threads first and unpin the main
// thread's cached slot via the registry's id indirection. If a domain is
// nevertheless destroyed while a thread is still pinned (a parked victim),
// the destructor diagnoses the contract violation and abandons the slot to
// an immortal registry instead of handing the victim a dangling pointer —
// see abandoned_slots().
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "lf/instrument/counters.h"
#include "lf/util/align.h"

namespace lf::reclaim {

class EpochDomain {
  struct ThreadState;  // per-thread slot; defined in epoch.cpp

 public:
  EpochDomain();
  ~EpochDomain();
  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;

  // The process-wide domain used by EpochReclaimer by default.
  static EpochDomain& global();

  // RAII pin token. Operations must hold one while dereferencing any node
  // pointer obtained from a shared location. Re-entrant pinning is supported
  // (inner guards are no-ops), which helping routines rely on.
  class Guard {
   public:
    explicit Guard(EpochDomain& domain);
    ~Guard();
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    friend class EpochDomain;  // retire_erased files under the pinned epoch
    EpochDomain& domain_;
    ThreadState* ts_;
    bool outermost_;
  };

  Guard guard() { return Guard(*this); }

  // Hand over an unlinked node; it is deleted (via `delete`) after the grace
  // period. Must be called at most once per node, under a guard or not.
  template <typename Node>
  void retire(Node* node) {
    retire_erased(node, [](void* p) { delete static_cast<Node*>(p); });
  }

  // Deleter-based retirement: `deleter(object)` runs after the grace
  // period. This is the hook pooled/flat-tower layouts use to return
  // blocks to their freelist only once no pinned reader can still hold a
  // pointer into them (mem/tower.h) — the epoch-integrated recycle path.
  // It is also how the two-stage epoch→hazard handoff (hazard.h Handoff)
  // composes with the quarantine: a quarantined record keeps its deleter,
  // so draining it still runs Handoff::pass and the hazard scan's final
  // protection check before anything is freed.
  void retire_with(void* object, void (*deleter)(void*)) {
    retire_erased(object, deleter);
  }

  // Drives epochs forward and frees everything whose grace period elapsed.
  // Only fully drains when no thread is pinned. Intended for tests,
  // structure destructors and benchmark teardown.
  void drain();

  // Diagnostics.
  std::uint64_t epoch() const noexcept {
    return global_epoch_->load(std::memory_order_acquire);
  }

  // The epoch the CALLING thread currently advertises. Only meaningful
  // while the thread holds a Guard (asserted). This is the value the
  // finger layer (sync/finger.h) uses as its validity token: while a
  // thread stays pinned advertising epoch e, the global epoch cannot pass
  // e + 1, so nothing retired at epoch >= e (i.e. anything the thread
  // reached under a pin that advertised e) can be freed. Two pins that
  // advertise the SAME epoch therefore cover the same set of nodes.
  std::uint64_t pinned_epoch();
  std::uint64_t retired_count() const noexcept {
    return retired_live_->load(std::memory_order_relaxed);
  }

  // ---- Stalled-thread resilience (DESIGN.md §11) ------------------------

  struct ResilienceOptions {
    // Arm the stalled-pin detector. Off by default: the hot paths then
    // behave exactly as plain EBR (unpin stays a single store).
    bool neutralize = false;
    // Failed advances blamed on one frozen slot before it is ejected. The
    // advancer runs every kAdvanceEvery retirements, so the grace bound for
    // neutralization is ~(blame_threshold + 1) * kAdvanceEvery retirements
    // of survivor churn after the victim stalls.
    std::uint32_t blame_threshold = 16;
    // Documented soft bound on quarantine_depth(): exceeded depth is still
    // correct (nothing is freed early), but stall reports flag it. The
    // quarantine only grows while an ejection is outstanding, so its depth
    // is bounded by survivor churn during the stall window.
    std::uint64_t quarantine_soft_cap = 1u << 16;
  };

  // Install resilience options. Arming is sticky: once a domain has been
  // armed, outermost unpins use a CAS (they must not erase a concurrent
  // ejection) even if neutralize is later set false.
  void set_resilience(const ResilienceOptions& opts);

  // Adopt every resource of a thread that the CALLER VOUCHES can no longer
  // run concurrently with this call (parked with a happens-before edge —
  // e.g. chaos::wait_parked() — or verifiably dead): its limbo lists move
  // to the domain orphans (grace period still respected), its slot stops
  // blocking the epoch, and an outstanding ejection of it is settled.
  // If the thread may later resume, it must be parked OUTSIDE any guarded
  // region (its pin-depth and slot registration are left untouched so a
  // resumed thread unwinds normally). Returns true if the thread owned a
  // slot here.
  bool adopt_stalled(std::thread::id tid);

  // Watchdog remediation hook: run the advancer often enough for the blame
  // detector to eject a stalled pin, then try to drain the quarantine.
  // Returns true if the epoch moved or quarantined/orphaned memory was
  // freed. Safe to call from a monitor thread (allocates no slot).
  bool remediate_now();

  // Human-readable per-slot stall dump: active/ejected bits, pinned epoch,
  // heartbeat, plus the domain gauges. For watchdog escalation reports.
  std::string stall_report();

  // Gauges for reports and benches.
  std::uint64_t quarantine_depth() const noexcept {
    return quarantine_depth_.load(std::memory_order_relaxed);
  }
  std::uint64_t ejected_count() const noexcept {
    return ejected_count_.load(std::memory_order_relaxed);
  }

  // Process-wide count of slots abandoned by ~EpochDomain because their
  // owner thread was still pinned (see class comment). A nonzero value is
  // a diagnosed contract violation, kept non-fatal so sanitizer jobs can
  // exercise the teardown path.
  static std::uint64_t abandoned_slots() noexcept;

 private:
  friend class Guard;

  struct RetiredNode {
    void* object;
    void (*deleter)(void*);
    RetiredNode* next;
  };

  // One limbo list per epoch residue class.
  static constexpr int kBuckets = 3;
  // How many retirements between reclamation attempts.
  static constexpr std::uint64_t kAdvanceEvery = 64;

  // Slot word layout: (epoch << kEpochShift) | ejected | active.
  static constexpr std::uint64_t kActiveBit = 1;
  static constexpr std::uint64_t kEjectedBit = 2;
  static constexpr unsigned kEpochShift = 2;

  void retire_erased(void* object, void (*deleter)(void*));
  ThreadState& thread_state();
  ThreadState* acquire_slot();
  void release_slot(ThreadState* ts);  // thread exit: orphan limbo lists
  bool try_advance();
  void reclaim_bucket_locally(ThreadState& ts, std::uint64_t observed_epoch);
  static void free_list(RetiredNode* head, std::atomic<std::uint64_t>& live);

  // Free `head` now if no ejection is outstanding, else splice it into the
  // quarantine (no deleters run). `locked` = registry_mu_ already held.
  void dispose_list(RetiredNode* head, bool locked);
  // Detach the quarantine for freeing iff every ejection settled.
  RetiredNode* detach_quarantine_locked();
  void free_quarantine(RetiredNode* head);
  // Settle one outstanding ejection of `ts` (unpin ack or re-pin publish).
  void settle_ejection(ThreadState* ts, bool clear_state);
  // Blame detector; returns true when it ejected `ts`. Lock held.
  bool note_straggler_locked(ThreadState* ts, std::uint64_t word);

  CacheAligned<std::atomic<std::uint64_t>> global_epoch_;
  CacheAligned<std::atomic<std::uint64_t>> retired_live_;

  std::atomic<std::uint64_t> ejected_count_{0};    // unsettled ejections
  std::atomic<std::uint64_t> quarantine_depth_{0};

  std::mutex registry_mu_;
  std::vector<ThreadState*> slots_;          // all ever-created slots (owned)
  RetiredNode* orphans_[kBuckets] = {};      // limbo of exited threads
  std::uint64_t orphan_epochs_[kBuckets] = {};
  RetiredNode* quarantine_ = nullptr;        // deferred frees during ejection
  ResilienceOptions resilience_;             // guarded by registry_mu_
  bool armed_ = false;                       // sticky; guarded by registry_mu_
  // Blame detector state (guarded by registry_mu_): the advance-blocking
  // slot, its frozen word/heartbeat, and how many consecutive failed
  // advances it has been blamed for.
  ThreadState* blamed_slot_ = nullptr;
  std::uint64_t blamed_word_ = 0;
  std::uint64_t blamed_beat_ = 0;
  std::uint32_t blame_streak_ = 0;

  const std::uint64_t domain_id_;
};

// Policy adapter satisfying reclaimer_for<Node>, referencing a domain.
class EpochReclaimer {
 public:
  EpochReclaimer() : domain_(&EpochDomain::global()) {}
  explicit EpochReclaimer(EpochDomain& domain) : domain_(&domain) {}

  EpochDomain::Guard guard() { return domain_->guard(); }

  template <typename Node>
  void retire(Node* node) {
    domain_->retire(node);
  }

  void retire_with(void* object, void (*deleter)(void*)) {
    domain_->retire_with(object, deleter);
  }

  // Finger-layer hook (see EpochDomain::pinned_epoch).
  std::uint64_t pinned_epoch() { return domain_->pinned_epoch(); }

  EpochDomain& domain() noexcept { return *domain_; }

 private:
  EpochDomain* domain_;
};

}  // namespace lf::reclaim
