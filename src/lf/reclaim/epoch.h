// Epoch-based reclamation (EBR), after Fraser's thesis (the paper's
// reference [2]) — the default memory manager for every lock-free structure
// in this repository.
//
// Scheme: a global epoch counter advances when every thread currently inside
// a critical region ("pinned") has observed the current epoch. A node
// retired in epoch r becomes unreachable-by-new-operations at retire time,
// so once the global epoch reaches r+2 no pinned operation can still hold a
// reference and the node may be freed.
//
// Why this is safe for THIS paper's structures even though physically
// deleted nodes remain reachable through backlink chains: to follow a
// backlink into a physically deleted node X, an operation must hold some
// node Y whose backlink targets X, and it must have found Y while Y was
// still in the list — which happens-before Y's physical deletion, which
// happens-before X's (a flagged node cannot be marked until its successor's
// deletion completes, so deletions of adjacent nodes complete right-to-left),
// which happens-before X's retirement. Hence any operation that can ever
// reach X was pinned before X was retired, and the 2-epoch grace period
// covers it.
//
// Concurrency notes:
//   * pin() publishes (epoch, active) in a single word with a verify loop,
//     so the epoch a thread advertises is never stale relative to the global
//     it verified — the standard correctness requirement for 3-bucket EBR.
//   * retire() is wait-free (thread-local list append); amortized
//     reclamation work happens inside try_advance(), triggered every
//     kAdvanceEvery retirements.
//   * Threads may come and go: a thread's limbo lists are orphaned to the
//     domain on thread exit and adopted by a later advancer.
//
// A domain must outlive every thread that ever pinned it; the process-wide
// default domain (EpochDomain::global()) trivially satisfies this. Tests
// that create their own domains join their threads first and unpin the main
// thread's cached slot via the registry's id indirection.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "lf/instrument/counters.h"
#include "lf/util/align.h"

namespace lf::reclaim {

class EpochDomain {
  struct ThreadState;  // per-thread slot; defined in epoch.cpp

 public:
  EpochDomain();
  ~EpochDomain();
  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;

  // The process-wide domain used by EpochReclaimer by default.
  static EpochDomain& global();

  // RAII pin token. Operations must hold one while dereferencing any node
  // pointer obtained from a shared location. Re-entrant pinning is supported
  // (inner guards are no-ops), which helping routines rely on.
  class Guard {
   public:
    explicit Guard(EpochDomain& domain);
    ~Guard();
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    friend class EpochDomain;  // retire_erased files under the pinned epoch
    EpochDomain& domain_;
    ThreadState* ts_;
    bool outermost_;
  };

  Guard guard() { return Guard(*this); }

  // Hand over an unlinked node; it is deleted (via `delete`) after the grace
  // period. Must be called at most once per node, under a guard or not.
  template <typename Node>
  void retire(Node* node) {
    retire_erased(node, [](void* p) { delete static_cast<Node*>(p); });
  }

  // Deleter-based retirement: `deleter(object)` runs after the grace
  // period. This is the hook pooled/flat-tower layouts use to return
  // blocks to their freelist only once no pinned reader can still hold a
  // pointer into them (mem/tower.h) — the epoch-integrated recycle path.
  void retire_with(void* object, void (*deleter)(void*)) {
    retire_erased(object, deleter);
  }

  // Drives epochs forward and frees everything whose grace period elapsed.
  // Only fully drains when no thread is pinned. Intended for tests,
  // structure destructors and benchmark teardown.
  void drain();

  // Diagnostics.
  std::uint64_t epoch() const noexcept {
    return global_epoch_->load(std::memory_order_acquire);
  }

  // The epoch the CALLING thread currently advertises. Only meaningful
  // while the thread holds a Guard (asserted). This is the value the
  // finger layer (sync/finger.h) uses as its validity token: while a
  // thread stays pinned advertising epoch e, the global epoch cannot pass
  // e + 1, so nothing retired at epoch >= e (i.e. anything the thread
  // reached under a pin that advertised e) can be freed. Two pins that
  // advertise the SAME epoch therefore cover the same set of nodes.
  std::uint64_t pinned_epoch();
  std::uint64_t retired_count() const noexcept {
    return retired_live_->load(std::memory_order_relaxed);
  }

 private:
  friend class Guard;

  struct RetiredNode {
    void* object;
    void (*deleter)(void*);
    RetiredNode* next;
  };

  // One limbo list per epoch residue class.
  static constexpr int kBuckets = 3;
  // How many retirements between reclamation attempts.
  static constexpr std::uint64_t kAdvanceEvery = 64;

  void retire_erased(void* object, void (*deleter)(void*));
  ThreadState& thread_state();
  ThreadState* acquire_slot();
  void release_slot(ThreadState* ts);  // thread exit: orphan limbo lists
  bool try_advance();
  void reclaim_bucket_locally(ThreadState& ts, std::uint64_t observed_epoch);
  static void free_list(RetiredNode* head, std::atomic<std::uint64_t>& live);

  CacheAligned<std::atomic<std::uint64_t>> global_epoch_;
  CacheAligned<std::atomic<std::uint64_t>> retired_live_;

  std::mutex registry_mu_;
  std::vector<ThreadState*> slots_;          // all ever-created slots (owned)
  RetiredNode* orphans_[kBuckets] = {};      // limbo of exited threads
  std::uint64_t orphan_epochs_[kBuckets] = {};

  const std::uint64_t domain_id_;
};

// Policy adapter satisfying reclaimer_for<Node>, referencing a domain.
class EpochReclaimer {
 public:
  EpochReclaimer() : domain_(&EpochDomain::global()) {}
  explicit EpochReclaimer(EpochDomain& domain) : domain_(&domain) {}

  EpochDomain::Guard guard() { return domain_->guard(); }

  template <typename Node>
  void retire(Node* node) {
    domain_->retire(node);
  }

  void retire_with(void* object, void (*deleter)(void*)) {
    domain_->retire_with(object, deleter);
  }

  // Finger-layer hook (see EpochDomain::pinned_epoch).
  std::uint64_t pinned_epoch() { return domain_->pinned_epoch(); }

  EpochDomain& domain() noexcept { return *domain_; }

 private:
  EpochDomain* domain_;
};

}  // namespace lf::reclaim
