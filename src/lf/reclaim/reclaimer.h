// Reclaimer policy interface.
//
// The paper deliberately leaves memory management out ("We have not
// explicitly incorporated a memory management technique", Section 5) and
// notes reference counting would apply because physically deleted nodes form
// no cycles. This repository instead makes reclamation a pluggable policy on
// every data structure:
//
//   * LeakyReclaimer  — never frees unlinked nodes; the paper's own setting.
//                       Useful to benchmark the pure algorithm (E9 baseline).
//   * EpochReclaimer  — epoch-based reclamation (Fraser). The default. Safe
//                       for this paper's structures *including backlink
//                       traversal of physically deleted nodes*, because a
//                       node retired in epoch r can only be reached by an
//                       operation already pinned when r began, and such an
//                       operation blocks the 2-epoch grace period.
//   * HazardReclaimer — layered epoch + hazard pointers (reclaim/hazard.h).
//                       The epoch pin covers in-operation traversal (so the
//                       FR backlink walks stay safe without per-pointer
//                       validation), while retained hazard slots protect
//                       cross-operation finger hints that must survive
//                       epoch advances. Raw per-pointer protect/validate
//                       (Michael's SMR) remains what MichaelListHP uses
//                       directly, whose find() was designed for that
//                       discipline.
//
// A policy provides:
//   Guard guard()            RAII critical-section token. All loads of
//                            shared node pointers must happen under a guard.
//   void retire(T* node)     hand an unlinked node over; it is deleted when
//                            no operation can still hold a reference.
#pragma once

#include <concepts>
#include <utility>

namespace lf::reclaim {

// Duck-typed policy concept used by the data-structure templates.
template <typename R, typename Node>
concept reclaimer_for = requires(R r, Node* n) {
  { r.guard() };
  { r.retire(n) };
};

// Extended policy for structures with pooled / non-trivially-freed memory
// (flat towers, pool-recycled nodes): retirement carries an explicit
// deleter that runs after the grace period, so the structure controls how
// the block returns to its arena. Epoch, Leaky, and HazardReclaimer provide
// it; the raw HazardDomain used by MichaelListHP keeps the narrower
// interface (that list owns its nodes individually).
template <typename R>
concept deferred_reclaimer = requires(R r, void* p, void (*d)(void*)) {
  { r.guard() };
  { r.retire_with(p, d) };
};

}  // namespace lf::reclaim
