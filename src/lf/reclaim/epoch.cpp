#include "lf/reclaim/epoch.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <sstream>
#include <unordered_map>

#include "lf/chaos/chaos.h"

namespace lf::reclaim {
namespace {

// Domain id -> live domain. Used by thread-exit cleanup to avoid touching a
// destroyed domain. Heap-allocated and never destroyed so it is valid during
// late TLS teardown regardless of static destruction order.
struct DomainIdMap {
  std::mutex mu;
  std::unordered_map<std::uint64_t, EpochDomain*> map;
  std::atomic<std::uint64_t> next_id{1};
};

DomainIdMap& id_map() {
  static DomainIdMap* m = new DomainIdMap;
  return *m;
}

// Slots a dying domain could not delete because their owner thread was
// still pinned (contract violation, diagnosed in ~EpochDomain). Immortal
// and reachable, so the abandoned ThreadStates are neither use-after-free
// hazards for the parked thread's eventual unpin nor leaks to LSan.
struct AbandonedSlots {
  std::mutex mu;
  std::vector<void*> slots;
  std::atomic<std::uint64_t> count{0};
};

AbandonedSlots& abandoned() {
  static AbandonedSlots* a = new AbandonedSlots;
  return *a;
}

}  // namespace

// Per-thread slot inside a domain. `state` packs
// (epoch << kEpochShift) | ejected | active; it and `heartbeat` are the only
// fields other threads read on hot paths; `resilient` is owner-read and set
// under the registry lock; everything else is owner-only (or
// registry-lock-protected during acquire/release/adopt).
struct EpochDomain::ThreadState {
  CacheAligned<std::atomic<std::uint64_t>> state;
  // Bumped on every outermost pin (and on ejection settlement): the blame
  // detector only ejects a slot whose (state, heartbeat) pair froze.
  std::atomic<std::uint64_t> heartbeat{0};
  // Mirror of the domain's sticky arming flag: when set, unpin/publish use
  // RMWs that cannot erase a concurrently-set ejected bit. Per-slot (not
  // read from the domain) so a Guard outliving its domain — the abandoned
  // slot path — never dereferences the dead domain in ~Guard.
  std::atomic<bool> resilient{false};
  std::thread::id owner_id{};
  RetiredNode* limbo[kBuckets] = {};
  std::uint64_t limbo_epoch[kBuckets] = {};  // epoch the bucket was filed under
  std::uint64_t retire_since_scan = 0;
  std::uint32_t pin_depth = 0;
  bool in_use = false;
};

EpochDomain::EpochDomain() : domain_id_(id_map().next_id.fetch_add(1)) {
  global_epoch_->store(kBuckets, std::memory_order_relaxed);  // start > grace
  retired_live_->store(0, std::memory_order_relaxed);
  std::lock_guard lock(id_map().mu);
  id_map().map.emplace(domain_id_, this);
}

EpochDomain::~EpochDomain() {
  {
    // Unregister first: any thread exiting after this point skips us.
    std::lock_guard lock(id_map().mu);
    id_map().map.erase(domain_id_);
  }
  drain();
  // Precondition: no thread is still operating on structures that use this
  // domain, so every remaining limbo list is quiescent garbage.
  RetiredNode* q = nullptr;
  {
    std::lock_guard lock(registry_mu_);
    for (ThreadState* ts : slots_) {
      for (auto*& head : ts->limbo) {
        free_list(head, *retired_live_);
        head = nullptr;
      }
      const std::uint64_t w = ts->state->load(std::memory_order_seq_cst);
      if ((w & kActiveBit) != 0) {
        // Diagnostic: the "domain outlives every thread" contract is
        // violated — a thread is still pinned (typically a victim parked
        // mid-operation). Deleting its slot would hand the parked thread a
        // dangling pointer for its eventual unpin store, so abandon the
        // slot to an immortal registry instead: settle any ejection (the
        // quarantine is freed below regardless) and disarm the slot so the
        // unpin is a plain store that never touches this dead domain.
        if ((w & kEjectedBit) != 0) {
          ejected_count_.fetch_sub(1, std::memory_order_seq_cst);
        }
        ts->resilient.store(false, std::memory_order_seq_cst);
        ts->state->store(w & ~kEjectedBit, std::memory_order_seq_cst);
        abandoned().count.fetch_add(1, std::memory_order_relaxed);
        {
          std::lock_guard alock(abandoned().mu);
          abandoned().slots.push_back(ts);
        }
        std::fprintf(stderr,
                     "lf::reclaim: EpochDomain %llu destroyed while a thread "
                     "is still pinned (epoch %llu); slot abandoned\n",
                     static_cast<unsigned long long>(domain_id_),
                     static_cast<unsigned long long>(w >> kEpochShift));
        continue;
      }
      delete ts;
    }
    slots_.clear();
    for (auto*& head : orphans_) {
      free_list(head, *retired_live_);
      head = nullptr;
    }
    q = quarantine_;
    quarantine_ = nullptr;
    quarantine_depth_.store(0, std::memory_order_relaxed);
  }
  // Unconditional: by the teardown contract nothing can still dereference
  // this domain's garbage (the abandoned-slot path above covers threads
  // parked OUTSIDE any traversal of domain-managed nodes).
  free_list(q, *retired_live_);
}

EpochDomain& EpochDomain::global() {
  static EpochDomain* d = new EpochDomain;  // immortal: see header contract
  return *d;
}

std::uint64_t EpochDomain::abandoned_slots() noexcept {
  return abandoned().count.load(std::memory_order_relaxed);
}

EpochDomain::Guard::Guard(EpochDomain& domain)
    : domain_(domain), ts_(&domain.thread_state()) {
  outermost_ = (ts_->pin_depth++ == 0);
  if (!outermost_) return;
  LF_CHAOS_POINT(kEpochPin);  // before publishing: no lock held here
  // A fresh beat: the blame detector treats a frozen (word, heartbeat) pair
  // as a stalled pin, so every sign of life must move one of the two.
  ts_->heartbeat.fetch_add(1, std::memory_order_relaxed);
  // Publish (epoch, active) and verify the global did not move past us; this
  // loop is what makes the advertised epoch trustworthy to advancers.
  for (;;) {
    const std::uint64_t e =
        domain_.global_epoch_->load(std::memory_order_seq_cst);
    const std::uint64_t word = (e << kEpochShift) | kActiveBit;
    if (ts_->resilient.load(std::memory_order_relaxed)) {
      // An armed advancer may eject us between loop iterations (a thread
      // parked inside this loop is indistinguishable from a stalled one).
      // The exchange claims any ejected bit atomically so the ejection is
      // settled, never silently erased. Settling here is safe: we hold no
      // references yet — this is the outermost pin being established.
      const std::uint64_t prev =
          ts_->state->exchange(word, std::memory_order_seq_cst);
      if ((prev & kEjectedBit) != 0) {
        domain_.settle_ejection(ts_, /*clear_state=*/false);
      }
    } else {
      ts_->state->store(word, std::memory_order_seq_cst);
    }
    if (domain_.global_epoch_->load(std::memory_order_seq_cst) == e) {
      domain_.reclaim_bucket_locally(*ts_, e);
      break;
    }
  }
}

EpochDomain::Guard::~Guard() {
  if (!outermost_) {
    --ts_->pin_depth;
    return;
  }
  --ts_->pin_depth;
  if (!ts_->resilient.load(std::memory_order_relaxed)) {
    const std::uint64_t w = ts_->state->load(std::memory_order_relaxed);
    ts_->state->store(w & ~kActiveBit, std::memory_order_seq_cst);
    return;
  }
  // Armed domain: the advancer can CAS the ejected bit in at any moment, so
  // retiring the pin must be a CAS — a blind store could erase the bit and
  // leak an unsettled ejection (the quarantine would never drain).
  std::uint64_t w = ts_->state->load(std::memory_order_relaxed);
  for (;;) {
    if ((w & kEjectedBit) != 0) {
      // We were ejected while (apparently) stalled and are now past the
      // guarded region: acknowledge, which may let the quarantine drain.
      domain_.settle_ejection(ts_, /*clear_state=*/true);
      return;
    }
    if (ts_->state->compare_exchange_weak(w, w & ~kActiveBit,
                                          std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
      return;
    }
  }
}

void EpochDomain::retire_erased(void* object, void (*deleter)(void*)) {
  LF_CHAOS_POINT(kEpochRetire);
  Guard pin(*this);  // keep our slot registered while touching its lists
  ThreadState& ts = *pin.ts_;
  // File under the CURRENT global epoch, not this thread's pinned epoch.
  // A pinned reader that could still reach the object was pinned no later
  // than the object's unlink, so (global epoch now) >= (its pin epoch) by
  // monotonicity, and freeing at +2 cannot overtake it. Filing under our
  // own pinned epoch would be unsound: it can lag the global by one, which
  // shaves the grace period to a single epoch for readers pinned at the
  // current one (found by ThreadSanitizer on the churn stress test).
  const std::uint64_t e = global_epoch_->load(std::memory_order_seq_cst);
  const int idx = static_cast<int>(e % kBuckets);
  if (ts.limbo_epoch[idx] != e) {
    // Residue collision: existing content was filed at <= e - 3, which is
    // already past the 2-epoch grace period. Dispose of it before reusing
    // (diverts to the quarantine while an ejection is outstanding).
    dispose_list(ts.limbo[idx], /*locked=*/false);
    ts.limbo[idx] = nullptr;
    ts.limbo_epoch[idx] = e;
  }
  auto* rn = new RetiredNode{object, deleter, ts.limbo[idx]};
  ts.limbo[idx] = rn;
  retired_live_->fetch_add(1, std::memory_order_relaxed);
  stats::tls().node_retired.inc();
  if (++ts.retire_since_scan >= kAdvanceEvery) {
    ts.retire_since_scan = 0;
    try_advance();
  }
}

std::uint64_t EpochDomain::pinned_epoch() {
  ThreadState& ts = thread_state();
  assert(ts.pin_depth > 0 && "pinned_epoch() requires an active Guard");
  return ts.state->load(std::memory_order_relaxed) >> kEpochShift;
}

EpochDomain::ThreadState& EpochDomain::thread_state() {
  struct Entry {
    std::uint64_t domain_id;
    ThreadState* ts;
  };
  struct Cache {
    std::vector<Entry> entries;
    ~Cache() {
      for (const Entry& e : entries) {
        EpochDomain* domain = nullptr;
        {
          std::lock_guard lock(id_map().mu);
          auto it = id_map().map.find(e.domain_id);
          if (it != id_map().map.end()) domain = it->second;
        }
        if (domain != nullptr) domain->release_slot(e.ts);
      }
    }
  };
  thread_local Cache cache;

  for (const Entry& e : cache.entries)
    if (e.domain_id == domain_id_) return *e.ts;
  ThreadState* ts = acquire_slot();
  cache.entries.push_back(Entry{domain_id_, ts});
  return *ts;
}

EpochDomain::ThreadState* EpochDomain::acquire_slot() {
  std::lock_guard lock(registry_mu_);
  for (ThreadState* ts : slots_) {
    if (!ts->in_use) {
      ts->in_use = true;
      ts->owner_id = std::this_thread::get_id();
      ts->resilient.store(armed_, std::memory_order_relaxed);
      return ts;
    }
  }
  auto* ts = new ThreadState;
  ts->in_use = true;
  ts->owner_id = std::this_thread::get_id();
  ts->resilient.store(armed_, std::memory_order_relaxed);
  slots_.push_back(ts);
  return ts;
}

void EpochDomain::release_slot(ThreadState* ts) {
  std::lock_guard lock(registry_mu_);
  assert(ts->pin_depth == 0 && "thread exited while pinned");
  for (int b = 0; b < kBuckets; ++b) {
    if (ts->limbo[b] == nullptr) continue;
    RetiredNode* tail = ts->limbo[b];
    while (tail->next != nullptr) tail = tail->next;
    tail->next = orphans_[b];
    orphans_[b] = ts->limbo[b];
    orphan_epochs_[b] = std::max(orphan_epochs_[b], ts->limbo_epoch[b]);
    ts->limbo[b] = nullptr;
    ts->limbo_epoch[b] = 0;
  }
  ts->retire_since_scan = 0;
  ts->owner_id = std::thread::id{};
  if (blamed_slot_ == ts) {
    blamed_slot_ = nullptr;  // the suspect exited; drop the stale blame
    blame_streak_ = 0;
  }
  ts->state->store(0, std::memory_order_seq_cst);
  ts->in_use = false;
}

void EpochDomain::set_resilience(const ResilienceOptions& opts) {
  std::lock_guard lock(registry_mu_);
  resilience_ = opts;
  blamed_slot_ = nullptr;
  blame_streak_ = 0;
  if (opts.neutralize && !armed_) {
    armed_ = true;  // sticky: see header
    for (ThreadState* ts : slots_)
      ts->resilient.store(true, std::memory_order_seq_cst);
  }
}

bool EpochDomain::note_straggler_locked(ThreadState* ts, std::uint64_t word) {
  if (!resilience_.neutralize) return false;
  const std::uint64_t beat = ts->heartbeat.load(std::memory_order_relaxed);
  if (ts != blamed_slot_ || word != blamed_word_ || beat != blamed_beat_) {
    blamed_slot_ = ts;  // new suspect, or the old one showed life: restart
    blamed_word_ = word;
    blamed_beat_ = beat;
    blame_streak_ = 1;
    return false;
  }
  if (++blame_streak_ < resilience_.blame_threshold) return false;
  blame_streak_ = 0;
  blamed_slot_ = nullptr;
  // Eject. Order matters (both seq_cst): the count increment precedes the
  // bit CAS — and therefore every epoch advance this ejection enables — so
  // any thread that frees because it observed the advanced epoch also
  // observes the outstanding ejection and diverts to the quarantine
  // (safety argument in DESIGN.md §11).
  ejected_count_.fetch_add(1, std::memory_order_seq_cst);
  std::uint64_t expected = word;
  if (!ts->state->compare_exchange_strong(expected, word | kEjectedBit,
                                          std::memory_order_seq_cst)) {
    // The owner moved after all — not stalled. Undo.
    ejected_count_.fetch_sub(1, std::memory_order_seq_cst);
    return false;
  }
  stats::tls().epoch_eject.inc();
  return true;
}

bool EpochDomain::try_advance() {
  LF_CHAOS_POINT(kEpochAdvance);  // before the registry lock: parking a
                                  // victim here must not block survivors
  const std::uint64_t e = global_epoch_->load(std::memory_order_seq_cst);
  bool ejected = false;
  bool advanced = false;
  RetiredNode* q = nullptr;
  {
    std::lock_guard lock(registry_mu_);
    ThreadState* straggler = nullptr;
    std::uint64_t straggler_word = 0;
    for (ThreadState* ts : slots_) {
      const std::uint64_t w = ts->state->load(std::memory_order_seq_cst);
      if ((w & kActiveBit) == 0) continue;
      if ((w & kEjectedBit) != 0) continue;  // neutralized: not blocking
      if ((w >> kEpochShift) != e) {
        straggler = ts;
        straggler_word = w;
        break;
      }
    }
    if (straggler != nullptr) {
      ejected = note_straggler_locked(straggler, straggler_word);
    } else {
      blamed_slot_ = nullptr;
      blame_streak_ = 0;
      std::uint64_t expected = e;
      advanced = global_epoch_->compare_exchange_strong(
          expected, e + 1, std::memory_order_seq_cst);
      // On CAS failure someone else advanced; they handle the orphans.
      if (advanced) {
        for (int b = 0; b < kBuckets; ++b) {
          if (orphans_[b] != nullptr && orphan_epochs_[b] + 2 <= e + 1) {
            dispose_list(orphans_[b], /*locked=*/true);
            orphans_[b] = nullptr;
          }
        }
        q = detach_quarantine_locked();
      }
    }
  }
  if (ejected) LF_CHAOS_POINT(kEpochEject);  // after the lock: see chaos.h
  free_quarantine(q);
  return advanced;
}

void EpochDomain::settle_ejection(ThreadState* ts, bool clear_state) {
  LF_CHAOS_POINT(kEpochEjectAck);  // entry, before the registry lock
  RetiredNode* q = nullptr;
  {
    std::lock_guard lock(registry_mu_);
    if (clear_state) {
      const std::uint64_t w = ts->state->load(std::memory_order_seq_cst);
      if ((w & kEjectedBit) == 0) return;  // settled by adopt_stalled
      ts->state->store(0, std::memory_order_seq_cst);
    }
    ejected_count_.fetch_sub(1, std::memory_order_seq_cst);
    ts->heartbeat.fetch_add(1, std::memory_order_relaxed);
    q = detach_quarantine_locked();
  }
  stats::tls().epoch_eject_ack.inc();
  free_quarantine(q);  // outside the lock: deleters may re-enter the domain
}

bool EpochDomain::adopt_stalled(std::thread::id tid) {
  RetiredNode* q = nullptr;
  bool found = false;
  {
    std::lock_guard lock(registry_mu_);
    for (ThreadState* ts : slots_) {
      if (!ts->in_use || ts->owner_id != tid) continue;
      found = true;
      std::uint64_t adopted = 0;
      for (int b = 0; b < kBuckets; ++b) {
        if (ts->limbo[b] == nullptr) continue;
        RetiredNode* tail = ts->limbo[b];
        ++adopted;
        while (tail->next != nullptr) {
          tail = tail->next;
          ++adopted;
        }
        tail->next = orphans_[b];
        orphans_[b] = ts->limbo[b];
        orphan_epochs_[b] = std::max(orphan_epochs_[b], ts->limbo_epoch[b]);
        ts->limbo[b] = nullptr;
        ts->limbo_epoch[b] = 0;
      }
      ts->retire_since_scan = 0;
      if (adopted > 0) stats::tls().orphan_adopt.inc(adopted);
      // The caller vouches the owner cannot run concurrently, so the slot
      // word can be retired outright; pin_depth and slot registration are
      // left for the owner's own unwind if it ever resumes (contract: then
      // it must be parked outside any guarded region, i.e. state is
      // already inactive and this store is a no-op).
      const std::uint64_t w = ts->state->load(std::memory_order_seq_cst);
      ts->state->store(0, std::memory_order_seq_cst);
      if ((w & kEjectedBit) != 0) {
        ejected_count_.fetch_sub(1, std::memory_order_seq_cst);
        stats::tls().epoch_eject_ack.inc();
      }
      if (blamed_slot_ == ts) {
        blamed_slot_ = nullptr;
        blame_streak_ = 0;
      }
      ts->heartbeat.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    if (found) q = detach_quarantine_locked();
  }
  free_quarantine(q);
  return found;
}

bool EpochDomain::remediate_now() {
  std::uint32_t rounds;
  {
    std::lock_guard lock(registry_mu_);
    // Enough failed advances to push the blame streak over the threshold,
    // plus a few successful ones to move every residue class.
    rounds = resilience_.blame_threshold + kBuckets + 2;
  }
  const std::uint64_t e0 = epoch();
  for (std::uint32_t i = 0; i < rounds; ++i) try_advance();
  RetiredNode* q = nullptr;
  {
    std::lock_guard lock(registry_mu_);
    q = detach_quarantine_locked();
  }
  const bool freed = q != nullptr;
  free_quarantine(q);
  return freed || epoch() != e0;
}

std::string EpochDomain::stall_report() {
  std::ostringstream os;
  const std::uint64_t e = epoch();
  std::lock_guard lock(registry_mu_);
  os << "epoch domain: epoch=" << e << " retired_backlog=" << retired_count()
     << " quarantine_depth=" << quarantine_depth()
     << (quarantine_depth() > resilience_.quarantine_soft_cap
             ? " (OVER soft cap)"
             : "")
     << " ejected=" << ejected_count()
     << " neutralize=" << (resilience_.neutralize ? "on" : "off") << "\n";
  int i = 0;
  for (ThreadState* ts : slots_) {
    const std::uint64_t w = ts->state->load(std::memory_order_seq_cst);
    os << "  slot " << i++ << (ts->in_use ? "" : " (idle)")
       << " active=" << ((w & kActiveBit) != 0 ? 1 : 0)
       << " ejected=" << ((w & kEjectedBit) != 0 ? 1 : 0);
    if ((w & kActiveBit) != 0) {
      os << " pinned_epoch=" << (w >> kEpochShift)
         << " behind=" << (e - (w >> kEpochShift));
    }
    os << " heartbeat=" << ts->heartbeat.load(std::memory_order_relaxed)
       << "\n";
  }
  return os.str();
}

void EpochDomain::reclaim_bucket_locally(ThreadState& ts,
                                         std::uint64_t observed_epoch) {
  for (int b = 0; b < kBuckets; ++b) {
    if (ts.limbo[b] != nullptr && ts.limbo_epoch[b] + 2 <= observed_epoch) {
      dispose_list(ts.limbo[b], /*locked=*/false);
      ts.limbo[b] = nullptr;
    }
  }
}

void EpochDomain::dispose_list(RetiredNode* head, bool locked) {
  if (head == nullptr) return;
  // seq_cst pairs with the count-increment-before-bit-CAS order in
  // note_straggler_locked: a free enabled by an ejection-driven advance
  // cannot miss the outstanding ejection (DESIGN.md §11).
  if (ejected_count_.load(std::memory_order_seq_cst) == 0) {
    free_list(head, *retired_live_);
    return;
  }
  // An ejected reader may resume and keep dereferencing anything it could
  // reach before it stalled: run no deleters, quarantine the whole list.
  std::uint64_t n = 1;
  RetiredNode* tail = head;
  while (tail->next != nullptr) {
    tail = tail->next;
    ++n;
  }
  {
    std::unique_lock<std::mutex> lock(registry_mu_, std::defer_lock);
    if (!locked) lock.lock();
    tail->next = quarantine_;
    quarantine_ = head;
  }
  quarantine_depth_.fetch_add(n, std::memory_order_relaxed);
  stats::tls().quarantine_in.inc(n);
}

EpochDomain::RetiredNode* EpochDomain::detach_quarantine_locked() {
  if (quarantine_ == nullptr) return nullptr;
  if (ejected_count_.load(std::memory_order_seq_cst) != 0) return nullptr;
  RetiredNode* head = quarantine_;
  quarantine_ = nullptr;
  return head;
}

void EpochDomain::free_quarantine(RetiredNode* head) {
  if (head == nullptr) return;
  std::uint64_t n = 0;
  for (RetiredNode* p = head; p != nullptr; p = p->next) ++n;
  quarantine_depth_.fetch_sub(n, std::memory_order_relaxed);
  stats::tls().quarantine_free.inc(n);
  free_list(head, *retired_live_);
}

void EpochDomain::free_list(RetiredNode* head,
                            std::atomic<std::uint64_t>& live) {
  std::uint64_t n = 0;
  while (head != nullptr) {
    RetiredNode* next = head->next;
    head->deleter(head->object);
    delete head;
    head = next;
    ++n;
  }
  if (n > 0) {
    live.fetch_sub(n, std::memory_order_relaxed);
    stats::tls().node_freed.inc(n);
  }
}

void EpochDomain::drain() {
  ThreadState& ts = thread_state();
  assert(ts.pin_depth == 0 && "drain() called under a guard");
  // Each successful advance retires one more residue class; three passes
  // drain everything the calling thread and exited threads have retired,
  // provided no other thread is pinned.
  for (int i = 0; i < kBuckets; ++i) {
    try_advance();
    reclaim_bucket_locally(ts,
                           global_epoch_->load(std::memory_order_seq_cst));
  }
  RetiredNode* q = nullptr;
  {
    std::lock_guard lock(registry_mu_);
    q = detach_quarantine_locked();
  }
  free_quarantine(q);
}

}  // namespace lf::reclaim
