#include "lf/reclaim/epoch.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "lf/chaos/chaos.h"

namespace lf::reclaim {
namespace {

// Domain id -> live domain. Used by thread-exit cleanup to avoid touching a
// destroyed domain. Heap-allocated and never destroyed so it is valid during
// late TLS teardown regardless of static destruction order.
struct DomainIdMap {
  std::mutex mu;
  std::unordered_map<std::uint64_t, EpochDomain*> map;
  std::atomic<std::uint64_t> next_id{1};
};

DomainIdMap& id_map() {
  static DomainIdMap* m = new DomainIdMap;
  return *m;
}

}  // namespace

// Per-thread slot inside a domain. `state` packs (epoch << 1) | active and is
// the only field other threads read; everything else is owner-only (or
// registry-lock-protected during acquire/release).
struct EpochDomain::ThreadState {
  CacheAligned<std::atomic<std::uint64_t>> state;  // (epoch << 1) | active
  RetiredNode* limbo[kBuckets] = {};
  std::uint64_t limbo_epoch[kBuckets] = {};  // epoch the bucket was filed under
  std::uint64_t retire_since_scan = 0;
  std::uint32_t pin_depth = 0;
  bool in_use = false;
};

EpochDomain::EpochDomain() : domain_id_(id_map().next_id.fetch_add(1)) {
  global_epoch_->store(kBuckets, std::memory_order_relaxed);  // start > grace
  retired_live_->store(0, std::memory_order_relaxed);
  std::lock_guard lock(id_map().mu);
  id_map().map.emplace(domain_id_, this);
}

EpochDomain::~EpochDomain() {
  {
    // Unregister first: any thread exiting after this point skips us.
    std::lock_guard lock(id_map().mu);
    id_map().map.erase(domain_id_);
  }
  drain();
  // Precondition: no thread is still operating on structures that use this
  // domain, so every remaining limbo list is quiescent garbage.
  std::lock_guard lock(registry_mu_);
  for (ThreadState* ts : slots_) {
    for (auto*& head : ts->limbo) {
      free_list(head, *retired_live_);
      head = nullptr;
    }
    delete ts;
  }
  slots_.clear();
  for (auto*& head : orphans_) {
    free_list(head, *retired_live_);
    head = nullptr;
  }
}

EpochDomain& EpochDomain::global() {
  static EpochDomain* d = new EpochDomain;  // immortal: see header contract
  return *d;
}

EpochDomain::Guard::Guard(EpochDomain& domain)
    : domain_(domain), ts_(&domain.thread_state()) {
  outermost_ = (ts_->pin_depth++ == 0);
  if (!outermost_) return;
  LF_CHAOS_POINT(kEpochPin);  // before publishing: no lock held here
  // Publish (epoch, active) and verify the global did not move past us; this
  // loop is what makes the advertised epoch trustworthy to advancers.
  for (;;) {
    const std::uint64_t e =
        domain_.global_epoch_->load(std::memory_order_seq_cst);
    ts_->state->store((e << 1) | 1, std::memory_order_seq_cst);
    if (domain_.global_epoch_->load(std::memory_order_seq_cst) == e) {
      domain_.reclaim_bucket_locally(*ts_, e);
      break;
    }
  }
}

EpochDomain::Guard::~Guard() {
  if (!outermost_) {
    --ts_->pin_depth;
    return;
  }
  --ts_->pin_depth;
  const std::uint64_t w = ts_->state->load(std::memory_order_relaxed);
  ts_->state->store(w & ~std::uint64_t{1}, std::memory_order_seq_cst);
}

void EpochDomain::retire_erased(void* object, void (*deleter)(void*)) {
  LF_CHAOS_POINT(kEpochRetire);
  Guard pin(*this);  // keep our slot registered while touching its lists
  ThreadState& ts = *pin.ts_;
  // File under the CURRENT global epoch, not this thread's pinned epoch.
  // A pinned reader that could still reach the object was pinned no later
  // than the object's unlink, so (global epoch now) >= (its pin epoch) by
  // monotonicity, and freeing at +2 cannot overtake it. Filing under our
  // own pinned epoch would be unsound: it can lag the global by one, which
  // shaves the grace period to a single epoch for readers pinned at the
  // current one (found by ThreadSanitizer on the churn stress test).
  const std::uint64_t e = global_epoch_->load(std::memory_order_seq_cst);
  const int idx = static_cast<int>(e % kBuckets);
  if (ts.limbo_epoch[idx] != e) {
    // Residue collision: existing content was filed at <= e - 3, which is
    // already past the 2-epoch grace period. Free it before reusing.
    free_list(ts.limbo[idx], *retired_live_);
    ts.limbo[idx] = nullptr;
    ts.limbo_epoch[idx] = e;
  }
  auto* rn = new RetiredNode{object, deleter, ts.limbo[idx]};
  ts.limbo[idx] = rn;
  retired_live_->fetch_add(1, std::memory_order_relaxed);
  stats::tls().node_retired.inc();
  if (++ts.retire_since_scan >= kAdvanceEvery) {
    ts.retire_since_scan = 0;
    try_advance();
  }
}

std::uint64_t EpochDomain::pinned_epoch() {
  ThreadState& ts = thread_state();
  assert(ts.pin_depth > 0 && "pinned_epoch() requires an active Guard");
  return ts.state->load(std::memory_order_relaxed) >> 1;
}

EpochDomain::ThreadState& EpochDomain::thread_state() {
  struct Entry {
    std::uint64_t domain_id;
    ThreadState* ts;
  };
  struct Cache {
    std::vector<Entry> entries;
    ~Cache() {
      for (const Entry& e : entries) {
        EpochDomain* domain = nullptr;
        {
          std::lock_guard lock(id_map().mu);
          auto it = id_map().map.find(e.domain_id);
          if (it != id_map().map.end()) domain = it->second;
        }
        if (domain != nullptr) domain->release_slot(e.ts);
      }
    }
  };
  thread_local Cache cache;

  for (const Entry& e : cache.entries)
    if (e.domain_id == domain_id_) return *e.ts;
  ThreadState* ts = acquire_slot();
  cache.entries.push_back(Entry{domain_id_, ts});
  return *ts;
}

EpochDomain::ThreadState* EpochDomain::acquire_slot() {
  std::lock_guard lock(registry_mu_);
  for (ThreadState* ts : slots_) {
    if (!ts->in_use) {
      ts->in_use = true;
      return ts;
    }
  }
  auto* ts = new ThreadState;
  ts->in_use = true;
  slots_.push_back(ts);
  return ts;
}

void EpochDomain::release_slot(ThreadState* ts) {
  std::lock_guard lock(registry_mu_);
  assert(ts->pin_depth == 0 && "thread exited while pinned");
  for (int b = 0; b < kBuckets; ++b) {
    if (ts->limbo[b] == nullptr) continue;
    RetiredNode* tail = ts->limbo[b];
    while (tail->next != nullptr) tail = tail->next;
    tail->next = orphans_[b];
    orphans_[b] = ts->limbo[b];
    orphan_epochs_[b] = std::max(orphan_epochs_[b], ts->limbo_epoch[b]);
    ts->limbo[b] = nullptr;
    ts->limbo_epoch[b] = 0;
  }
  ts->retire_since_scan = 0;
  ts->state->store(0, std::memory_order_seq_cst);
  ts->in_use = false;
}

bool EpochDomain::try_advance() {
  LF_CHAOS_POINT(kEpochAdvance);  // before the registry lock: parking a
                                  // victim here must not block survivors
  const std::uint64_t e = global_epoch_->load(std::memory_order_seq_cst);
  std::lock_guard lock(registry_mu_);
  for (ThreadState* ts : slots_) {
    const std::uint64_t w = ts->state->load(std::memory_order_seq_cst);
    if ((w & 1) != 0 && (w >> 1) != e) return false;  // straggler pinned
  }
  std::uint64_t expected = e;
  if (!global_epoch_->compare_exchange_strong(expected, e + 1,
                                              std::memory_order_seq_cst)) {
    return false;  // someone else advanced; they will handle orphans
  }
  for (int b = 0; b < kBuckets; ++b) {
    if (orphans_[b] != nullptr && orphan_epochs_[b] + 2 <= e + 1) {
      free_list(orphans_[b], *retired_live_);
      orphans_[b] = nullptr;
    }
  }
  return true;
}

void EpochDomain::reclaim_bucket_locally(ThreadState& ts,
                                         std::uint64_t observed_epoch) {
  for (int b = 0; b < kBuckets; ++b) {
    if (ts.limbo[b] != nullptr && ts.limbo_epoch[b] + 2 <= observed_epoch) {
      free_list(ts.limbo[b], *retired_live_);
      ts.limbo[b] = nullptr;
    }
  }
}

void EpochDomain::free_list(RetiredNode* head,
                            std::atomic<std::uint64_t>& live) {
  std::uint64_t n = 0;
  while (head != nullptr) {
    RetiredNode* next = head->next;
    head->deleter(head->object);
    delete head;
    head = next;
    ++n;
  }
  if (n > 0) {
    live.fetch_sub(n, std::memory_order_relaxed);
    stats::tls().node_freed.inc(n);
  }
}

void EpochDomain::drain() {
  ThreadState& ts = thread_state();
  assert(ts.pin_depth == 0 && "drain() called under a guard");
  // Each successful advance retires one more residue class; three passes
  // drain everything the calling thread and exited threads have retired,
  // provided no other thread is pinned.
  for (int i = 0; i < kBuckets; ++i) {
    try_advance();
    reclaim_bucket_locally(ts,
                           global_epoch_->load(std::memory_order_seq_cst));
  }
}

}  // namespace lf::reclaim
