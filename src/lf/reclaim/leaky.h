// The no-op reclaimer: unlinked nodes are never freed.
//
// This matches the paper's own presentation (memory management is out of
// scope there) and gives benchmarks a zero-overhead baseline to quantify
// what epoch/hazard reclamation costs (experiment E9). Long-running
// processes should use EpochReclaimer.
#pragma once

#include "lf/instrument/counters.h"

namespace lf::reclaim {

class LeakyReclaimer {
 public:
  struct Guard {};

  Guard guard() noexcept { return {}; }

  template <typename Node>
  void retire(Node* /*node*/) noexcept {
    // Deliberately leaked; counted so tests can assert the retire paths ran.
    stats::tls().node_retired.inc();
  }

  // Deleter-based retirement (pooled/flat-tower layouts): the deleter is
  // never run, so the block is leaked exactly like a `retire`d node.
  void retire_with(void* /*object*/, void (*/*deleter*/)(void*)) noexcept {
    stats::tls().node_retired.inc();
  }
};

}  // namespace lf::reclaim
