// Hazard pointers — Michael's Safe Memory Reclamation (the paper's
// reference [9]).
//
// A thread protects a node by publishing its address in one of its hazard
// slots and re-validating that the node is still reachable from where the
// pointer was loaded; retired nodes are only freed when no published hazard
// slot holds them.
//
// This is the reclamation scheme the Michael-list baseline was designed for
// (its find() restarts whenever validation fails, which is exactly why the
// FR structures — whose point is to *never* restart — pair more naturally
// with epoch reclamation; experiment E9 quantifies both pairings).
//
// Protocol expected of users, per slot:
//     do { p = src.load(); slots.set(i, p); } while (src.load() != p);
//     ... p is safe to dereference until slots.clear(i) ...
// The list code implements that loop itself because "reachable" is
// structure-specific (tag bits, etc.).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "lf/instrument/counters.h"
#include "lf/util/align.h"

namespace lf::reclaim {

class HazardDomain {
  struct RetiredNode;  // type-erased retired-node record; defined below

 public:
  // Hazard slots per thread. Michael's list needs 3; one spare.
  static constexpr int kSlotsPerThread = 4;

  HazardDomain();
  ~HazardDomain();
  HazardDomain(const HazardDomain&) = delete;
  HazardDomain& operator=(const HazardDomain&) = delete;

  static HazardDomain& global();

  // The calling thread's hazard slots in this domain (acquired on first
  // use, released at thread exit).
  class ThreadSlots {
   public:
    void set(int i, const void* p) noexcept {
      hp_[i].value.store(const_cast<void*>(p), std::memory_order_seq_cst);
    }
    void clear(int i) noexcept {
      hp_[i].value.store(nullptr, std::memory_order_release);
    }
    void clear_all() noexcept {
      for (auto& slot : hp_) slot.value.store(nullptr,
                                              std::memory_order_release);
    }

   private:
    friend class HazardDomain;
    CacheAligned<std::atomic<void*>> hp_[kSlotsPerThread];
    RetiredNode* retired_ = nullptr;
    std::uint64_t retired_count_ = 0;
    bool in_use_ = false;
  };

  ThreadSlots& slots();

  // Retire an unlinked node; freed by a later scan() once unprotected.
  template <typename Node>
  void retire(Node* node) {
    retire_erased(node, [](void* p) { delete static_cast<Node*>(p); });
  }

  // Force a scan on the calling thread's retire list plus adopted orphans.
  // Frees every retired node not currently protected by any hazard slot.
  void scan();

  std::uint64_t retired_count() const noexcept {
    return retired_live_->load(std::memory_order_relaxed);
  }

 private:
  struct RetiredNode {
    void* object;
    void (*deleter)(void*);
    RetiredNode* next;
  };

  void retire_erased(void* object, void (*deleter)(void*));
  ThreadSlots* acquire_record();
  void release_record(ThreadSlots* rec);  // thread exit
  void scan_record(ThreadSlots& rec);
  std::uint64_t scan_threshold() const noexcept;

  CacheAligned<std::atomic<std::uint64_t>> retired_live_;

  std::mutex registry_mu_;
  std::vector<ThreadSlots*> records_;  // owned; includes released records
  RetiredNode* orphans_ = nullptr;
  std::uint64_t orphan_count_ = 0;

  const std::uint64_t domain_id_;
};

}  // namespace lf::reclaim
