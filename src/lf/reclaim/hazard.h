// Hazard pointers — Michael's Safe Memory Reclamation (the paper's
// reference [9]).
//
// A thread protects a node by publishing its address in one of its hazard
// slots and re-validating that the node is still reachable from where the
// pointer was loaded; retired nodes are only freed when no published hazard
// slot holds them.
//
// Two users share this domain:
//
//   * MichaelListHP — the per-traversal protect/validate discipline the
//     scheme was designed around (slots [0, kMichaelListSlots)). The fence
//     discipline lives in ThreadSlots::protect(), the single audited
//     publish-then-revalidate helper (see the memory-ordering audit below).
//
//   * The FR finger layer — via reclaim::HazardReclaimer (bottom of this
//     file), which pairs an epoch-pinned traversal with two RETAINED hazard
//     slots (kFingerSlot, kFingerHopSlot) that keep a thread's cached search
//     finger dereferenceable BETWEEN operations, across epoch advances. The
//     soundness argument is in DESIGN.md §10; the scan-side half of it (the
//     chain-protecting walk) is implemented in scan_record().
//
// ---- Memory-ordering audit: set()/clear()/protect() vs scan() -----------
//
// The protect idiom is   set(i, p)  — seq_cst store of the slot —
// followed by             reload    — seq_cst load of the source field
// (every SuccField load/C&S is seq_cst; see sync/succ_field.h). A reclaimer
// unlinks the node with a seq_cst C&S and scan() snapshots every slot with
// a seq_cst load. All four operations are therefore in the single total
// order S of seq_cst operations, and the store-buffering shape cannot
// deadlock the proof:
//
//     protector:  W_slot(p)        ; R_src
//     reclaimer:  W_src(unlink p)  ; R_slot
//
//   * If R_slot observes W_slot, the scanner sees p and spares it: the
//     protector's dereferences are safe.
//   * Otherwise R_slot precedes W_slot in S, so
//     W_src <_S R_slot <_S W_slot <_S R_src, and a seq_cst R_src must
//     observe W_src (or newer): the reload sees the unlink, validation
//     fails, and the protector discards p without dereferencing it.
//
// Weakening either the slot store or the source reload below seq_cst
// breaks the second branch (both sides could read the pre-race values —
// the classic store-buffering outcome) and the scanner could free a node
// the protector goes on to dereference. That is why set() must remain
// seq_cst and why protect() owns the pairing.
//
// clear(i) is only a RELEASE store: clearing merely widens the set of
// freeable nodes, so a scanner reading the stale non-null value is
// conservative (it spares a node longer than necessary — never the reverse).
// The release ordering is still required: when a scanner's seq_cst snapshot
// DOES observe the null, the release/seq_cst pairing makes every earlier
// dereference by the owner happen-before the observation, hence before the
// free. A relaxed clear would let the free race the owner's last reads.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "lf/instrument/counters.h"
#include "lf/reclaim/epoch.h"
#include "lf/util/align.h"

namespace lf::reclaim {

class HazardDomain {
  struct RetiredNode;  // type-erased retired-node record; defined below

 public:
  // Per-user slot requirements, by name. The total is their sum, and each
  // user static_asserts its own indices against its named constant, so a
  // new slot consumer extends the budget here instead of silently reusing
  // a "spare".
  //
  // Michael's find() keeps at most three node references live at a time
  // (prev, curr, next — SPAA 2002, Section 3); MichaelListHP publishes two
  // of them and the third is protected transitively, but the budget follows
  // the paper's bound.
  static constexpr int kMichaelListSlots = 3;
  // The FR finger path retains up to kFingerEntries cached finger pointers
  // between operations, organised as kFingerGroups groups of kFingerWays
  // set-associative cache ways: the list uses group 0 only (its level-1
  // way set); the skip list uses one group per fingered level, each entry
  // holding that level's pred's tower ROOT (the retired-block address under
  // the flat layout; see core/fr_skiplist.h) — plus one transient hop slot
  // that a level-1 backlink-recovery walk republishes per hop
  // (core/fr_list.h). Entry index for (group g, way w) is
  // g * kFingerWays + w.
  static constexpr int kFingerWays = 4;
  static constexpr int kFingerGroups = 4;
  static constexpr int kFingerEntries = kFingerWays * kFingerGroups;
  static constexpr int kFingerSlots = kFingerEntries + 1;  // + hop slot
  static constexpr int kSlotsPerThread = kMichaelListSlots + kFingerSlots;

  // Fixed indices of the finger slots (the Michael-list slots are
  // [0, kMichaelListSlots)). Entry i lives at kFingerSlot + i; only the
  // entries of group 0 — the level-1 ways, [0, walk-count) as declared by
  // the publish — are paired with the chain walker (upper skip-list entries
  // never recover through backlinks, so they need no chain protection —
  // see scan_record).
  static constexpr int kFingerSlot = kMichaelListSlots;
  static constexpr int kFingerHopSlot = kMichaelListSlots + kFingerEntries;
  static_assert(kFingerHopSlot < kSlotsPerThread,
                "finger slots must fit the per-thread slot budget");

  // Type-erased backlink-chain walker a structure registers alongside its
  // published finger: given a node, return the next node of its backlink
  // chain (nullptr when the node is unmarked, i.e. the chain ends). scan()
  // uses it to protect the WHOLE chain a retained finger can recover
  // through, not just the finger itself.
  using ChainWalker = void* (*)(void*);

  HazardDomain();
  ~HazardDomain();
  HazardDomain(const HazardDomain&) = delete;
  HazardDomain& operator=(const HazardDomain&) = delete;

  static HazardDomain& global();

  // The calling thread's hazard slots in this domain (acquired on first
  // use, released at thread exit).
  class ThreadSlots {
   public:
    void set(int i, const void* p) noexcept {
      hp_[i].value.store(const_cast<void*>(p), std::memory_order_seq_cst);
    }
    void clear(int i) noexcept {
      hp_[i].value.store(nullptr, std::memory_order_release);
    }
    void clear_all() noexcept {
      for (auto& slot : hp_) slot.value.store(nullptr,
                                              std::memory_order_release);
    }

    // The audited publish-then-revalidate step (see the memory-ordering
    // audit at the top of this file): publish p into slot i, then confirm
    // via `reload` — which must re-read p's SOURCE and return the pointer
    // it would yield now, or nullptr if the source no longer yields p
    // (unlinked, marked, redirected...) — that p was still reachable AFTER
    // the publication became visible. On true, p is safe to dereference
    // until the slot is cleared or overwritten; on false the caller must
    // discard p and take its retry path.
    template <typename T, typename Reload>
    [[nodiscard]] bool protect(int i, T* p, Reload&& reload) noexcept {
      set(i, p);
      return reload() == p;
    }

   private:
    friend class HazardDomain;
    CacheAligned<std::atomic<void*>> hp_[kSlotsPerThread];

    // Retained-finger metadata, owner-written (publish_finger), scanner-read
    // under a seqlock: finger_seq_ is bumped to odd before and even after a
    // publish rewrites (slot, walker, tag) together, so a scanner never
    // pairs a pointer from one publish with the walker of another. A
    // scanner that observes a torn publish skips the chain walk for this
    // record — sound, because a republished slot's OLD chain is abandoned
    // (the owner only ever walks from its current finger) and the NEW
    // finger's chain cannot contain anything freeable yet (DESIGN.md §10).
    std::atomic<std::uint64_t> finger_seq_{0};
    std::atomic<ChainWalker> finger_walker_{nullptr};
    std::atomic<std::uint64_t> finger_tag_{0};
    // How many leading entries ([0, walk_n)) the walker applies to — the
    // owner's level-1 way count. Written under the same seqlock.
    std::atomic<int> finger_walk_n_{0};

    RetiredNode* retired_ = nullptr;
    std::uint64_t retired_count_ = 0;
    std::thread::id owner_id_{};  // registry-lock-protected; for adoption
    bool in_use_ = false;
  };

  ThreadSlots& slots();

  // Retire an unlinked node; freed by a later scan() once unprotected.
  template <typename Node>
  void retire(Node* node) {
    retire_erased(node, [](void* p) { delete static_cast<Node*>(p); });
  }

  // Deleter-based retirement (same contract as EpochDomain::retire_with):
  // `deleter(object)` runs once no hazard slot protects `object`. This is
  // the entry point HazardReclaimer's epoch→hazard handoff uses.
  void retire_with(void* object, void (*deleter)(void*)) {
    retire_erased(object, deleter);
  }

  // ---- Retained-finger slot protocol (HazardReclaimer / finger layer) ----

  // Publish `nodes[0..n)` as the calling thread's retained fingers: store
  // nodes[i] in slot kFingerSlot + i (entries beyond n are nulled) together
  // with the structure's chain walker — paired with entries [0, walk_n),
  // the owner's level-1 cache ways, the only entries whose backlink chains
  // the owner may recover through — and its never-reused instance tag, and
  // clear any leftover hop publication. Every non-null nodes[i] must be
  // provably alive at the call (found unreclaimed under a still-held epoch
  // pin, or continuously protected by the very slot it republishes into) —
  // the publish-while-alive invariant every scan-side argument rests on.
  void publish_finger(void* const* nodes, int n, ChainWalker walker,
                      std::uint64_t tag, int walk_n = 1);
  // Single-entry convenience (the unit tests' shape).
  void publish_finger(void* node, ChainWalker walker, std::uint64_t tag) {
    publish_finger(&node, 1, walker, tag, 1);
  }

  // Re-acquire a finger cached by an earlier operation: true iff the
  // calling thread's slot kFingerSlot + idx still holds exactly `node`
  // under `tag`, i.e. the publication was never evicted — continuous
  // protection — so the node is still dereferenceable. Never dereferences
  // `node`.
  bool reacquire_finger(const void* node, std::uint64_t tag, int idx = 0);

  // Null every record's retained-finger entries whose tag matches (a
  // structure being destroyed calls this BEFORE freeing its nodes). Runs
  // under the registry lock, mutually exclusive with scan()'s chain walks,
  // so after it returns no scanner can dereference the dying structure's
  // nodes.
  void invalidate_fingers(std::uint64_t tag);

  // Force a scan on the calling thread's retire list plus adopted orphans.
  // Frees every retired node not currently protected by any hazard slot or
  // reachable along a published finger's backlink chain.
  void scan();

  std::uint64_t retired_count() const noexcept {
    return retired_live_->load(std::memory_order_relaxed);
  }

  // Stalled-thread adoption (DESIGN.md §11): scavenge the record of a
  // thread the CALLER VOUCHES cannot run concurrently with this call
  // (parked with a happens-before edge, or verifiably dead). Its retained
  // finger entries, hop slot and finger metadata are cleared — if the
  // thread resumes, reacquire_finger fails closed without dereferencing —
  // and its retired list moves to the orphans for the next scan. The
  // Michael-list slots [0, kMichaelListSlots) are deliberately NOT cleared:
  // a victim parked mid-protect-walk may dereference them on resume, so a
  // dead thread retains at most kMichaelListSlots nodes (a bounded, not
  // growing, cost). Contract: a resumable victim must not be past a
  // successful reacquire_finger (it would dereference the de-protected
  // finger). Returns true if the thread owned a record here.
  bool adopt_stalled(std::thread::id tid);

 private:
  struct RetiredNode {
    void* object;
    void (*deleter)(void*);
    RetiredNode* next;
  };

  void retire_erased(void* object, void (*deleter)(void*));
  ThreadSlots* acquire_record();
  void release_record(ThreadSlots* rec);  // thread exit
  void scan_record(ThreadSlots& rec);
  std::uint64_t scan_threshold() const noexcept;

  CacheAligned<std::atomic<std::uint64_t>> retired_live_;

  std::mutex registry_mu_;
  std::vector<ThreadSlots*> records_;  // owned; includes released records
  RetiredNode* orphans_ = nullptr;
  std::uint64_t orphan_count_ = 0;

  const std::uint64_t domain_id_;
};

// ---------------------------------------------------------------------------
// HazardReclaimer — the reclamation policy that makes the finger layer total
// over hazard pointers (sync/finger.h reports kSupported = true for it).
//
// Pure per-pointer hazard protection cannot validate an FR traversal: the
// structures follow write-once backlinks and frozen (marked) successor
// fields, so the publish-then-reload-compare step proves nothing — the
// source re-reads the same value whether or not the target was freed. The
// Michael list restarts on every interference precisely to avoid this; the
// FR structures exist to never restart. So this policy is a LAYERED scheme:
//
//   * guard() is an epoch pin (EpochDomain): in-operation traversal safety
//     comes from the grace-period argument in reclaim/epoch.h, unchanged.
//   * The hazard slots add the one thing epochs cannot: CROSS-OPERATION
//     protection for the retained search finger, which survives arbitrary
//     epoch advances between operations (the strict-token epoch finger
//     policy goes stale as soon as the epoch moves).
//
// Retirement is two-stage: retire_with() parks the object in the epoch
// domain; after the grace period the deleter hands it to the hazard
// domain's retired list, where scan() frees it only once no slot (and no
// published finger chain) protects it. The epoch stage bridges publication
// and protection: anything a thread could have published as a finger while
// pinned only reaches the hazard stage after that pin ends, so every scan
// that could free it already sees the publication (proof: DESIGN.md §10).
//
// Note the two-stage path counts node_retired/node_freed once per stage in
// lf::stats (diagnostic counters; tests account for the doubling), and each
// retirement allocates one small heap Handoff record.
// ---------------------------------------------------------------------------
class HazardReclaimer {
 public:
  HazardReclaimer()
      : epoch_(&EpochDomain::global()), hazard_(&HazardDomain::global()) {}
  HazardReclaimer(EpochDomain& epoch, HazardDomain& hazard)
      : epoch_(&epoch), hazard_(&hazard) {}

  EpochDomain::Guard guard() { return epoch_->guard(); }

  template <typename Node>
  void retire(Node* node) {
    retire_with(node, [](void* p) { delete static_cast<Node*>(p); });
  }

  void retire_with(void* object, void (*deleter)(void*)) {
    epoch_->retire_with(new Handoff{hazard_, object, deleter},
                        &Handoff::pass);
  }

  // ---- Finger-layer hooks (called by the structures under
  // `if constexpr (FingerPolicy::kPublishes)`; see sync/finger.h) ----------

  // How many finger entries a structure may retain per thread, and their
  // group/way geometry: the skip list fingers min(kFingerGroups, its level
  // budget) levels with kFingerWays cache ways each; the list uses group 0
  // (kFingerWays level-1 ways).
  static constexpr int kFingerEntries = HazardDomain::kFingerEntries;
  static constexpr int kFingerGroups = HazardDomain::kFingerGroups;
  static constexpr int kFingerWays = HazardDomain::kFingerWays;

  void finger_publish(void* const* nodes, int n,
                      HazardDomain::ChainWalker walker, std::uint64_t tag,
                      int walk_n = 1) {
    hazard_->publish_finger(nodes, n, walker, tag, walk_n);
  }
  void finger_publish(void* node, HazardDomain::ChainWalker walker,
                      std::uint64_t tag) {
    hazard_->publish_finger(node, walker, tag);
  }
  bool finger_reacquire(const void* node, std::uint64_t tag, int idx = 0) {
    return hazard_->reacquire_finger(node, tag, idx);
  }
  // Publish one backlink hop of a recovery walk before dereferencing it.
  // No reload step: the hop target's liveness is guaranteed by the
  // chain-protecting scan as long as the finger slot is held (DESIGN.md
  // §10); the publication keeps the CURRENT walk position protected in its
  // own right as the walk moves past the finger.
  void finger_protect_hop(void* node) {
    hazard_->slots().set(HazardDomain::kFingerHopSlot, node);
  }
  void finger_invalidate(std::uint64_t tag) {
    hazard_->invalidate_fingers(tag);
  }

  EpochDomain& epoch_domain() noexcept { return *epoch_; }
  HazardDomain& hazard_domain() noexcept { return *hazard_; }

 private:
  // Epoch→hazard baton: after the grace period the epoch domain runs
  // pass(), which moves the payload into the hazard domain's retired list.
  struct Handoff {
    HazardDomain* dom;
    void* obj;
    void (*del)(void*);

    static void pass(void* p) {
      Handoff* h = static_cast<Handoff*>(p);
      h->dom->retire_with(h->obj, h->del);
      delete h;
    }
  };

  EpochDomain* epoch_;
  HazardDomain* hazard_;
};

}  // namespace lf::reclaim
