// Bounded backoff with capped decorrelated jitter.
//
// The paper's algorithms never need backoff for correctness (lock-freedom is
// unconditional), but retry storms on one hot C&S target waste cycles and
// coherence bandwidth, and loops behave pathologically under heavy
// oversubscription without yielding. Used on the FAILURE paths of the
// insert-C&S and flag-C&S retry loops in FRList/FRSkipList (never on a
// success path, so the uncontended cost is zero and no counted step is
// affected) and in head-restarting baselines.
//
// Why jitter and not pure doubling: with deterministic exponential backoff
// every loser of a C&S round computes the SAME next delay, so contenders
// that collided once keep re-colliding in lockstep — the chaos forced-CAS
// mode (arm_cas_failure_pattern) makes such retry trains reproducible.
// Decorrelated jitter ("sleep = min(cap, random_between(base, sleep*3))",
// the AWS variant) breaks the lockstep: each retry draws a fresh delay from
// a window that grows with contention but is sampled independently per
// thread. The draw comes from a per-instance splitmix64 stream seeded from
// the instance's own address and a thread-local counter — no clock and no
// global RNG, so a fixed schedule still replays identically.
#pragma once

#include <algorithm>
#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace lf::sync {

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

class Backoff {
 public:
  explicit Backoff(std::uint32_t max_spins = 1024) noexcept
      : max_spins_(max_spins < 1 ? 1 : max_spins), rng_(seed()) {}

  void pause() noexcept {
    for (std::uint32_t i = 0; i < current_; ++i) cpu_relax();
    if (current_ >= max_spins_) {
      // Past the spin budget: yield the core. Essential on machines with
      // fewer cores than threads (like this repo's single-core CI).
      std::this_thread::yield();
    }
    // Decorrelated jitter: next in [1, 3*current], clamped to the cap. The
    // window triples with sustained contention (same asymptote as doubling)
    // but successive losers land on independent delays.
    const std::uint64_t span = std::uint64_t{3} * current_;
    current_ = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(max_spins_, 1 + next_u64() % span));
  }

  void reset() noexcept { current_ = 1; }

  // Current spin window; exposed so tests can check the cap and growth.
  std::uint32_t spins() const noexcept { return current_; }

 private:
  // splitmix64: tiny, full-period, statistically fine for jitter.
  std::uint64_t next_u64() noexcept {
    std::uint64_t z = (rng_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  // Distinct per thread (TLS address) and per construction (counter), with
  // no dependence on time or hardware randomness.
  static std::uint64_t seed() noexcept {
    thread_local std::uint64_t ctor_count = 0;
    return (reinterpret_cast<std::uintptr_t>(&ctor_count) << 16) ^
           ++ctor_count;
  }

  std::uint32_t current_ = 1;
  std::uint32_t max_spins_;
  std::uint64_t rng_;
};

}  // namespace lf::sync
