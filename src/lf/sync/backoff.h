// Bounded exponential backoff.
//
// The paper's algorithms never need backoff for correctness (lock-freedom is
// unconditional), but retry storms on one hot C&S target waste cycles and
// coherence bandwidth, and loops behave pathologically under heavy
// oversubscription without yielding. Used on the FAILURE paths of the
// insert-C&S and flag-C&S retry loops in FRList/FRSkipList (never on a
// success path, so the uncontended cost is zero and no counted step is
// affected) and in head-restarting baselines.
#pragma once

#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace lf::sync {

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

class Backoff {
 public:
  explicit Backoff(std::uint32_t max_spins = 1024) noexcept
      : max_spins_(max_spins) {}

  void pause() noexcept {
    for (std::uint32_t i = 0; i < current_; ++i) cpu_relax();
    if (current_ < max_spins_) {
      current_ *= 2;
    } else {
      // Past the spin budget: yield the core. Essential on machines with
      // fewer cores than threads (like this repo's single-core CI).
      std::this_thread::yield();
    }
  }

  void reset() noexcept { current_ = 1; }

 private:
  std::uint32_t current_ = 1;
  std::uint32_t max_spins_;
};

}  // namespace lf::sync
