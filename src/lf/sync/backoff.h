// Bounded exponential backoff.
//
// The paper's algorithms never need backoff for correctness (lock-freedom is
// unconditional), but baselines that restart from the head (Harris, Michael)
// and spin-heavy benchmark loops behave pathologically under heavy
// oversubscription without it. Used only where a comment says so.
#pragma once

#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace lf::sync {

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

class Backoff {
 public:
  explicit Backoff(std::uint32_t max_spins = 1024) noexcept
      : max_spins_(max_spins) {}

  void pause() noexcept {
    for (std::uint32_t i = 0; i < current_; ++i) cpu_relax();
    if (current_ < max_spins_) {
      current_ *= 2;
    } else {
      // Past the spin budget: yield the core. Essential on machines with
      // fewer cores than threads (like this repo's single-core CI).
      std::this_thread::yield();
    }
  }

  void reset() noexcept { current_ = 1; }

 private:
  std::uint32_t current_ = 1;
  std::uint32_t max_spins_;
};

}  // namespace lf::sync
