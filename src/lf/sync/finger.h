// Finger (search-hint) layer: per-thread, per-structure memory of where
// recent searches ended, so the next search can start there instead of at
// the head.
//
// Since PR 5 the memory is a small set-associative cache rather than a
// single hint: each (thread, instance) slot holds kFingerCacheWays entries,
// keyed by the bracket of keys the cached position serves ([pred_key,
// succ_key]), with least-frequently-hit-with-aging replacement
// (finger_victim_pick below). A search probes for the way whose cached
// bracket contains the target key, validates ONLY that way with the
// reclaimer-specific protocol below, and falls back to the head on a miss.
// This is what serves skewed-but-scattered (zipf) hot sets: a single
// finger thrashes when the hot keys are popular but far apart, while k
// ways hold k disjoint hot brackets simultaneously — provided replacement
// is frequency-aware, since the zipf tail's miss flow laps any
// recency-only policy before the hot keys recur.
//
// The paper's machinery makes this safe almost for free: a stale hint is
// self-identifying (its mark bit is set), and a marked node carries a
// backlink to a node further LEFT, so a search that starts from a stale
// finger recovers exactly the way a failed C&S recovers — walk backlinks to
// the nearest unmarked node and resume. Starting a search at any unmarked
// node with key < k is precisely the restart the paper's Insert/TryFlag
// loops already perform after backlink recovery, so the finger adds no new
// proof obligations to the traversal itself (DESIGN.md §10).
//
// What IS new is the memory-reclamation obligation: the cached node pointer
// outlives the guard under which it was found, so before dereferencing it a
// later operation must prove the node (and its whole backlink chain) has
// not been freed in between. That proof is reclaimer-specific, which is why
// the layer is a policy keyed on the reclaimer:
//
//   LeakyReclaimer   nodes are never freed; every saved finger stays
//                    dereferenceable forever. Token is a constant.
//
//   EpochReclaimer   the token is the epoch the saving thread ADVERTISED
//                    while pinned. Any node the thread could reach during
//                    that pin was retired no earlier than that epoch e (the
//                    epoch argument in reclaim/epoch.h), so it is freed only
//                    once the global epoch reaches e + 2. A later pin that
//                    advertises the SAME epoch e (checked by comparing
//                    tokens) both proves the global never reached e + 2 and,
//                    by staying pinned at e, blocks the advance past e + 1
//                    for the whole new operation — the finger and every
//                    backlink reachable from it stay dereferenceable.
//                    Strictly-equal tokens are required: one epoch of slack
//                    would admit a node freed exactly at e + 2.
//
//   HazardReclaimer  the layered epoch + hazard-pointer policy
//                    (reclaim/hazard.h). The token is a constant — tokens
//                    cannot prove anything here, because the cached pointer
//                    outlives every pin. Instead the policy PUBLISHES
//                    (kPublishes below): at save time the structure stores
//                    the finger into the thread's retained hazard slot, and
//                    reuse re-acquires it by slot match (publish-then-
//                    revalidate): if the slot still holds exactly the cached
//                    pointer under the structure's instance tag, protection
//                    was continuous since a moment the node was provably
//                    alive, so it is still dereferenceable; any mismatch
//                    fails closed to a head start without dereferencing.
//                    (The structures retain one slot per cache way — the
//                    skip list one GROUP of kPublishedWays ways per
//                    fingered level, kPublishedEntries in total — each
//                    holding that way's pred's tower root.)
//                    A marked primary finger recovers through its backlink chain
//                    with each hop published into the hop slot, and the
//                    domain's scan protects the whole published chain
//                    (reclaim/hazard.cpp::scan_record, DESIGN.md §10).
//
//   anything else    — the primary template reports kSupported = false and
//                    the structures compile the finger code out entirely.
//
// The reference-counted variants (core/*_rc.h) do not use tokens; they
// validate by re-acquiring a count on the node and checking a per-node
// reuse stamp (see fr_list_rc.h::finger_try_hold).
//
// Storage: hints live in thread_local direct-mapped slot arrays, keyed by a
// monotonically increasing per-structure instance id. Ids are never reused,
// so a slot left over from a destroyed structure can never be mistaken for
// the current one (the id check fails without touching the stale pointer).
//
// The whole layer is statically removable: structures take a FingerOn /
// FingerOff policy tag (default on) and guard every finger touch with
// `if constexpr`, so the off configuration is zero-cost the same way
// LF_CHAOS off is.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "lf/reclaim/epoch.h"
#include "lf/reclaim/hazard.h"
#include "lf/reclaim/leaky.h"

namespace lf::sync {

// Structure-level on/off switch (template parameter of FRList/FRSkipList).
struct FingerOn {
  static constexpr bool kEnabled = true;
};
struct FingerOff {
  static constexpr bool kEnabled = false;
};

// Reclaimer-specific validity proof. token() is called while the calling
// thread holds the reclaimer's guard, both when saving a finger and when
// attempting to reuse one; a saved entry is dereferenceable iff its saved
// token equals the current one.
//
// kPublishes marks policies whose proof is NOT token-based but slot-based:
// the structure must additionally call the reclaimer's finger_publish /
// finger_reacquire / finger_protect_hop / finger_invalidate hooks (the
// token still participates so the shared save/validate plumbing stays
// uniform; publishing policies use a constant token that always matches and
// let the slot re-acquisition be the real proof).
template <typename Reclaimer>
struct FingerPolicy {
  static constexpr bool kSupported = false;
  static constexpr bool kPublishes = false;
  static constexpr int kPublishedEntries = 0;
  static constexpr int kPublishedGroups = 0;
  static constexpr int kPublishedWays = 0;
  static std::uint64_t token(Reclaimer&) noexcept { return 0; }
};

template <>
struct FingerPolicy<reclaim::LeakyReclaimer> {
  static constexpr bool kSupported = true;
  static constexpr bool kPublishes = false;
  static constexpr int kPublishedEntries = 0;
  static constexpr int kPublishedGroups = 0;
  static constexpr int kPublishedWays = 0;
  static std::uint64_t token(reclaim::LeakyReclaimer&) noexcept {
    return 1;  // nodes are immortal: every saved finger stays valid
  }
};

template <>
struct FingerPolicy<reclaim::EpochReclaimer> {
  static constexpr bool kSupported = true;
  static constexpr bool kPublishes = false;
  static constexpr int kPublishedEntries = 0;
  static constexpr int kPublishedGroups = 0;
  static constexpr int kPublishedWays = 0;
  static std::uint64_t token(reclaim::EpochReclaimer& r) {
    // +1 keeps 0 free as the "empty entry" value even if a domain ever
    // started at epoch 0 (the default domain starts at kBuckets).
    return r.pinned_epoch() + 1;
  }
};

template <>
struct FingerPolicy<reclaim::HazardReclaimer> {
  static constexpr bool kSupported = true;
  static constexpr bool kPublishes = true;
  // Retained slots available per thread, as kPublishedGroups groups of
  // kPublishedWays cache ways (entry index = group * ways + way): the list
  // publishes group 0 (its level-1 way set); the skip list fingers up to
  // kPublishedGroups levels, one group per level, each entry holding that
  // way's pred's tower ROOT (see core/fr_skiplist.h::kFingerLevels).
  static constexpr int kPublishedEntries = reclaim::HazardReclaimer::kFingerEntries;
  static constexpr int kPublishedGroups = reclaim::HazardReclaimer::kFingerGroups;
  static constexpr int kPublishedWays = reclaim::HazardReclaimer::kFingerWays;
  static std::uint64_t token(reclaim::HazardReclaimer&) noexcept {
    // Constant: the epoch pin expires between operations and per-pointer
    // validation proves nothing for a cross-operation pointer, so no token
    // can carry the proof. The retained-slot match in finger_reacquire is
    // the actual validity argument (see reclaim/hazard.h).
    return 1;
  }
};

// Monotonic id for finger-bearing structure instances. Never reused, so
// slot contents from a destroyed (or address-recycled) instance fail the id
// check instead of being dereferenced.
inline std::uint64_t next_finger_instance() noexcept {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

// Set associativity of the per-(thread, instance) finger cache: how many
// bracket-keyed entries each structure keeps per level. Matches the hazard
// domain's per-group way budget so a publishing policy can retain every way
// in its own slot (static_asserted at the use sites).
inline constexpr int kFingerCacheWays = 4;

// Replacement halves all frequency counters every kFingerAgePeriod
// replacements, so a way's retention tracks its RECENT hit rate and a
// once-hot way that went cold decays back to eviction candidacy.
inline constexpr unsigned kFingerAgePeriod = 32;

// Saturating bump of a way's frequency counter (called on every probe hit
// and in-place refresh).
inline void finger_freq_bump(std::uint8_t& freq) noexcept {
  if (freq != 0xff) ++freq;
}

// Victim selection over a way array: least-frequently-hit with aging
// (GCLOCK). Prefers an empty way (`is_empty(way)`); otherwise picks the
// way with the smallest `freq` counter, scanning from `hand` so ties
// rotate. New ways are inserted with freq == 0 — the next replacement
// evicts them unless they earn a hit first — which is what lets a skewed
// key stream keep its hot set resident: pure recency (plain clock) cannot,
// because under a zipf tail the hand circles faster than even the hottest
// key recurs, while here cold one-shot entries are recycled through a
// de-facto probation way and the accumulated counters of the hot ways are
// never disturbed by miss traffic.
template <typename Way, typename EmptyFn>
int finger_victim_pick(Way* ways, int n, unsigned& hand, unsigned& ticks,
                       EmptyFn&& is_empty) noexcept {
  for (int i = 0; i < n; ++i)
    if (is_empty(ways[i])) return i;
  if (++ticks >= kFingerAgePeriod) {
    ticks = 0;
    for (int i = 0; i < n; ++i) ways[i].freq >>= 1;
  }
  int victim = static_cast<int>(hand) % n;
  for (int off = 1; off < n; ++off) {
    const int i = (static_cast<int>(hand) + off) % n;
    if (ways[i].freq < ways[victim].freq) victim = i;
  }
  hand = static_cast<unsigned>((victim + 1) % n);
  return victim;
}

// Direct-mapped thread-local slot array for a structure's Slot type. Each
// distinct Slot type (one per structure template instantiation) gets its
// own array; instances hash into it by id. A collision between two live
// instances merely evicts (the id check turns the stale entry into a miss).
// (Distinct from kFingerCacheWays: this is how many INSTANCES of a
// structure type share a thread's storage, not the per-instance cache
// associativity.)
inline constexpr std::size_t kFingerTlsSlots = 8;

template <typename Slot>
Slot& tls_finger_slot(std::uint64_t instance) noexcept {
  thread_local Slot slots[kFingerTlsSlots] = {};
  return slots[instance & (kFingerTlsSlots - 1)];
}

}  // namespace lf::sync
