// The successor field: (right pointer, mark bit, flag bit) in one CAS-able
// word.
//
// Section 3.2: "The successor field ... is composed of three parts: a right
// pointer, a mark bit, and a flag bit. So, for each node n,
// n.succ = (n.right, n.mark, n.flag)."  The paper's footnote observes that a
// word that stores a pointer has unused low bits; nodes are allocated with
// alignment >= 4 so bits 0 (mark) and 1 (flag) are free.
//
//   mark = 1  -> the node is logically deleted; its successor field is
//                frozen forever (no C&S modifies a marked field).
//   flag = 1  -> deletion of the *next* node is underway; the field is
//                frozen until the flag is removed.
//
// INV 5 ("no node can be both marked and flagged at the same time") is
// enforced structurally: pack() rejects mark && flag.
//
// Every C&S performed through this codec is tallied in the step counters,
// which is what lets the benchmarks report costs in the paper's model.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>

#include "lf/instrument/counters.h"

namespace lf::sync {

// A decoded successor value. Node is the list's node type; the codec is
// templated so each data structure gets type-safe views.
template <typename Node>
struct SuccView {
  Node* right = nullptr;
  bool mark = false;
  bool flag = false;

  friend bool operator==(const SuccView&, const SuccView&) = default;
};

template <typename Node>
class SuccField {
 public:
  using View = SuccView<Node>;

  static constexpr std::uintptr_t kMarkBit = 1;
  static constexpr std::uintptr_t kFlagBit = 2;
  static constexpr std::uintptr_t kPtrMask = ~(kMarkBit | kFlagBit);

  SuccField() noexcept : word_(0) {}
  explicit SuccField(View v) noexcept : word_(pack(v)) {}

  // Plain store: only valid before the node is published (e.g. newNode.succ
  // in Insert line 10) or single-threaded teardown.
  void store_unsynchronized(View v) noexcept {
    word_.store(pack(v), std::memory_order_relaxed);
  }

  // Loads are seq_cst, not acquire: the paper's proofs assume a
  // sequentially consistent memory, and the epoch-reclamation grace
  // argument leans on it — a formally-stale acquire load could hand a
  // traversal a pointer whose target was retired before the reader ever
  // pinned. On x86 a seq_cst load is an ordinary MOV, so this costs
  // nothing where it matters.
  View load() const noexcept {
    return unpack(word_.load(std::memory_order_seq_cst));
  }

  Node* right() const noexcept { return load().right; }
  bool marked() const noexcept {
    return (word_.load(std::memory_order_seq_cst) & kMarkBit) != 0;
  }
  bool flagged() const noexcept {
    return (word_.load(std::memory_order_seq_cst) & kFlagBit) != 0;
  }

  // The paper's C&S(address, old, new): one attempt, returning the value the
  // field held at the linearization point of the primitive (so callers can
  // branch on the failure reason exactly like the pseudocode does).
  // Counts one cas_attempt and, when it succeeds, one cas_success.
  View cas(View expected, View desired) noexcept {
    auto& c = stats::tls();
    c.cas_attempt.inc();
    std::uintptr_t exp = pack(expected);
    const std::uintptr_t des = pack(desired);
    if (word_.compare_exchange_strong(exp, des, std::memory_order_seq_cst,
                                      std::memory_order_seq_cst)) {
      c.cas_success.inc();
      return expected;
    }
    return unpack(exp);
  }

  static std::uintptr_t pack(View v) noexcept {
    const auto bits = reinterpret_cast<std::uintptr_t>(v.right);
    assert((bits & ~kPtrMask) == 0 && "node under-aligned for tag bits");
    assert(!(v.mark && v.flag) && "INV5: marked and flagged simultaneously");
    return bits | (v.mark ? kMarkBit : 0) | (v.flag ? kFlagBit : 0);
  }

  static View unpack(std::uintptr_t w) noexcept {
    return View{reinterpret_cast<Node*>(w & kPtrMask), (w & kMarkBit) != 0,
                (w & kFlagBit) != 0};
  }

 private:
  std::atomic<std::uintptr_t> word_;
  static_assert(std::atomic<std::uintptr_t>::is_always_lock_free,
                "single-word C&S must be a hardware primitive");
};

}  // namespace lf::sync
