// Chaos layer — deterministic fault injection for the lock-free structures.
//
// The paper's central guarantee is lock-freedom: a thread that stalls (or
// dies) between the steps of the flag/mark/unlink protocol must never block
// other operations, because any thread that runs into the half-done state
// helps it to completion. Random schedules on a real machine almost never
// produce those windows, so this subsystem makes them *injectable*: every
// CAS, helping routine, backlink hop and allocation in the hot paths is a
// named INJECTION SITE, and a process-wide controller can perturb, fail,
// or permanently park a thread at any of them.
//
// The layer is compile-time optional: configure with -DLF_CHAOS=ON to arm
// it. When OFF (the default), LF_CHAOS_POINT(...) expands to `((void)0)`
// and the CAS wrappers inline to the bare primitive, so production builds
// carry zero cost — bench_fault_recovery statically verifies the expansion.
//
// Fault modes (all seeded and reproducible):
//   1. SCHEDULING  PCT-style randomized priorities: every thread draws a
//      priority from the controller's seed; at seeded injection points the
//      low-priority threads yield or sleep, and priorities reshuffle at
//      change points — biasing the schedule toward the preemption-in-the-
//      middle-of-a-multi-CAS-sequence windows plain ::yield fuzzing rarely
//      reaches.
//   2. CAS FORCING  make the first N (or k-out-of-every-m) attempts at a
//      named site fail without touching memory. A forced failure returns a
//      value that matches none of the caller's success/flag patterns, so
//      the caller re-reads real state and takes its recovery path — retry,
//      helping, or backlink walk — deterministically.
//   3. CRASH-THREAD  park a victim thread forever at a chosen site,
//      mid-operation. The empirical lock-freedom test: survivors must
//      still finish their workloads and the structure must stay coherent.
//      "Forever" ends at release_parked() so the test can later let the
//      victim resume, finish its operation, and verify exact counts.
//   4. ALLOCATION FAILURE  make the Nth pooled allocation (or segment
//      carve) throw std::bad_alloc, so the insert error paths run: no
//      partially-linked node, no leaked block, structure intact.
//
// Thread identity: tests tag threads (set_thread_tag) and assign roles
// (set_thread_role) so crash injection can target the designated victim
// while the checking thread traverses freely.
#pragma once

#include <cstdint>

#if LF_CHAOS
#include <chrono>
#include <vector>
#endif

namespace lf::chaos {

// Every injection site threaded through the codebase. One enumerator per
// *kind* of step, not per code line: the crash matrix iterates these.
enum class Site : int {
  // FRList (core/fr_list.h)
  kListSearchStep = 0,  // search_from: advance to the next node
  kListInsertCas,       // insert_loop / insert_try_once: insertion C&S
  kListFlagCas,         // try_flag: flagging C&S (deletion step 1)
  kListMarkCas,         // try_mark: marking C&S (deletion step 2)
  kListUnlinkCas,       // help_marked: physical-deletion C&S (step 3)
  kListBacklinkStep,    // one hop along a backlink chain
  kListHelpFlagged,     // help_flagged entry
  kListHelpMarked,      // help_marked entry
  kListFingerValidate,  // finger_start: cached hint qualified, about to be
                        // recovered/used (thread holds a validated finger)
  kListFingerFallback,  // finger_start: no usable hint, search starts at head
  kListFingerPublish,   // save_finger: about to publish the way set
  kListFingerReplace,   // save_finger: LFU-aging replacement picking a
                        // victim way (no in-place refresh matched)
  // FRSkipList (core/fr_skiplist.h)
  kSkipSearchStep,
  kSkipInsertCas,
  kSkipFlagCas,
  kSkipMarkCas,
  kSkipUnlinkCas,
  kSkipBacklinkStep,
  kSkipHelpFlagged,
  kSkipHelpMarked,
  kSkipTowerBuild,  // insert: before linking the next tower level
  kSkipFingerValidate,  // finger_start: cached descent entry qualified
  kSkipFingerFallback,  // finger_start: no usable entry, head descent
  kSkipFingerPublish,   // publish_fingers: about to publish the way sets
  kSkipFingerReplace,   // save_finger: LFU-aging replacement picking a
                        // victim way (no in-place refresh matched)
  // Baselines (harris_list.h / restart_skiplist.h) — E12 fault injection
  kBaseInsertCas,
  kBaseMarkCas,
  kBaseUnlinkCas,
  // Reclaimers
  kEpochPin,      // EpochDomain::Guard: outermost pin
  kEpochRetire,   // EpochDomain::retire_erased
  kEpochAdvance,  // EpochDomain::try_advance entry (before the lock)
  kEpochEject,    // EpochDomain: a stalled pin was neutralized (fires after
                  // the registry lock is released — parking here must not
                  // block the domain)
  kEpochEjectAck, // EpochDomain: ejected thread acknowledging at unpin /
                  // re-pin (entry, before the registry lock)
  kHazardRetire,  // HazardDomain::retire_erased
  kHazardScan,    // HazardDomain::scan_record entry
  kHazardFingerReacquire,  // HazardDomain::reacquire_finger entry (reuse of
                           // a retained finger, before the slot-match check)
  kHazardFingerHop,        // finger recovery walk: before publishing one
                           // backlink hop into the hop slot
  // Segment pool (mem/pool.*)
  kPoolAlloc,    // pool_allocate entry
  kPoolSegment,  // segment carve from the global allocator
  kPoolFree,     // pool_deallocate entry
  // Test harness: between dictionary operations (YieldInjector)
  kOpBoundary,

  kNumSites
};

inline constexpr int kSiteCount = static_cast<int>(Site::kNumSites);

// Stable human-readable site name (watchdog dumps, test matrices).
// Available in both build modes.
const char* site_name(Site s) noexcept;

// Crash-injection thread roles. kVictim threads are eligible for parking;
// everything else (checkers, survivors, the main thread) never parks.
enum class Role : int { kDefault = 0, kVictim, kSurvivor };

#if LF_CHAOS

inline constexpr bool kCompiledIn = true;

// ---- Controller ---------------------------------------------------------
// All armings are process-wide and one-shot per reset(). Tests arm, run,
// assert, reset. Nothing here is on any hot path unless armed.

// Disarm every mode, zero all chaos statistics, release a parked victim.
void reset();

// Mode 1: PCT-style schedule perturbation. At every injection point a
// seeded hash of (seed, sequence, site, thread) decides whether to perturb;
// perturbed low-priority threads sleep `delay_us`, high-priority threads
// yield. Priorities reshuffle every `reshuffle_period` global points.
void enable_scheduling(std::uint64_t seed, unsigned yield_permille,
                       unsigned delay_us = 0,
                       std::uint64_t reshuffle_period = 1024);
void disable_scheduling();

// Mode 2: CAS-outcome forcing. first_n: the next `first_n` attempts at
// `site` fail; pattern: of every `per` attempts at `site`, the first
// `fail` are forced to fail (per-operation failure trains for E12).
void arm_cas_failures(Site site, std::uint64_t first_n);
void arm_cas_failure_pattern(Site site, std::uint32_t fail,
                             std::uint32_t per);

// Mode 3: crash-thread. The victim-role thread making the `nth_hit`-th
// victim-role visit (1-based) to `site` parks until release_parked().
void arm_crash(Site site, std::uint64_t nth_hit);
bool parked() noexcept;            // is a victim currently parked?
int parked_tag() noexcept;         // its set_thread_tag value; -1 if none
bool wait_parked(std::chrono::milliseconds timeout);
void release_parked();

// Mode 4: allocation failure. The nth_request-th pooled allocation request
// (1-based, counted from arming) throws std::bad_alloc; nth_segment counts
// only segment carves from the global allocator.
void arm_alloc_failure(std::uint64_t nth_request);
void arm_segment_failure(std::uint64_t nth_segment);

// ---- Per-thread identity (thread_local) ---------------------------------
void set_thread_role(Role role) noexcept;
void set_thread_tag(int tag) noexcept;

// ---- Statistics ---------------------------------------------------------
std::uint64_t site_hits(Site site) noexcept;
std::uint64_t forced_cas_failures(Site site) noexcept;
std::uint64_t alloc_failures_injected() noexcept;

// Per-thread progress snapshot for the watchdog's stall dump.
struct ThreadReport {
  int tag = -1;
  Role role = Role::kDefault;
  bool parked = false;
  Site last_site = Site::kNumSites;   // kNumSites = no point hit yet
  std::uint64_t points = 0;           // total injection points visited
  std::uint64_t same_site_streak = 0; // consecutive visits to last_site
  std::uint64_t backlink_steps = 0;   // backlink hops (recovery depth)
};
std::vector<ThreadReport> thread_reports();

// ---- Hot-path hooks (called from the instrumented sites) ----------------
void point(Site site);               // count + schedule + maybe park
bool force_cas_fail(Site site);      // consume one forced failure?
bool should_fail_alloc(bool segment);  // pool: throw bad_alloc here?

#else  // !LF_CHAOS

inline constexpr bool kCompiledIn = false;

#endif  // LF_CHAOS

// ---- Yield injection for schedule-fuzz tests (both build modes) ---------
//
// Supersedes the ad-hoc rng yields tests used to sprinkle between
// operations. With chaos OFF it reproduces them: a seeded, deterministic
// yield decision per operation boundary. With chaos ON each boundary is
// also a kOpBoundary injection point, so the PCT scheduler, crash arming
// and hit counting all see operation boundaries too.
class YieldInjector {
 public:
  explicit YieldInjector(std::uint64_t seed) noexcept;

  // Call between operations. Yields on ~1/3 of boundaries (seeded).
  void op_boundary();

 private:
  std::uint64_t state_;
};

}  // namespace lf::chaos

// Bare injection point. Compiles to nothing when chaos is off; the
// stringized expansion is what bench_fault_recovery statically checks.
#if LF_CHAOS
#define LF_CHAOS_POINT(site) ::lf::chaos::point(::lf::chaos::Site::site)
#else
#define LF_CHAOS_POINT(site) ((void)0)
#endif
