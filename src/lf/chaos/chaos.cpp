#include "lf/chaos/chaos.h"

#include <thread>

#if LF_CHAOS
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#endif

namespace lf::chaos {

namespace {

// SplitMix64: the seeded decision hash for scheduling and yields. Cheap,
// stateless, and the same on every platform, so a (seed, inputs) pair maps
// to the same perturbation decision everywhere.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

constexpr const char* kSiteNames[kSiteCount] = {
    "list/search_step",  "list/insert_cas",  "list/flag_cas",
    "list/mark_cas",     "list/unlink_cas",  "list/backlink_step",
    "list/help_flagged", "list/help_marked", "list/finger_validate",
    "list/finger_fallback", "list/finger_publish", "list/finger_replace",
    "skip/search_step",
    "skip/insert_cas",   "skip/flag_cas",    "skip/mark_cas",
    "skip/unlink_cas",   "skip/backlink_step", "skip/help_flagged",
    "skip/help_marked",  "skip/tower_build", "skip/finger_validate",
    "skip/finger_fallback", "skip/finger_publish", "skip/finger_replace",
    "base/insert_cas",
    "base/mark_cas",     "base/unlink_cas",  "epoch/pin",
    "epoch/retire",      "epoch/advance",    "epoch/eject",
    "epoch/eject_ack",   "hazard/retire",
    "hazard/scan",       "hazard/finger_reacquire", "hazard/finger_hop",
    "pool/alloc",        "pool/segment",
    "pool/free",         "test/op_boundary",
};

}  // namespace

const char* site_name(Site s) noexcept {
  const int i = static_cast<int>(s);
  return (i >= 0 && i < kSiteCount) ? kSiteNames[i] : "<invalid-site>";
}

#if LF_CHAOS

namespace {

// Per-thread chaos state: identity plus the progress fields the watchdog
// dumps on a stall. Registered in an immortal registry (like the step
// counters) so any thread can snapshot every other thread's progress.
struct ThreadState {
  std::atomic<int> tag{-1};
  std::atomic<int> role{static_cast<int>(Role::kDefault)};
  std::atomic<bool> parked{false};
  std::atomic<int> last_site{kSiteCount};
  std::atomic<std::uint64_t> points{0};
  std::atomic<std::uint64_t> same_site_streak{0};
  std::atomic<std::uint64_t> backlink_steps{0};
  // Scheduling-mode priority, redrawn lazily at each reshuffle epoch.
  std::uint64_t prio_epoch = ~0ULL;
  std::uint32_t priority = 0;
  std::uint64_t thread_salt = 0;
};

// Decrement-if-positive on an atomic counter; returns true when this call
// consumed a unit (took the counter from k to k-1 with k >= 1).
bool take_one(std::atomic<std::uint64_t>& c) noexcept {
  std::uint64_t v = c.load(std::memory_order_relaxed);
  while (v > 0) {
    if (c.compare_exchange_weak(v, v - 1, std::memory_order_acq_rel))
      return true;
  }
  return false;
}

struct Controller {
  // -- statistics --
  std::atomic<std::uint64_t> hits[kSiteCount] = {};
  std::atomic<std::uint64_t> forced[kSiteCount] = {};
  std::atomic<std::uint64_t> alloc_failures{0};

  // -- mode 2: CAS forcing --
  std::atomic<std::uint64_t> cas_first_n[kSiteCount] = {};
  std::atomic<std::uint32_t> cas_pat_fail[kSiteCount] = {};
  std::atomic<std::uint32_t> cas_pat_per[kSiteCount] = {};
  std::atomic<std::uint64_t> cas_pat_idx[kSiteCount] = {};

  // -- mode 3: crash --
  std::atomic<int> crash_site{-1};
  std::atomic<std::uint64_t> crash_countdown{0};
  std::mutex park_mu;
  std::condition_variable park_cv;
  bool park_release = false;   // guarded by park_mu
  bool victim_parked = false;  // guarded by park_mu
  int victim_tag = -1;         // guarded by park_mu

  // -- mode 1: scheduling --
  std::atomic<bool> sched_on{false};
  std::atomic<std::uint64_t> sched_seed{0};
  std::atomic<unsigned> yield_permille{0};
  std::atomic<unsigned> delay_us{0};
  std::atomic<std::uint64_t> reshuffle_period{0};
  std::atomic<std::uint64_t> sched_seq{0};
  std::atomic<std::uint64_t> prio_epoch{0};

  // -- mode 4: allocation failure --
  std::atomic<std::uint64_t> alloc_fail_countdown{0};
  std::atomic<std::uint64_t> seg_fail_countdown{0};

  // -- thread registry --
  std::mutex registry_mu;
  std::vector<std::unique_ptr<ThreadState>> threads;
  std::atomic<std::uint64_t> next_thread_salt{1};
};

// Immortal, like every process-wide registry here: parked threads may
// still be waiting on park_cv during late static teardown.
Controller& ctl() {
  static Controller* c = new Controller;
  return *c;
}

ThreadState& tls() {
  thread_local ThreadState* ts = [] {
    auto owned = std::make_unique<ThreadState>();
    ThreadState* p = owned.get();
    Controller& c = ctl();
    p->thread_salt = c.next_thread_salt.fetch_add(1);
    std::lock_guard lock(c.registry_mu);
    c.threads.push_back(std::move(owned));
    return p;
  }();
  return *ts;
}

// Park the calling thread until release_parked() (or reset()).
void park(ThreadState& t) {
  Controller& c = ctl();
  std::unique_lock lock(c.park_mu);
  t.parked.store(true, std::memory_order_release);
  c.victim_parked = true;
  c.victim_tag = t.tag.load(std::memory_order_relaxed);
  c.park_cv.notify_all();
  c.park_cv.wait(lock, [&] { return c.park_release; });
  c.victim_parked = false;
  t.parked.store(false, std::memory_order_release);
  c.park_cv.notify_all();
}

void maybe_perturb_schedule(Controller& c, ThreadState& t, Site s) {
  const std::uint64_t seq =
      c.sched_seq.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t period =
      c.reshuffle_period.load(std::memory_order_relaxed);
  if (period != 0 && seq % period == 0) {
    c.prio_epoch.fetch_add(1, std::memory_order_relaxed);  // change point
  }
  const std::uint64_t epoch = c.prio_epoch.load(std::memory_order_relaxed);
  const std::uint64_t seed = c.sched_seed.load(std::memory_order_relaxed);
  if (t.prio_epoch != epoch) {
    t.prio_epoch = epoch;
    t.priority = static_cast<std::uint32_t>(
        mix64(seed ^ (t.thread_salt * 0x2545f4914f6cdd1dULL) ^ epoch) & 255);
  }
  const std::uint64_t h = mix64(
      seed ^ (seq << 8) ^ (static_cast<std::uint64_t>(s) << 56) ^
      t.thread_salt);
  if (h % 1000 >= c.yield_permille.load(std::memory_order_relaxed)) return;
  const unsigned delay = c.delay_us.load(std::memory_order_relaxed);
  if (t.priority < 128 && delay != 0) {
    // Low-priority thread at a perturbation point: hold it long enough for
    // the others to run through the window it left half-done.
    std::this_thread::sleep_for(std::chrono::microseconds(delay));
  } else {
    std::this_thread::yield();
  }
}

}  // namespace

void reset() {
  Controller& c = ctl();
  release_parked();
  c.crash_site.store(-1, std::memory_order_relaxed);
  c.crash_countdown.store(0, std::memory_order_relaxed);
  c.sched_on.store(false, std::memory_order_relaxed);
  c.alloc_fail_countdown.store(0, std::memory_order_relaxed);
  c.seg_fail_countdown.store(0, std::memory_order_relaxed);
  c.alloc_failures.store(0, std::memory_order_relaxed);
  for (int i = 0; i < kSiteCount; ++i) {
    c.hits[i].store(0, std::memory_order_relaxed);
    c.forced[i].store(0, std::memory_order_relaxed);
    c.cas_first_n[i].store(0, std::memory_order_relaxed);
    c.cas_pat_fail[i].store(0, std::memory_order_relaxed);
    c.cas_pat_per[i].store(0, std::memory_order_relaxed);
    c.cas_pat_idx[i].store(0, std::memory_order_relaxed);
  }
  std::lock_guard lock(c.registry_mu);
  for (auto& t : c.threads) {
    t->last_site.store(kSiteCount, std::memory_order_relaxed);
    t->points.store(0, std::memory_order_relaxed);
    t->same_site_streak.store(0, std::memory_order_relaxed);
    t->backlink_steps.store(0, std::memory_order_relaxed);
  }
}

void enable_scheduling(std::uint64_t seed, unsigned yield_permille,
                       unsigned delay_us, std::uint64_t reshuffle_period) {
  Controller& c = ctl();
  c.sched_seed.store(seed, std::memory_order_relaxed);
  c.yield_permille.store(yield_permille > 1000 ? 1000 : yield_permille,
                         std::memory_order_relaxed);
  c.delay_us.store(delay_us, std::memory_order_relaxed);
  c.reshuffle_period.store(reshuffle_period, std::memory_order_relaxed);
  c.sched_on.store(true, std::memory_order_release);
}

void disable_scheduling() {
  ctl().sched_on.store(false, std::memory_order_release);
}

void arm_cas_failures(Site site, std::uint64_t first_n) {
  ctl().cas_first_n[static_cast<int>(site)].store(first_n,
                                                  std::memory_order_release);
}

void arm_cas_failure_pattern(Site site, std::uint32_t fail,
                             std::uint32_t per) {
  Controller& c = ctl();
  const int i = static_cast<int>(site);
  c.cas_pat_idx[i].store(0, std::memory_order_relaxed);
  c.cas_pat_fail[i].store(fail, std::memory_order_relaxed);
  c.cas_pat_per[i].store(per, std::memory_order_release);
}

void arm_crash(Site site, std::uint64_t nth_hit) {
  Controller& c = ctl();
  {
    std::lock_guard lock(c.park_mu);
    c.park_release = false;
    c.victim_tag = -1;
  }
  c.crash_countdown.store(nth_hit == 0 ? 1 : nth_hit,
                          std::memory_order_relaxed);
  c.crash_site.store(static_cast<int>(site), std::memory_order_release);
}

bool parked() noexcept {
  Controller& c = ctl();
  std::lock_guard lock(c.park_mu);
  return c.victim_parked;
}

int parked_tag() noexcept {
  Controller& c = ctl();
  std::lock_guard lock(c.park_mu);
  return c.victim_parked ? c.victim_tag : -1;
}

bool wait_parked(std::chrono::milliseconds timeout) {
  Controller& c = ctl();
  std::unique_lock lock(c.park_mu);
  return c.park_cv.wait_for(lock, timeout, [&] { return c.victim_parked; });
}

void release_parked() {
  Controller& c = ctl();
  std::unique_lock lock(c.park_mu);
  c.park_release = true;
  c.park_cv.notify_all();
  // Wait until the victim actually leaves the parking lot, so callers can
  // join it (or re-arm a crash) immediately afterwards.
  c.park_cv.wait(lock, [&] { return !c.victim_parked; });
}

void arm_alloc_failure(std::uint64_t nth_request) {
  ctl().alloc_fail_countdown.store(nth_request == 0 ? 1 : nth_request,
                                   std::memory_order_release);
}

void arm_segment_failure(std::uint64_t nth_segment) {
  ctl().seg_fail_countdown.store(nth_segment == 0 ? 1 : nth_segment,
                                 std::memory_order_release);
}

void set_thread_role(Role role) noexcept {
  tls().role.store(static_cast<int>(role), std::memory_order_relaxed);
}

void set_thread_tag(int tag) noexcept {
  tls().tag.store(tag, std::memory_order_relaxed);
}

std::uint64_t site_hits(Site site) noexcept {
  return ctl().hits[static_cast<int>(site)].load(std::memory_order_relaxed);
}

std::uint64_t forced_cas_failures(Site site) noexcept {
  return ctl().forced[static_cast<int>(site)].load(
      std::memory_order_relaxed);
}

std::uint64_t alloc_failures_injected() noexcept {
  return ctl().alloc_failures.load(std::memory_order_relaxed);
}

std::vector<ThreadReport> thread_reports() {
  Controller& c = ctl();
  std::lock_guard lock(c.registry_mu);
  std::vector<ThreadReport> out;
  out.reserve(c.threads.size());
  for (const auto& t : c.threads) {
    ThreadReport r;
    r.tag = t->tag.load(std::memory_order_relaxed);
    r.role = static_cast<Role>(t->role.load(std::memory_order_relaxed));
    r.parked = t->parked.load(std::memory_order_relaxed);
    r.last_site =
        static_cast<Site>(t->last_site.load(std::memory_order_relaxed));
    r.points = t->points.load(std::memory_order_relaxed);
    r.same_site_streak =
        t->same_site_streak.load(std::memory_order_relaxed);
    r.backlink_steps = t->backlink_steps.load(std::memory_order_relaxed);
    out.push_back(r);
  }
  return out;
}

void point(Site site) {
  Controller& c = ctl();
  const int i = static_cast<int>(site);
  c.hits[i].fetch_add(1, std::memory_order_relaxed);
  ThreadState& t = tls();
  t.points.fetch_add(1, std::memory_order_relaxed);
  if (t.last_site.load(std::memory_order_relaxed) == i) {
    t.same_site_streak.fetch_add(1, std::memory_order_relaxed);
  } else {
    t.last_site.store(i, std::memory_order_relaxed);
    t.same_site_streak.store(1, std::memory_order_relaxed);
  }
  if (site == Site::kListBacklinkStep || site == Site::kSkipBacklinkStep) {
    t.backlink_steps.fetch_add(1, std::memory_order_relaxed);
  }
  if (c.crash_site.load(std::memory_order_acquire) == i &&
      t.role.load(std::memory_order_relaxed) ==
          static_cast<int>(Role::kVictim) &&
      take_one(c.crash_countdown)) {
    park(t);
  }
  if (c.sched_on.load(std::memory_order_acquire)) {
    maybe_perturb_schedule(c, t, site);
  }
}

bool force_cas_fail(Site site) {
  Controller& c = ctl();
  const int i = static_cast<int>(site);
  if (take_one(c.cas_first_n[i])) {
    c.forced[i].fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  const std::uint32_t per = c.cas_pat_per[i].load(std::memory_order_acquire);
  if (per != 0) {
    const std::uint64_t idx =
        c.cas_pat_idx[i].fetch_add(1, std::memory_order_relaxed);
    if (idx % per < c.cas_pat_fail[i].load(std::memory_order_relaxed)) {
      c.forced[i].fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

bool should_fail_alloc(bool segment) {
  Controller& c = ctl();
  auto& countdown = segment ? c.seg_fail_countdown : c.alloc_fail_countdown;
  std::uint64_t v = countdown.load(std::memory_order_acquire);
  if (v == 0) return false;
  if (v == 1 && countdown.compare_exchange_strong(
                    v, 0, std::memory_order_acq_rel)) {
    c.alloc_failures.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  // Not this request yet: count down toward the armed one.
  take_one(countdown);
  return false;
}

#endif  // LF_CHAOS

YieldInjector::YieldInjector(std::uint64_t seed) noexcept
    : state_(seed ^ 0x6a09e667f3bcc909ULL) {}

void YieldInjector::op_boundary() {
#if LF_CHAOS
  point(Site::kOpBoundary);
#endif
  state_ = mix64(state_);
  if (state_ % 3 == 0) std::this_thread::yield();
}

}  // namespace lf::chaos
