// Progress watchdog for multi-threaded runs.
//
// A livelocked or deadlocked workload used to hang until the CI job's
// ceiling. The watchdog turns that into a fast, diagnosable failure: each
// worker bumps a per-thread heartbeat as it completes operations, a
// monitor thread samples the heartbeats, and any live (not done, not
// deliberately parked) thread whose heartbeat stops moving for the stall
// timeout triggers a dump of per-thread progress — and, when the chaos
// layer is compiled in, each thread's current injection site, visit
// streak, and backlink-walk depth — before aborting the run.
//
// The hot path is a single relaxed increment; the monitor owns all
// clock reads.
//
// Escalation ladder (DESIGN.md §11): detection alone only diagnoses; with
// the resilience hooks set, the watchdog escalates detect → structured
// StallReport (per-thread progress, chaos state, and the epoch domain's
// per-slot pinned-epoch/backlog/quarantine dump) → remediation trigger
// (default: EpochDomain::remediate_now(), which lets the stalled-pin
// detector neutralize a dead reader) — and only if the same thread is
// still stalled a full stall_timeout AFTER remediation does the fatal
// on_stall handler fire. With no hooks set, behavior is unchanged.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace lf::reclaim {
class EpochDomain;
}

namespace lf::harness {

class Watchdog {
 public:
  // Structured first-stall report handed to on_stall_report before any
  // remediation runs.
  struct StallReport {
    int thread = -1;                        // the stalled worker index
    std::chrono::milliseconds stalled_for{0};
    std::string details;  // progress table + chaos state + epoch stall dump
  };

  struct Options {
    std::chrono::milliseconds stall_timeout{120'000};
    std::chrono::milliseconds poll_interval{250};
    // Called with the dump when a stall is detected. The default writes
    // the dump to stderr and calls std::abort() so CI fails in minutes,
    // not hours. Tests install a handler instead of aborting.
    std::function<void(const std::string&)> on_stall;

    // ---- Escalation hooks (all optional; see the header comment) ----
    // First stall of a thread: receives the structured report.
    std::function<void(const StallReport&)> on_stall_report;
    // Remediation to run after the report. When unset but epoch_domain is
    // set, defaults to epoch_domain->remediate_now().
    std::function<void()> remediate;
    // Domain whose stall_report() is appended to StallReport::details and
    // whose remediate_now() is the default remediation.
    reclaim::EpochDomain* epoch_domain = nullptr;
  };

  Watchdog(int threads, Options opts);
  explicit Watchdog(int threads) : Watchdog(threads, Options{}) {}
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  // Hot path: thread `idx` made progress (completed an operation).
  void beat(int idx) noexcept {
    slots_[static_cast<std::size_t>(idx)].beats.fetch_add(
        1, std::memory_order_relaxed);
  }

  // Thread `idx` finished its workload; it is no longer monitored.
  void mark_done(int idx) noexcept {
    slots_[static_cast<std::size_t>(idx)].done.store(
        true, std::memory_order_release);
  }

  // Thread `idx` is parked on purpose (chaos crash injection); a stalled
  // victim is the experiment, not a failure.
  void mark_parked(int idx, bool parked = true) noexcept {
    slots_[static_cast<std::size_t>(idx)].parked.store(
        parked, std::memory_order_release);
  }

  // Stop monitoring (idempotent; the destructor calls it).
  void stop();

  bool stalled() const noexcept {
    return stalled_.load(std::memory_order_acquire);
  }

  // How many first-stall escalations (report + remediation) have fired.
  std::uint64_t escalations() const noexcept {
    return escalations_.load(std::memory_order_acquire);
  }

  // The per-thread progress table the stall handler receives; exposed for
  // tests and for callers that dump state on their own terms.
  std::string dump() const;

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> beats{0};
    std::atomic<bool> done{false};
    std::atomic<bool> parked{false};
  };

  void monitor_loop();

  std::unique_ptr<Slot[]> slots_;
  int threads_;
  Options opts_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> stalled_{false};
  std::atomic<std::uint64_t> escalations_{0};
  std::thread monitor_;
};

}  // namespace lf::harness
