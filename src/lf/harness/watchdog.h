// Progress watchdog for multi-threaded runs.
//
// A livelocked or deadlocked workload used to hang until the CI job's
// ceiling. The watchdog turns that into a fast, diagnosable failure: each
// worker bumps a per-thread heartbeat as it completes operations, a
// monitor thread samples the heartbeats, and any live (not done, not
// deliberately parked) thread whose heartbeat stops moving for the stall
// timeout triggers a dump of per-thread progress — and, when the chaos
// layer is compiled in, each thread's current injection site, visit
// streak, and backlink-walk depth — before aborting the run.
//
// The hot path is a single relaxed increment; the monitor owns all
// clock reads.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace lf::harness {

class Watchdog {
 public:
  struct Options {
    std::chrono::milliseconds stall_timeout{120'000};
    std::chrono::milliseconds poll_interval{250};
    // Called with the dump when a stall is detected. The default writes
    // the dump to stderr and calls std::abort() so CI fails in minutes,
    // not hours. Tests install a handler instead of aborting.
    std::function<void(const std::string&)> on_stall;
  };

  Watchdog(int threads, Options opts);
  explicit Watchdog(int threads) : Watchdog(threads, Options{}) {}
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  // Hot path: thread `idx` made progress (completed an operation).
  void beat(int idx) noexcept {
    slots_[static_cast<std::size_t>(idx)].beats.fetch_add(
        1, std::memory_order_relaxed);
  }

  // Thread `idx` finished its workload; it is no longer monitored.
  void mark_done(int idx) noexcept {
    slots_[static_cast<std::size_t>(idx)].done.store(
        true, std::memory_order_release);
  }

  // Thread `idx` is parked on purpose (chaos crash injection); a stalled
  // victim is the experiment, not a failure.
  void mark_parked(int idx, bool parked = true) noexcept {
    slots_[static_cast<std::size_t>(idx)].parked.store(
        parked, std::memory_order_release);
  }

  // Stop monitoring (idempotent; the destructor calls it).
  void stop();

  bool stalled() const noexcept {
    return stalled_.load(std::memory_order_acquire);
  }

  // The per-thread progress table the stall handler receives; exposed for
  // tests and for callers that dump state on their own terms.
  std::string dump() const;

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> beats{0};
    std::atomic<bool> done{false};
    std::atomic<bool> parked{false};
  };

  void monitor_loop();

  std::unique_ptr<Slot[]> slots_;
  int threads_;
  Options opts_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> stalled_{false};
  std::thread monitor_;
};

}  // namespace lf::harness
