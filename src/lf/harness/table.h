// Aligned ASCII table printer for the benchmark binaries.
//
// Every experiment prints its results as one or more of these tables so
// EXPERIMENTS.md can quote benchmark output verbatim.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lf::harness {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);

  // Convenience cell formatters.
  static std::string num(double v, int precision = 2);
  static std::string num(std::uint64_t v);
  static std::string ratio(double a, double b, int precision = 1);

  // Render with column alignment (first column left, rest right).
  std::string to_string() const;
  void print() const;  // to stdout, followed by a blank line

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Section header for bench output: "== title ==".
void print_section(const std::string& title);

}  // namespace lf::harness
