// Benchmark environment banner: records what the measurements ran on so
// EXPERIMENTS.md entries carry their context.
#pragma once

namespace lf::harness {

// Prints hardware-concurrency, build flags and the step-cost caveat for
// single-core machines. Call once at the top of every bench binary.
void print_environment(const char* experiment_id, const char* claim);

}  // namespace lf::harness
