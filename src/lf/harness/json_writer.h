// Minimal streaming JSON writer for machine-readable benchmark output
// (BENCH_*.json files next to the human-readable tables). Comma placement
// is handled by the writer; the caller is responsible for balanced
// begin/end calls, which the bench binaries keep trivially in sight.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace lf::harness {

class JsonWriter {
 public:
  JsonWriter& begin_object() {
    comma();
    out_ << '{';
    fresh_ = true;
    return *this;
  }
  JsonWriter& end_object() {
    out_ << '}';
    fresh_ = false;
    return *this;
  }
  JsonWriter& begin_array() {
    comma();
    out_ << '[';
    fresh_ = true;
    return *this;
  }
  JsonWriter& end_array() {
    out_ << ']';
    fresh_ = false;
    return *this;
  }
  JsonWriter& key(const std::string& k) {
    comma();
    quote(k);
    out_ << ':';
    fresh_ = true;  // the upcoming value needs no comma
    return *this;
  }
  JsonWriter& value(const std::string& v) {
    comma();
    quote(v);
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string(v)); }
  JsonWriter& value(double v) {
    comma();
    out_ << v;
    return *this;
  }
  JsonWriter& value(std::uint64_t v) {
    comma();
    out_ << v;
    return *this;
  }
  JsonWriter& value(int v) {
    comma();
    out_ << v;
    return *this;
  }
  JsonWriter& value(bool v) {
    comma();
    out_ << (v ? "true" : "false");
    return *this;
  }

  template <typename V>
  JsonWriter& field(const std::string& k, V v) {
    key(k);
    return value(v);
  }

  std::string str() const { return out_.str(); }

 private:
  void comma() {
    if (!fresh_) out_ << ',';
    fresh_ = false;
  }
  void quote(const std::string& s) {
    out_ << '"';
    for (char c : s) {
      switch (c) {
        case '"': out_ << "\\\""; break;
        case '\\': out_ << "\\\\"; break;
        case '\n': out_ << "\\n"; break;
        case '\t': out_ << "\\t"; break;
        default: out_ << c;
      }
    }
    out_ << '"';
  }

  std::ostringstream out_;
  bool fresh_ = true;
};

}  // namespace lf::harness
