#include "lf/harness/bench_env.h"

#include <iostream>
#include <thread>

namespace lf::harness {

void print_environment(const char* experiment_id, const char* claim) {
  std::cout << "##########################################################\n"
            << "# Experiment " << experiment_id << "\n"
            << "# Claim: " << claim << "\n"
            << "# hardware_concurrency: "
            << std::thread::hardware_concurrency() << "\n"
#ifdef NDEBUG
            << "# build: Release (NDEBUG)\n"
#else
            << "# build: Debug (asserts on; numbers not comparable)\n"
#endif
            << "# Cost metric: the paper's essential steps (Section 3.4) =\n"
            << "#   C&S attempts + backlink traversals + next/curr updates.\n"
            << "#   Step counts are schedule-driven and remain meaningful\n"
            << "#   on machines with few cores; wall-clock scalability\n"
            << "#   numbers are only meaningful with >= the thread count\n"
            << "#   in physical cores.\n"
            << "##########################################################"
            << std::endl;
}

}  // namespace lf::harness
