#include "lf/harness/table.h"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <sstream>

namespace lf::harness {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::num(std::uint64_t v) { return std::to_string(v); }

std::string Table::ratio(double a, double b, int precision) {
  if (b == 0) return "-";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*fx", precision, a / b);
  return buf;
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i)
    width[i] = headers_[i].size();
  for (const auto& row : rows_)
    for (std::size_t i = 0; i < row.size(); ++i)
      width[i] = std::max(width[i], row[i].size());

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << "  ";
      if (i == 0) {
        out << row[i] << std::string(width[i] - row[i].size(), ' ');
      } else {
        out << std::string(width[i] - row[i].size(), ' ') << row[i];
      }
    }
    out << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t w : width) total += w + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void Table::print() const { std::cout << to_string() << std::endl; }

void print_section(const std::string& title) {
  std::cout << "== " << title << " ==" << std::endl;
}

}  // namespace lf::harness
