#include "lf/harness/watchdog.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "lf/chaos/chaos.h"
#include "lf/reclaim/epoch.h"

namespace lf::harness {

Watchdog::Watchdog(int threads, Options opts)
    : slots_(new Slot[static_cast<std::size_t>(threads)]),
      threads_(threads),
      opts_(std::move(opts)) {
  if (!opts_.on_stall) {
    opts_.on_stall = [](const std::string& report) {
      std::fputs(report.c_str(), stderr);
      std::fflush(stderr);
      std::abort();
    };
  }
  monitor_ = std::thread([this] { monitor_loop(); });
}

Watchdog::~Watchdog() { stop(); }

void Watchdog::stop() {
  if (!stop_.exchange(true, std::memory_order_acq_rel)) {
    if (monitor_.joinable()) monitor_.join();
  } else if (monitor_.joinable()) {
    // A second caller racing the first: the exchange loser must not
    // return while the monitor might still run. join() from two threads
    // is UB, so only the exchange winner joins; everyone else spins
    // until it finishes. In practice stop() is called once.
    while (monitor_.joinable()) std::this_thread::yield();
  }
}

std::string Watchdog::dump() const {
  std::ostringstream out;
  out << "=== watchdog: per-thread progress ===\n";
  for (int t = 0; t < threads_; ++t) {
    const Slot& s = slots_[static_cast<std::size_t>(t)];
    out << "  thread " << t << ": beats="
        << s.beats.load(std::memory_order_relaxed)
        << (s.done.load(std::memory_order_acquire) ? " done" : "")
        << (s.parked.load(std::memory_order_acquire) ? " parked" : "")
        << "\n";
  }
#if LF_CHAOS
  out << "=== chaos: per-thread injection state ===\n";
  for (const chaos::ThreadReport& r : chaos::thread_reports()) {
    out << "  tag=" << r.tag << " role=" << static_cast<int>(r.role)
        << (r.parked ? " PARKED" : "") << " last_site="
        << chaos::site_name(r.last_site) << " streak=" << r.same_site_streak
        << " points=" << r.points << " backlink_steps=" << r.backlink_steps
        << "\n";
  }
#endif
  return out.str();
}

void Watchdog::monitor_loop() {
  using Clock = std::chrono::steady_clock;
  std::vector<std::uint64_t> last(static_cast<std::size_t>(threads_), 0);
  std::vector<Clock::time_point> moved(static_cast<std::size_t>(threads_),
                                       Clock::now());
  std::vector<bool> escalated(static_cast<std::size_t>(threads_), false);
  const bool can_escalate = static_cast<bool>(opts_.on_stall_report) ||
                            static_cast<bool>(opts_.remediate) ||
                            opts_.epoch_domain != nullptr;
  while (!stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(opts_.poll_interval);
    const auto now = Clock::now();
    for (int t = 0; t < threads_; ++t) {
      const auto i = static_cast<std::size_t>(t);
      const Slot& s = slots_[i];
      const std::uint64_t b = s.beats.load(std::memory_order_relaxed);
      if (b != last[i] || s.done.load(std::memory_order_acquire) ||
          s.parked.load(std::memory_order_acquire)) {
        last[i] = b;
        moved[i] = now;
        escalated[i] = false;  // progress forgives: the ladder restarts
        continue;
      }
      if (now - moved[i] < opts_.stall_timeout) continue;
      if (can_escalate && !escalated[i]) {
        // Rung 1 of the ladder: structured report, then remediation, then
        // a full fresh stall window for it to take effect. Only a thread
        // that stays frozen through that second window reaches on_stall.
        escalated[i] = true;
        StallReport report;
        report.thread = t;
        report.stalled_for =
            std::chrono::duration_cast<std::chrono::milliseconds>(now -
                                                                  moved[i]);
        std::ostringstream head;
        head << "watchdog: thread " << t << " made no progress for "
             << report.stalled_for.count() << " ms; escalating\n";
        report.details = head.str() + dump();
        if (opts_.epoch_domain != nullptr) {
          report.details += opts_.epoch_domain->stall_report();
        }
        escalations_.fetch_add(1, std::memory_order_acq_rel);
        if (opts_.on_stall_report) opts_.on_stall_report(report);
        if (opts_.remediate) {
          opts_.remediate();
        } else if (opts_.epoch_domain != nullptr) {
          opts_.epoch_domain->remediate_now();
        }
        moved[i] = now;
        continue;
      }
      stalled_.store(true, std::memory_order_release);
      std::ostringstream head;
      head << "watchdog: thread " << t << " made no progress for "
           << std::chrono::duration_cast<std::chrono::milliseconds>(
                  now - moved[i])
                  .count()
           << " ms" << (can_escalate ? " after remediation" : "") << "\n";
      std::string details = head.str() + dump();
      if (opts_.epoch_domain != nullptr) {
        details += opts_.epoch_domain->stall_report();
      }
      opts_.on_stall(details);
      return;  // one report per run; handler usually aborts anyway
    }
  }
}

}  // namespace lf::harness
