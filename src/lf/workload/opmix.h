// Operation-mix selection for benchmark workloads.
//
// A mix is (insert%, erase%, search% = remainder), the parameterization
// used throughout the experimental literature the paper builds on
// (Harris DISC'01, Michael SPAA'02, Fraser's thesis).
#pragma once

#include <cstdint>

#include "lf/util/random.h"

namespace lf::workload {

enum class Op { kInsert, kErase, kSearch };

struct OpMix {
  int insert_pct = 10;
  int erase_pct = 10;
  // search = 100 - insert - erase

  Op pick(Xoshiro256& rng) const noexcept {
    const auto roll = static_cast<int>(rng.below(100));
    if (roll < insert_pct) return Op::kInsert;
    if (roll < insert_pct + erase_pct) return Op::kErase;
    return Op::kSearch;
  }

  const char* name() const noexcept {
    // Conventional labels for the standard grids.
    if (insert_pct == 10 && erase_pct == 10) return "10i/10d/80s";
    if (insert_pct == 30 && erase_pct == 30) return "30i/30d/40s";
    if (insert_pct == 50 && erase_pct == 50) return "50i/50d/0s";
    if (insert_pct == 0 && erase_pct == 0) return "search-only";
    return "custom";
  }
};

}  // namespace lf::workload
