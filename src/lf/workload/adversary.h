// The Section 3.1 adversarial schedule, realized deterministically.
//
// The paper's lower-bound execution against Harris's list: "First insert n
// keys into the list. Then make one process P_q repeatedly delete the last
// node of the list, while the rest of the processes P_1..P_{q-1} attempt to
// insert new nodes at the end of the list. In each round of the execution,
// P_q marks a node right after processes P_1..P_{q-1} have located the
// correct insertion position, but before any of them perform a C&S."
//
// Under that schedule the total work is Ω(q·n²) for Harris (every failed
// C&S restarts from the head) but only O(q·(n + rounds)) for the FR list
// (every failed C&S recovers through one backlink). This driver realizes
// the schedule exactly, using the two-phase insertion hooks both lists
// expose (insert_locate / insert_try_once):
//
//   phase 0   inserters locate their insertion position at the end
//   round r   (a) the deleter erases the current last node;
//             (b) each inserter performs ONE C&S attempt — which fails,
//                 because its located predecessor just got marked — and
//                 recovers per its algorithm (backlink vs full restart).
//
// Phases are separated by std::barrier, so the interleaving is the paper's
// regardless of OS scheduling — this is what makes E1 reproducible on any
// machine, including single-core ones. Costs are reported in the paper's
// step units via stats deltas.
#pragma once

#include <barrier>
#include <cstdint>
#include <thread>
#include <vector>

#include "lf/instrument/counters.h"

namespace lf::workload {

struct AdversaryResult {
  std::uint64_t rounds = 0;
  int inserters = 0;
  std::uint64_t initial_size = 0;
  stats::Snapshot steps;          // delta across the whole schedule
  stats::Snapshot locate_steps;   // phase 0: inserters' initial searches
  stats::Snapshot deleter_steps;  // the deleter's own operations
  std::uint64_t deletions_done = 0;

  // The inserters' post-locate work: C&S attempts plus recovery traversal.
  // This is the quantity the paper's Section 3.1 argument is about —
  // Θ(n) per interference for Harris, O(1) for the FR list. The deleter's
  // Ω(n) searches and the one-time locate cost are identical under both
  // algorithms and are reported separately.
  stats::Snapshot recovery_steps() const {
    return steps - locate_steps - deleter_steps;
  }

  double recovery_steps_per_failed_cas() const {
    const std::uint64_t failures = steps.cas_failures();
    if (failures == 0) return 0;
    return static_cast<double>(recovery_steps().essential_steps()) /
           static_cast<double>(failures);
  }
};

// List must provide: insert(k, v), erase(k), insert_locate(k, v, cursor),
// insert_try_once(cursor) and the InsertCursor/TryResult types — i.e.
// FRList or HarrisList over integer keys.
template <typename List>
AdversaryResult run_adversarial_schedule(List& list, int inserters,
                                         std::uint64_t initial_size,
                                         std::uint64_t rounds) {
  using Key = typename List::key_type;

  // Build the initial list 1..n.
  for (std::uint64_t i = 1; i <= initial_size; ++i)
    list.insert(static_cast<Key>(i), static_cast<Key>(i));
  if (rounds >= initial_size) rounds = initial_size - 1;

  // Each phase boundary is a barrier arrival by every inserter + deleter.
  std::barrier phase(inserters + 1);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(inserters));
  const stats::Snapshot before = stats::aggregate();

  for (int t = 0; t < inserters; ++t) {
    threads.emplace_back([&, t] {
      typename List::InsertCursor cur;
      // Locate a key beyond the end of the list: predecessor = last node.
      const auto key = static_cast<Key>(initial_size + 1 +
                                        static_cast<std::uint64_t>(t));
      list.insert_locate(key, key, cur);
      phase.arrive_and_wait();  // end of phase 0
      for (std::uint64_t r = 0; r < rounds; ++r) {
        phase.arrive_and_wait();  // wait for the deleter's round-r deletion
        if (cur.node != nullptr) list.insert_try_once(cur);
        phase.arrive_and_wait();  // round r attempt finished
      }
      // The insertions never complete under this schedule (that is the
      // point); release the never-published nodes.
      delete cur.node;
      cur.node = nullptr;
    });
  }

  std::uint64_t deletions = 0;
  stats::Snapshot locate_steps;
  stats::Snapshot deleter_delta;
  {
    phase.arrive_and_wait();  // end of phase 0: all inserters located
    // Between this barrier and the first round barrier the inserters do no
    // counted work, so this snapshot isolates the locate phase exactly.
    locate_steps = stats::aggregate() - before;
    const stats::Snapshot deleter_before = stats::tls().read();
    for (std::uint64_t r = 0; r < rounds; ++r) {
      // Delete the current last original node, marking the predecessor the
      // inserters are about to C&S.
      const auto victim = static_cast<Key>(initial_size - r);
      if (list.erase(victim)) ++deletions;
      phase.arrive_and_wait();  // release the inserters' C&S attempts
      phase.arrive_and_wait();  // wait for all attempts/recoveries
    }
    // The deleter runs on this thread: its thread-local counter delta is
    // exactly the deleter-side cost, even though inserters ran meanwhile.
    deleter_delta = stats::tls().read() - deleter_before;
  }
  for (auto& th : threads) th.join();

  AdversaryResult out;
  out.rounds = rounds;
  out.inserters = inserters;
  out.initial_size = initial_size;
  out.steps = stats::aggregate() - before;
  out.locate_steps = locate_steps;
  out.deleter_steps = deleter_delta;
  out.deletions_done = deletions;
  return out;
}

}  // namespace lf::workload
