#include "lf/workload/adversary.h"

// The adversary driver is a header-only template (it must see the concrete
// list types); this translation unit anchors the header in the library.
namespace lf::workload {}
