// Multi-threaded workload driver.
//
// Runs a fixed number of operations per thread against any
// concurrent_map_like structure, with a barrier-aligned start, per-thread
// key/op generators, optional point-contention metering, and step-counter
// deltas captured around the measured region. Used by most benchmark
// binaries and by the concurrent integration tests.
#pragma once

#include <barrier>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "lf/core/set_traits.h"
#include "lf/harness/watchdog.h"
#include "lf/instrument/contention.h"
#include "lf/instrument/counters.h"
#include "lf/util/random.h"
#include "lf/util/timer.h"
#include "lf/workload/keygen.h"
#include "lf/workload/opmix.h"

namespace lf::workload {

struct RunConfig {
  int threads = 4;
  std::uint64_t ops_per_thread = 100'000;
  std::uint64_t key_space = 2048;
  OpMix mix{};
  KeyDist dist = KeyDist::kUniform;
  double zipf_theta = 0.99;
  KeyGen::Options keygen{};  // scramble / repeated-range parameters
  std::uint64_t seed = 42;
  std::uint64_t prefill = 1024;  // successful inserts before measurement
  bool measure_contention = true;
  // A worker that completes no operation for this long is declared stalled:
  // the watchdog dumps per-thread progress (and chaos injection state when
  // compiled in) and aborts instead of hanging CI. 0 disables the watchdog.
  std::uint64_t watchdog_timeout_ms = 120'000;
};

struct RunResult {
  double seconds = 0;
  std::uint64_t total_ops = 0;
  stats::Snapshot steps;      // delta over the measured region (all threads)
  double avg_contention = 0;  // sampled average of c(S); 0 if not measured

  double mops_per_sec() const {
    return seconds == 0 ? 0 : static_cast<double>(total_ops) / seconds / 1e6;
  }
  double steps_per_op() const {
    return total_ops == 0 ? 0
                          : static_cast<double>(steps.essential_steps()) /
                                static_cast<double>(total_ops);
  }
  double cas_per_op() const {
    return total_ops == 0 ? 0
                          : static_cast<double>(steps.cas_attempt) /
                                static_cast<double>(total_ops);
  }
};

// Issue one dictionary operation against the structure.
template <typename Set>
void apply(Set& set, Op op, typename Set::key_type k) {
  switch (op) {
    case Op::kInsert:
      set.insert(k, static_cast<typename Set::mapped_type>(k));
      break;
    case Op::kErase:
      set.erase(k);
      break;
    case Op::kSearch:
      set.contains(k);
      break;
  }
}

// Fill `set` with cfg.prefill distinct random keys drawn from the key
// space. Deterministic for a fixed seed.
template <typename Set>
void prefill(Set& set, const RunConfig& cfg) {
  Xoshiro256 rng(cfg.seed ^ 0xabcdef12345ULL);
  std::uint64_t inserted = 0;
  while (inserted < cfg.prefill) {
    const auto k =
        static_cast<typename Set::key_type>(rng.below(cfg.key_space));
    if (set.insert(k, static_cast<typename Set::mapped_type>(k))) ++inserted;
  }
}

// Run the configured mixed workload. The structure should already be
// prefilled; measurement covers exactly the worker threads' operation
// loops (workers are joined before counters are read, so the step delta is
// race-free).
template <typename Set>
  requires concurrent_map_like<Set>
RunResult run_workload(Set& set, const RunConfig& cfg) {
  using KeyT = typename Set::key_type;

  stats::ContentionMeter meter;
  std::barrier start_line(cfg.threads + 1);
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(cfg.threads));

  std::unique_ptr<harness::Watchdog> watchdog;
  if (cfg.watchdog_timeout_ms > 0) {
    harness::Watchdog::Options wopts;
    wopts.stall_timeout = std::chrono::milliseconds(cfg.watchdog_timeout_ms);
    watchdog =
        std::make_unique<harness::Watchdog>(cfg.threads, std::move(wopts));
  }

  const stats::Snapshot before = stats::aggregate();
  for (int t = 0; t < cfg.threads; ++t) {
    workers.emplace_back([&, t] {
      Xoshiro256 op_rng(cfg.seed * 31 + static_cast<std::uint64_t>(t) + 1);
      KeyGen keys(cfg.dist, cfg.key_space,
                  cfg.seed * 131 + static_cast<std::uint64_t>(t) + 7,
                  cfg.zipf_theta, cfg.keygen);
      start_line.arrive_and_wait();
      for (std::uint64_t i = 0; i < cfg.ops_per_thread; ++i) {
        const auto k = static_cast<KeyT>(keys.next());
        const Op op = cfg.mix.pick(op_rng);
        if (cfg.measure_contention) {
          stats::ContentionMeter::OperationScope scope(meter);
          apply(set, op, k);
        } else {
          apply(set, op, k);
        }
        if (watchdog) watchdog->beat(t);
      }
      if (watchdog) watchdog->mark_done(t);
    });
  }

  Stopwatch clock;
  start_line.arrive_and_wait();
  for (auto& w : workers) w.join();
  const double seconds = clock.elapsed_seconds();
  const stats::Snapshot after = stats::aggregate();

  RunResult out;
  out.seconds = seconds;
  out.total_ops =
      static_cast<std::uint64_t>(cfg.threads) * cfg.ops_per_thread;
  out.steps = after - before;
  out.avg_contention = cfg.measure_contention ? meter.average() : 0.0;
  return out;
}

}  // namespace lf::workload
