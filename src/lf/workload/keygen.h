// Key-stream generators for benchmark workloads.
//
// Uniform, Zipfian and repeated-range draws over a fixed key space, each
// thread owning an independently seeded generator so key generation adds no
// synchronization to the measured region.
//
// Two locality-sensitive details matter for the finger experiments (E13):
//
//   * ZipfGenerator ranks keys by popularity with the hottest keys FIRST:
//     raw draws put all the mass at the left edge of the key space, where a
//     head-started search is already nearly optimal. The `scramble` option
//     applies an odd-multiplier bijection so hot keys land at uncorrelated
//     positions — popularity skew without positional skew.
//
//   * kRepeatedRange models scan-like locality: draws stay inside a narrow
//     window of `range_width` consecutive keys for `range_dwell` operations
//     before the window jumps to a fresh random base.
#pragma once

#include <cstdint>
#include <memory>

#include "lf/util/random.h"

namespace lf::workload {

enum class KeyDist { kUniform, kZipfian, kRepeatedRange };

// Namespace-scope (not nested) so it can be a defaulted `= {}` constructor
// argument below: nested-class member initializers are only parsed once the
// enclosing class is complete.
struct KeyGenOptions {
  // Zipfian only: decorrelate popularity rank from key-space position.
  bool scramble = false;
  // kRepeatedRange only: window size and draws per window.
  std::uint64_t range_width = 64;
  std::uint64_t range_dwell = 256;
};

class KeyGen {
 public:
  using Options = KeyGenOptions;

  KeyGen(KeyDist dist, std::uint64_t key_space, std::uint64_t seed,
         double zipf_theta = 0.99, Options opts = {})
      : dist_(dist), key_space_(key_space), opts_(opts), rng_(seed) {
    if (dist_ == KeyDist::kZipfian)
      zipf_ = std::make_unique<ZipfGenerator>(key_space, zipf_theta, seed);
    mask_ = 1;
    while (mask_ < key_space_) mask_ <<= 1;
    --mask_;
    if (opts_.range_width == 0) opts_.range_width = 1;
    if (opts_.range_width > key_space_) opts_.range_width = key_space_;
    if (opts_.range_dwell == 0) opts_.range_dwell = 1;
  }

  std::uint64_t next() noexcept {
    switch (dist_) {
      case KeyDist::kZipfian: {
        const std::uint64_t z = (*zipf_)();
        return opts_.scramble ? scramble(z) : z;
      }
      case KeyDist::kRepeatedRange: {
        if (dwell_left_ == 0) {
          base_ = rng_.below(key_space_ - opts_.range_width + 1);
          dwell_left_ = opts_.range_dwell;
        }
        --dwell_left_;
        return base_ + rng_.below(opts_.range_width);
      }
      case KeyDist::kUniform:
        break;
    }
    return rng_.below(key_space_);
  }

  std::uint64_t key_space() const noexcept { return key_space_; }

  // Positional scrambler: a permutation of [0, key_space), so scrambled
  // Zipf keeps its EXACT popularity distribution — only the positions
  // move. Public so tests can assert the bijection directly.
  //
  // Construction (cycle walking): multiplication by a fixed odd constant
  // is a bijection P on [0, 2^b), where 2^b = mask_ + 1 is key_space
  // rounded up to a power of two. For k in [0, key_space), apply P
  // repeatedly until the value re-enters [0, key_space). Restricting a
  // permutation's cycle structure to a subset this way yields a
  // permutation OF that subset: distinct inputs stay on distinct cycles
  // (or distinct positions of one cycle), so they can never collide.
  //
  // Termination bound: the walk follows one cycle of P, and a cycle
  // returns to its in-range starting value k after at most its length
  // many steps — so the loop executes at most mask_ + 1 < 2 * key_space
  // iterations in the worst case. In expectation it is far cheaper: more
  // than half of [0, 2^b) lies in [0, key_space) (since
  // 2^(b-1) < key_space), so for a well-mixed P each step lands in range
  // with probability > 1/2 — under two iterations expected per draw.
  std::uint64_t scramble(std::uint64_t k) const noexcept {
    do {
      k = (k * 0x9E3779B97F4A7C15ULL) & mask_;
    } while (k >= key_space_);
    return k;
  }

 private:
  KeyDist dist_;
  std::uint64_t key_space_;
  Options opts_;
  std::uint64_t mask_ = 0;
  std::uint64_t base_ = 0;
  std::uint64_t dwell_left_ = 0;
  Xoshiro256 rng_;
  std::unique_ptr<ZipfGenerator> zipf_;
};

}  // namespace lf::workload
