// Key-stream generators for benchmark workloads.
//
// Uniform and Zipfian draws over a fixed key space, each thread owning an
// independently seeded generator so key generation adds no synchronization
// to the measured region.
#pragma once

#include <cstdint>
#include <memory>

#include "lf/util/random.h"

namespace lf::workload {

enum class KeyDist { kUniform, kZipfian };

class KeyGen {
 public:
  KeyGen(KeyDist dist, std::uint64_t key_space, std::uint64_t seed,
         double zipf_theta = 0.99)
      : dist_(dist), key_space_(key_space), rng_(seed) {
    if (dist_ == KeyDist::kZipfian)
      zipf_ = std::make_unique<ZipfGenerator>(key_space, zipf_theta, seed);
  }

  std::uint64_t next() noexcept {
    if (dist_ == KeyDist::kZipfian) return (*zipf_)();
    return rng_.below(key_space_);
  }

  std::uint64_t key_space() const noexcept { return key_space_; }

 private:
  KeyDist dist_;
  std::uint64_t key_space_;
  Xoshiro256 rng_;
  std::unique_ptr<ZipfGenerator> zipf_;
};

}  // namespace lf::workload
