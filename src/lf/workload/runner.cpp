#include "lf/workload/runner.h"

// The driver is a header-only template; this translation unit anchors the
// header in the library build so its includes stay self-contained.
namespace lf::workload {}
