// FRListRC — the paper's linked list under Valois-style reference counting.
//
// Section 5: "We have not explicitly incorporated a memory management
// technique, but a possible approach is to use Valois's reference counting
// method [10, 17], which is applicable to both our linked lists and our
// skip lists, because there are no cycles among the physically deleted
// nodes."  This class implements exactly that suggestion for the list: the
// same flag/mark/backlink algorithm as FRList, with node lifetime managed
// by per-node reference counts (Valois PODC'95, with the Michael & Scott
// TR-599 corrections) instead of epochs.
//
// Scheme:
//   * A node's count = (# succ/backlink fields storing a pointer to it)
//     + (# live thread-held references) + (in-flight SafeRead ghost pairs).
//   * SafeRead(field): read pointer, increment its count, re-validate the
//     field still holds it (otherwise undo and retry). Because nodes live
//     in a TYPE-STABLE arena (recycled through a free list, never returned
//     to the OS while the list lives), the increment may touch a recycled
//     node; the validation step rejects it and the undo re-balances.
//   * Link transitions adjust counts at their C&S:
//       - insert C&S (prev: next -> node): +1 node. (The new node->next
//         link inherits the count of the removed prev->next link.)
//       - physical-deletion C&S (prev: del -> next): +1 next, -1 del.
//       - backlink C&S (null -> prev): +1 prev; set-once, losers roll back.
//       - mark/flag C&S: pointer unchanged, no count traffic.
//   * Release to zero frees the node: its stored succ/backlink targets are
//     released (no cycles among deleted nodes, so this terminates) and the
//     node is recycled. An IN-FREELIST bit in the count word — set
//     atomically with the dying 1 -> 0 transition — keeps late SafeRead
//     ghost pairs on recycled nodes from double-freeing, and lets the
//     finger layer reject a dead hint without any field to re-validate.
//
// Trade-offs vs the epoch default (quantified in experiment E9): every
// traversal hop pays an RMW pair on shared counters, the known cost that
// made later literature prefer epochs/hazard pointers — but memory is
// bounded at all times (nodes are reusable the instant they are
// unreachable), with no grace periods and no per-thread registries.
//
// The free list itself is mutex-protected (Valois used IBM tag-versioned
// freelists, which need a double-width CAS); the lock sits only on the
// allocate/recycle path, never on the traversal/recovery paths this
// repository studies. Documented in DESIGN.md as part of the substitution.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <tuple>
#include <utility>
#include <vector>

#include "lf/chaos/chaos.h"
#include "lf/instrument/counters.h"
#include "lf/sync/finger.h"
#include "lf/sync/succ_field.h"

namespace lf {

// `Finger` (sync::FingerOn / sync::FingerOff) statically enables the
// thread-local search-hint layer. Unlike the epoch variant, validity is not
// proven with an epoch token: a saved finger is re-acquired by taking a
// count on the node and checking a per-node reuse stamp (finger_try_hold).
template <typename Key, typename T = Key, typename Compare = std::less<Key>,
          typename Finger = sync::FingerOn>
class FRListRC {
 public:
  using key_type = Key;
  using mapped_type = T;
  using key_compare = Compare;

  struct Node;

 private:
  using Succ = sync::SuccField<Node>;
  using View = sync::SuccView<Node>;

  // Count word layout: bit 63 = "node is in the free list"; low bits are
  // the reference count proper.
  static constexpr std::uint64_t kFreeBit = 1ULL << 63;
  static constexpr std::uint64_t kCountMask = kFreeBit - 1;

 public:
  struct alignas(8) Node {
    enum class Kind : unsigned char { kHead, kInterior, kTail };

    Kind kind = Kind::kInterior;
    Key key{};
    T value{};
    Succ succ;
    std::atomic<Node*> backlink{nullptr};
    std::atomic<std::uint64_t> refct{0};
    // Incarnation counter, bumped once per recycle() before the node can be
    // reallocated. A finger saved as (node, stamp) names one incarnation:
    // an equal stamp on a held node proves the node was never recycled in
    // between, so its key (and backlink chain) are still the saved ones.
    std::atomic<std::uint64_t> stamp{0};
    Node* arena_next = nullptr;  // allocation registry (destructor sweep)
    Node* free_next = nullptr;   // free-list link (guarded by free_mu_)
  };

  FRListRC() {
    head_ = allocate(Node::Kind::kHead, Key{}, T{});
    tail_ = allocate(Node::Kind::kTail, Key{}, T{});
    head_->succ.store_unsynchronized(View{tail_, false, false});
    tail_->refct.fetch_add(1, std::memory_order_relaxed);  // head's link
  }

  // Quiescent destruction: every node ever allocated is in the arena
  // registry; free them wholesale regardless of count state.
  ~FRListRC() {
    Node* n = arena_head_;
    while (n != nullptr) {
      Node* next = n->arena_next;
      delete n;
      n = next;
    }
  }

  FRListRC(const FRListRC&) = delete;
  FRListRC& operator=(const FRListRC&) = delete;

  // ---- dictionary operations (FRList algorithm + count discipline) -----

  bool insert(const Key& k, T value) {
    auto [prev, next] = search_from<true>(k, finger_entry<true>(k));
    save_finger(prev, next);
    if (node_eq(prev, k)) {
      release(prev);
      release(next);
      stats::tls().op_insert.inc();
      return false;
    }
    Node* node = allocate(Node::Kind::kInterior, k, std::move(value));
    bool inserted = false;
    for (;;) {
      const View prev_succ = prev->succ.load();
      if (prev_succ.flag) {
        help_flagged_at(prev);
      } else {
        node->succ.store_unsynchronized(View{next, false, false});
        const View result =
            prev->succ.cas(View{next, false, false}, View{node, false, false});
        if (result == View{next, false, false}) {
          stats::tls().insert_cas.inc();
          // New link prev->node; node->next inherits prev->next's count.
          node->refct.fetch_add(1, std::memory_order_acq_rel);
          inserted = true;
          break;
        }
        if (result.flag && !result.mark) help_flagged_at(prev);
        walk_backlinks(prev);
      }
      Node* start = prev;  // transfer
      release(next);
      std::tie(prev, next) = search_from<true>(k, start);
      if (node_eq(prev, k)) {
        // Abandon the private node: zero its (never-counted) stored succ
        // so the zero-path doesn't decrement its target, then drop the
        // creator reference — count 1 -> 0 recycles it.
        node->succ.store_unsynchronized(View{nullptr, false, false});
        release(node);
        break;
      }
    }
    release(prev);
    release(next);
    if (inserted) release(node);  // drop the creator reference
    stats::tls().op_insert.inc();
    return inserted;
  }

  bool erase(const Key& k) {
    auto [prev, del] = search_from<false>(k, finger_entry<false>(k));
    save_finger(prev, del);
    bool erased = false;
    if (node_eq(del, k)) {
      auto [flag_prev, result] = try_flag(prev, del);  // consumes prev
      prev = flag_prev;
      if (prev != nullptr) help_flagged(prev, del);
      erased = result;
    }
    if (prev != nullptr) release(prev);
    release(del);
    stats::tls().op_erase.inc();
    return erased;
  }

  std::optional<T> find(const Key& k) const {
    auto [curr, next] = search_from<true>(k, finger_entry<true>(k));
    save_finger(curr, next);
    std::optional<T> out;
    if (node_eq(curr, k)) out.emplace(curr->value);
    release(curr);
    release(next);
    stats::tls().op_search.inc();
    return out;
  }

  bool contains(const Key& k) const { return find(k).has_value(); }

  std::size_t size() const {
    std::size_t n = 0;
    Node* curr = acquire(head_);
    Node* next = safe_read_succ(curr);
    while (next->kind != Node::Kind::kTail) {
      if (!next->succ.load().mark) ++n;
      Node* after = safe_read_succ(next);
      release(curr);
      curr = next;
      next = after;
    }
    release(curr);
    release(next);
    return n;
  }

  // Visits (key, value) of every regular node in key order; weakly
  // consistent under concurrency.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    Node* curr = acquire(head_);
    Node* next = safe_read_succ(curr);
    while (next->kind != Node::Kind::kTail) {
      if (!next->succ.load().mark) fn(next->key, next->value);
      Node* after = safe_read_succ(next);
      release(curr);
      curr = next;
      next = after;
    }
    release(curr);
    release(next);
  }

  std::vector<Key> keys() const {
    std::vector<Key> out;
    for_each([&](const Key& k, const T&) { out.push_back(k); });
    return out;
  }

  // ---- diagnostics ------------------------------------------------------

  // Nodes currently waiting in the free list (recycled, reusable).
  std::size_t free_count() const {
    std::lock_guard lock(free_mu_);
    return free_count_;
  }

  // Total nodes ever allocated from the OS (arena size).
  std::size_t arena_count() const {
    std::lock_guard lock(free_mu_);
    return arena_count_;
  }

  // Quiescent-only invariant check: the count of every linked node equals
  // the number of fields referencing it (no thread refs at quiescence).
  bool validate_counts() const {
    // Expected counts: links from succ fields of list nodes + backlinks of
    // freed-but-unreachable nodes are gone at quiescence, so: each linked
    // node has exactly one predecessor link; tail also has head's initial
    // artificial link accounted via its +1.
    Node* p = head_;
    while (p->kind != Node::Kind::kTail) {
      Node* next = p->succ.load().right;
      const std::uint64_t expect = 1;  // the single incoming link
      const std::uint64_t have =
          next->refct.load(std::memory_order_acquire) & kCountMask;
      if (next->kind == Node::Kind::kTail) {
        if (have < 1) return false;  // head's artificial +1 at minimum
      } else if (have != expect) {
        return false;
      }
      p = next;
    }
    return true;
  }

 private:
  // ---- reference counting core ------------------------------------------

  // Take an extra thread reference on a node we already safely hold (or a
  // sentinel, which is never freed).
  Node* acquire(Node* p) const {
    p->refct.fetch_add(1, std::memory_order_acq_rel);
    return p;
  }

  // Valois SafeRead on a successor field: returns a counted reference to
  // the field's current target.
  Node* safe_read_succ(Node* source) const {
    for (;;) {
      Node* p = source->succ.load().right;
      p->refct.fetch_add(1, std::memory_order_acq_rel);
      if (source->succ.load().right == p) return p;
      release(p);  // field moved on: undo the ghost increment
    }
  }

  Node* safe_read_backlink(Node* source) const {
    for (;;) {
      Node* p = source->backlink.load(std::memory_order_acquire);
      if (p == nullptr) return nullptr;
      p->refct.fetch_add(1, std::memory_order_acq_rel);
      if (source->backlink.load(std::memory_order_acquire) == p) return p;
      release(p);
    }
  }

  // Drop one reference; the releaser that takes the count to zero frees
  // the node's outgoing links and recycles it. Iterative: chained frees
  // (e.g. a run of deleted nodes) are processed with an explicit stack.
  void release(Node* p) const {
    std::vector<Node*> pending{p};
    while (!pending.empty()) {
      Node* n = pending.back();
      pending.pop_back();
      if (n == nullptr) continue;
      // The decrement is a C&S loop (not fetch_sub) so the dying transition
      // of an interior node — count 1 -> 0 — sets the IN-FREELIST bit in
      // the SAME atomic step. A count word of zero-without-the-bit must
      // never be observable: a SafeRead ghost increment could revive it to
      // a plausible nonzero count, and finger_try_hold (which has no field
      // to re-validate against, unlike SafeRead) would mistake the dying
      // node for a live one.
      std::uint64_t old = n->refct.load(std::memory_order_relaxed);
      bool dying;
      for (;;) {
        assert((old & kCountMask) != 0 && "refcount underflow");
        dying = old == 1 && n->kind == Node::Kind::kInterior;
        const std::uint64_t desired = dying ? kFreeBit : old - 1;
        if (n->refct.compare_exchange_weak(old, desired,
                                           std::memory_order_acq_rel,
                                           std::memory_order_relaxed)) {
          break;
        }
      }
      if (!dying) continue;  // still referenced, sentinel, or in freelist
      // Count hit zero outside the free list: this releaser owns the node.
      pending.push_back(n->succ.load().right);
      pending.push_back(n->backlink.load(std::memory_order_acquire));
      recycle(n);
    }
  }

  // ---- finger (search hint) layer -----------------------------------------

  static constexpr bool kFingerActive = Finger::kEnabled;
  static constexpr int kWays = sync::kFingerCacheWays;

  // A set-associative way cache (sync/finger.h): each way remembers a
  // recent search result with the bracket of keys it serves. The keys are
  // CACHED COPIES so the probe is deref-free; they are trusted only after
  // a successful finger_try_hold with an equal stamp, which proves the
  // same incarnation (hence the same key) — see finger_entry.
  struct FingerSlot {
    struct Way {
      Node* node = nullptr;
      std::uint64_t stamp = 0;
      Key key{};               // bracket low end; meaningful unless is_head
      Key succ_key{};          // bracket high end; meaningful unless succ_tail
      bool is_head = false;
      bool succ_tail = false;
      std::uint8_t freq = 0;   // hit counter (aged by finger_victim_pick)
    };
    std::uint64_t instance = 0;
    Way way[kWays] = {};
    unsigned hand = 0;   // tie rotation for victim selection
    unsigned ticks = 0;  // replacements since the last aging pass
  };

  // Try to re-acquire a counted reference on a saved finger. Returns true
  // holding one new reference on `n`; false holding nothing.
  //
  // Soundness: the fetch_add is an RMW, so it observes the latest count
  // word. kFreeBit clear and count nonzero therefore prove the node is not
  // (and is not becoming) freelisted — the dying transition in release()
  // sets the bit atomically — and our increment now blocks any future dying
  // transition, so the node stays live while held. The stamp is read after
  // that RMW: if the node was recycled and re-allocated since the save, the
  // hold's RMW reads allocate()'s release-RMWs on the same word, which
  // happen after recycle()'s stamp bump, so the mismatch is visible and the
  // stale finger is rejected. An equal stamp proves zero recycles since the
  // save: same incarnation, same key, backlink chain intact.
  bool finger_try_hold(Node* n, std::uint64_t stamp) const {
    const std::uint64_t old = n->refct.fetch_add(1, std::memory_order_acq_rel);
    if ((old & kFreeBit) != 0 || (old & kCountMask) == 0) {
      // Freelisted: undo with a raw decrement — release() here could run a
      // second dying transition on a node another thread already owns.
      n->refct.fetch_sub(1, std::memory_order_acq_rel);
      return false;
    }
    if (n->stamp.load(std::memory_order_acquire) != stamp) {
      release(n);  // live node, but a later incarnation
      return false;
    }
    return true;
  }

  // Counted start node for a top-level search: a validated way from the
  // finger cache, or the head. The returned reference is consumed by
  // search_from.
  //
  // The probe is deref-free over the cached bracket keys (prefer the way
  // whose [key, succ_key] contains k — tightest first — then the way with
  // the largest key still left of k); only a winning candidate pays the
  // counted finger_try_hold. An equal stamp proves the same incarnation,
  // so the cached key IS the node's key and the probe's qualification
  // holds retroactively; any hold/stamp failure kills the way and the next
  // candidate is tried.
  template <bool Closed>
  Node* finger_entry(const Key& k) const {
    if constexpr (kFingerActive) {
      auto& c = stats::tls();
      auto& slot = sync::tls_finger_slot<FingerSlot>(finger_id_);
      if (slot.instance == finger_id_) {
        int bracket = -1, fallback = -1;
        for (int i = 0; i < kWays; ++i) {
          const auto& e = slot.way[i];
          if (e.node == nullptr) continue;
          if (!(e.is_head ||
                (Closed ? !comp_(k, e.key) : comp_(e.key, k))))
            continue;  // wrong side of k
          if (e.succ_tail || !comp_(e.succ_key, k)) {  // k <= succ_key
            if (bracket < 0 ||
                (!e.is_head && (slot.way[bracket].is_head ||
                                comp_(slot.way[bracket].key, e.key))))
              bracket = i;
          } else if (fallback < 0 ||
                     (!e.is_head &&
                      (slot.way[fallback].is_head ||
                       comp_(slot.way[fallback].key, e.key)))) {
            fallback = i;
          }
        }
        const int candidates[2] = {bracket, fallback};
        for (int ci = 0; ci < 2; ++ci) {
          const int i = candidates[ci];
          if (i < 0) continue;
          auto& e = slot.way[i];
          if (e.node == nullptr) continue;
          if (!finger_try_hold(e.node, e.stamp)) {
            e.node = nullptr;  // recycled since the save: dead way
            continue;
          }
          Node* start = e.node;
          LF_CHAOS_POINT(kListFingerValidate);
          walk_backlinks(start);  // marked finger: recover leftward
          if (!start->succ.load().mark) {
            sync::finger_freq_bump(e.freq);
            c.finger_hit.inc();
            return start;
          }
          release(start);
        }
      }
      LF_CHAOS_POINT(kListFingerFallback);
      c.finger_miss.inc();
    }
    return acquire(head_);
  }

  // Remember a node the caller currently holds (with its successor, for
  // the bracket) as a way of this thread's finger cache. Only raw
  // pointers, keys, and stamps are kept — no count survives the caller's
  // release — so quiescent count accounting is unaffected. A way already
  // caching the same node is refreshed in place; otherwise clock
  // replacement picks a victim.
  void save_finger(Node* n, Node* succ) const {
    if constexpr (kFingerActive) {
      auto& slot = sync::tls_finger_slot<FingerSlot>(finger_id_);
      if (slot.instance != finger_id_) {
        slot = FingerSlot{};  // claim: stale ways must never be probed
        slot.instance = finger_id_;
      }
      int w = -1;
      for (int i = 0; i < kWays; ++i)
        if (slot.way[i].node == n) { w = i; break; }
      const bool refresh = w >= 0;
      if (!refresh) {
        LF_CHAOS_POINT(kListFingerReplace);
        w = sync::finger_victim_pick(
            slot.way, kWays, slot.hand, slot.ticks,
            [](const typename FingerSlot::Way& e) {
              return e.node == nullptr;
            });
      }
      auto& e = slot.way[w];
      e.node = n;
      e.stamp = n->stamp.load(std::memory_order_acquire);
      e.is_head = n->kind == Node::Kind::kHead;
      if (!e.is_head) e.key = n->key;
      e.succ_tail = succ->kind == Node::Kind::kTail;
      if (!e.succ_tail) e.succ_key = succ->key;
      // New ways start at frequency zero (probation); refreshes bump, so
      // the hot set is retained against the cold-miss flow.
      if (refresh) sync::finger_freq_bump(e.freq);
      else e.freq = 0;
    }
  }

  // ---- arena / free list --------------------------------------------------

  Node* allocate(typename Node::Kind kind, Key k, T v) const {
    {
      std::lock_guard lock(free_mu_);
      if (free_head_ != nullptr) {
        Node* n = free_head_;
        free_head_ = n->free_next;
        --free_count_;
        // Creator reference; fetch_add (not store) so in-flight ghost
        // pairs on the recycled node stay balanced.
        n->refct.fetch_add(1, std::memory_order_acq_rel);
        n->refct.fetch_and(~kFreeBit, std::memory_order_acq_rel);
        n->kind = kind;
        n->key = std::move(k);
        n->value = std::move(v);
        n->succ.store_unsynchronized(View{nullptr, false, false});
        n->backlink.store(nullptr, std::memory_order_relaxed);
        n->free_next = nullptr;
        return n;
      }
    }
    Node* n = new Node;
    n->kind = kind;
    n->key = std::move(k);
    n->value = std::move(v);
    n->refct.store(1, std::memory_order_relaxed);  // creator reference
    std::lock_guard lock(free_mu_);
    n->arena_next = arena_head_;
    arena_head_ = n;
    ++arena_count_;
    return n;
  }

  void recycle(Node* n) const {
    stats::tls().node_retired.inc();
    stats::tls().node_freed.inc();  // immediately reusable: freed now
    // kFreeBit was set by the dying transition in release(). Bump the reuse
    // stamp before the node enters the free list (and so before allocate()
    // can hand it out): any finger saved on this incarnation can then never
    // validate again — finger_try_hold's refct RMW synchronizes with
    // allocate()'s, making this increment visible to its stamp check.
    n->stamp.fetch_add(1, std::memory_order_release);
    std::lock_guard lock(free_mu_);
    n->free_next = free_head_;
    free_head_ = n;
    ++free_count_;
  }

  // ---- ordering helpers ----------------------------------------------------

  bool node_lt(const Node* n, const Key& k) const {
    if (n->kind == Node::Kind::kHead) return true;
    if (n->kind == Node::Kind::kTail) return false;
    return comp_(n->key, k);
  }
  bool node_le(const Node* n, const Key& k) const {
    if (n->kind == Node::Kind::kHead) return true;
    if (n->kind == Node::Kind::kTail) return false;
    return !comp_(k, n->key);
  }
  bool node_eq(const Node* n, const Key& k) const {
    return n->kind == Node::Kind::kInterior && !comp_(n->key, k) &&
           !comp_(k, n->key);
  }

  // ---- FR algorithm with counted traversal --------------------------------

  // Consumes the reference on `curr`; returns counted references on both
  // results.
  template <bool Closed>
  std::pair<Node*, Node*> search_from(const Key& k, Node* curr) const {
    auto& c = stats::tls();
    auto advances = [&](const Node* n) {
      return Closed ? node_le(n, k) : node_lt(n, k);
    };
    Node* next = safe_read_succ(curr);
    while (advances(next)) {
      for (;;) {
        const View next_succ = next->succ.load();
        if (!next_succ.mark) break;
        const View curr_succ = curr->succ.load();
        if (curr_succ.mark && curr_succ.right == next) break;
        if (curr_succ.right == next) help_marked(curr, next);
        release(next);
        next = safe_read_succ(curr);
        c.next_update.inc();
      }
      if (advances(next)) {
        release(curr);
        curr = next;  // transfer the reference
        c.curr_update.inc();
        next = safe_read_succ(curr);
      }
    }
    return {curr, next};
  }

  // prev flagged, del = its successor (both counted by the caller).
  void help_marked(Node* prev, Node* del) const {
    stats::tls().help_marked.inc();
    Node* next = safe_read_succ(del);
    // Pre-count the would-be prev->next link; roll back on failure. The
    // pre-count means the link is never uncounted while live.
    next->refct.fetch_add(1, std::memory_order_acq_rel);
    const View result =
        prev->succ.cas(View{del, false, true}, View{next, false, false});
    if (result == View{del, false, true}) {
      stats::tls().pdelete_cas.inc();
      release(del);  // the prev->del link is gone
    } else {
      release(next);  // roll the pre-count back
    }
    release(next);  // traversal reference
  }

  void help_flagged(Node* prev, Node* del) const {
    stats::tls().help_flagged.inc();
    // Set-once backlink: pre-count prev, lose -> roll back.
    if (del->backlink.load(std::memory_order_acquire) == nullptr) {
      prev->refct.fetch_add(1, std::memory_order_acq_rel);
      Node* expected = nullptr;
      if (!del->backlink.compare_exchange_strong(
              expected, prev, std::memory_order_acq_rel)) {
        release(prev);  // another helper's identical value won
      }
    }
    if (!del->succ.load().mark) try_mark(del);
    help_marked(prev, del);
  }

  // Helper for "prev's successor field is flagged: help whatever deletion
  // that is" — re-reads the successor safely (a raw View.right from a
  // failed C&S is not a counted reference).
  void help_flagged_at(Node* prev) const {
    const View v = prev->succ.load();
    if (!v.flag) return;
    Node* del = safe_read_succ(prev);
    // The field may have changed between load and safe_read; only help if
    // the flag still stands for this successor.
    if (prev->succ.load() == View{del, false, true}) {
      help_flagged(prev, del);
    }
    release(del);
  }

  void try_mark(Node* del) const {
    do {
      Node* next = safe_read_succ(del);
      const View result =
          del->succ.cas(View{next, false, false}, View{next, true, false});
      if (result == View{next, false, false}) {
        stats::tls().mark_cas.inc();
      } else if (result.flag && !result.mark) {
        help_flagged_at(del);
      }
      release(next);
    } while (!del->succ.load().mark);
  }

  // Replace a counted reference to a marked node with one to the nearest
  // unmarked node along the backlink chain.
  void walk_backlinks(Node*& prev) const {
    auto& c = stats::tls();
    std::uint64_t chain = 0;
    while (prev->succ.load().mark) {
      Node* back = safe_read_backlink(prev);
      if (back == nullptr) break;  // not yet set: spin via re-check
      release(prev);
      prev = back;
      c.backlink_traversal.inc();
      ++chain;
    }
    if (chain > 0) stats::chain_hist_tls().record(chain);
  }

  // Consumes the reference on `prev`; returns a counted (prev, result) —
  // prev == nullptr means target was deleted.
  std::pair<Node*, bool> try_flag(Node* prev, Node* target) const {
    for (;;) {
      if (prev->succ.load() == View{target, false, true}) {
        return {prev, false};
      }
      const View result = prev->succ.cas(View{target, false, false},
                                         View{target, false, true});
      if (result == View{target, false, false}) {
        stats::tls().flag_cas.inc();
        return {prev, true};
      }
      if (result == View{target, false, true}) {
        return {prev, false};
      }
      walk_backlinks(prev);
      auto [new_prev, del] = search_from<false>(target->key, prev);
      if (del != target) {
        release(new_prev);
        release(del);
        return {nullptr, false};
      }
      release(del);
      prev = new_prev;
    }
  }

  Compare comp_;
  Node* head_;
  Node* tail_;
  const std::uint64_t finger_id_ = sync::next_finger_instance();

  mutable std::mutex free_mu_;
  mutable Node* free_head_ = nullptr;
  mutable Node* arena_head_ = nullptr;
  mutable std::size_t free_count_ = 0;
  mutable std::size_t arena_count_ = 0;
};

}  // namespace lf
