// FRSkipList — the lock-free skip list of Fomitchev & Ruppert, PODC 2004,
// Section 4: each level is an instance of the paper's linked-list algorithms
// (flag bit + mark bit + backlink per node), so every level enjoys the same
// recover-instead-of-restart behaviour as FRList.
//
// Architecture (paper Figure 6): each key is represented by a TOWER of
// nodes; the bottom node is the ROOT and represents the whole tower. Tower
// height is chosen by fair coin flips (geometric, capped). Nodes of one
// level form a sorted singly-linked list between the head tower and the
// tail. Every node has:
//
//     key, succ = (right, mark, flag), backlink   — as in FRList
//     down        one level lower in the same tower (null for roots)
//     tower_root  the tower's root node (== itself for roots)
//     value       meaningful in root nodes only
//
// Insertion builds the tower bottom-up and is linearized when the root node
// is inserted. Deletion deletes the root first — a tower whose root is
// marked is SUPERFLUOUS — and then removes the remaining nodes top-down.
// Searches help deletions by physically deleting every superfluous node
// they encounter; Section 4 explains that without this, an adversary can
// force operations to repeatedly traverse a chain of backlinks of length
// Ω(m_E) on the lowest level.
//
// Tower construction can be INTERRUPTED: while a process builds tower Q,
// another process may mark Q's root. The builder checks the root after
// every level it links; if the root got marked it stops, unlinking the node
// it just added (if any), and still reports success (its root made it in).
//
// Departures from the paper's presentation, all noted in DESIGN.md:
//   * The head tower is preallocated at full height (MaxLevel), so the
//     paper's `up` pointers for growing the head are unnecessary. A
//     top-level hint makes searches start just above the tallest live
//     tower, which is what the adaptive head bought.
//   * One shared tail sentinel serves every level (its succ is never
//     modified, so per-level tail nodes would be indistinguishable).
//   * The detailed pseudocode for the skip-list routines lives in
//     Fomitchev's thesis; these routines are reconstructed from the paper's
//     prose (every step of Section 4) plus the linked-list routines of
//     Figures 3-5 they are explicitly built from.
//
// Memory layout is a template policy (mem/tower.h). The default,
// mem::FlatTowers, allocates each tower as ONE contiguous 64-byte-aligned
// block from a per-thread pool: the root's hot fields (succ, key) sit in
// the block's first cache line, the down-descent stays inside the block,
// and an insert costs one allocation instead of one per level.
// mem::ChainedTowers reproduces the seed's per-level `new Node` placement
// for the ablation benches (bench_memory_layout). Retirement is unchanged
// either way: the whole tower is retired in one step when its last linked
// node is unlinked (see the Node comments), which is exactly what lets a
// flat block be freed as a unit.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <functional>
#include <map>
#include <new>
#include <optional>
#include <string>
#include <thread>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "lf/chaos/chaos.h"
#include "lf/instrument/counters.h"
#include "lf/mem/tower.h"
#include "lf/reclaim/epoch.h"
#include "lf/reclaim/reclaimer.h"
#include "lf/sync/backoff.h"
#include "lf/sync/finger.h"
#include "lf/sync/succ_field.h"
#include "lf/util/prefetch.h"
#include "lf/util/random.h"

namespace lf {

// The extra template parameters beyond the paper's algorithm:
//   Layout      memory layout policy (mem/tower.h), see below.
//   Finger      sync::FingerOn (default) caches each thread's last descent
//               (the lowest kFingerLevels (pred, succ) pairs) per structure
//               instance and enters the next search at the lowest cached
//               level whose window still brackets the key, when the
//               reclaimer policy can re-validate the cached nodes
//               (sync/finger.h, DESIGN.md §10). sync::FingerOff compiles
//               the layer out entirely.
template <typename Key, typename T = Key, typename Compare = std::less<Key>,
          typename Reclaimer = reclaim::EpochReclaimer, int MaxLevel = 24,
          typename Layout = mem::FlatTowers, typename Finger = sync::FingerOn>
class FRSkipList {
  static_assert(MaxLevel >= 2, "need at least two levels (erase cleanup)");

 public:
  using key_type = Key;
  using mapped_type = T;
  using key_compare = Compare;

  struct Node;

 private:
  using Succ = sync::SuccField<Node>;
  using View = sync::SuccView<Node>;

 public:
  // Towers occupy levels 1..kMaxTowerHeight; the head reaches one level
  // higher so the top level is always an empty express lane.
  static constexpr int kMaxTowerHeight = MaxLevel - 1;

  // Field order is cache-conscious: the members a search touches on every
  // hop (succ, key, tower_root, kind) are declared first so they pack into
  // the node's first cache line — which, under the flat layout, is also the
  // first line of the tower's block. Recovery (backlink) and root-only
  // bookkeeping follow. Both allocation policies hand out 64-byte-aligned
  // blocks in whole lines, so adjacent nodes never share a line (the
  // false-sharing padding the head tower needs comes from the allocator,
  // not from inflating every node with alignas(64)).
  struct alignas(8) Node {
    enum class Kind : unsigned char { kHead, kInterior, kTail };

    Succ succ;
    Key key;
    Node* tower_root;  // immutable; == this for root nodes
    Node* down;        // immutable after construction
    Kind kind;
    int level;           // 1-based; immutable
    int planned_height;  // roots: the coin-flip height (census/E6); else 0
    T value;  // meaningful in root nodes only
    std::atomic<Node*> backlink{nullptr};

    // Tower-retirement bookkeeping, meaningful on ROOT nodes only.
    //
    // Per-node retirement at unlink time would be unsound here: a node
    // unlinked at level v stays reachable through the `down` pointer of its
    // still-linked level v+1 sibling, so a reader pinned AFTER the unlink
    // could still dereference it. Instead the whole tower is retired in one
    // step when its last linked node is unlinked: any reader that can reach
    // any tower node (by list traversal, backlink, or down-descent) was
    // necessarily pinned before that single retire point, so one grace
    // period covers every node of the tower.
    //
    // tower_alive counts nodes that are linked or about to be linked (the
    // inserter increments before attempting to link, and pre-publishes
    // tower_top, so the count can only reach zero when no link attempt is
    // in flight and every linked node has been unlinked). The unlinker or
    // abandoner that drops it to zero walks tower_top -> down -> ... -> root
    // and retires each node.
    std::atomic<int> tower_alive{1};
    std::atomic<Node*> tower_top{nullptr};

    Node(Kind k, int lvl, Key key_arg, T value_arg, Node* down_arg,
         Node* root_arg)
        : key(std::move(key_arg)),
          tower_root(root_arg == nullptr ? this : root_arg),
          down(down_arg),
          kind(k),
          level(lvl),
          planned_height(0),
          value(std::move(value_arg)) {
      if (root_arg == nullptr) tower_top.store(this,
                                               std::memory_order_relaxed);
    }
  };

  FRSkipList() : FRSkipList(Compare{}, Reclaimer{}) {}
  explicit FRSkipList(Reclaimer reclaimer)
      : FRSkipList(Compare{}, std::move(reclaimer)) {}
  FRSkipList(Compare comp, Reclaimer reclaimer)
      : comp_(std::move(comp)), reclaimer_(std::move(reclaimer)) {
    // Sentinels go through the layout's allocator too: every head level
    // lands in its own cache line (the allocator hands out whole lines),
    // so concurrent traffic on adjacent head levels cannot false-share.
    tail_ = Layout::template make_sentinel<Node>(Node::Kind::kTail, 0, Key{},
                                                 T{}, nullptr, nullptr);
    Node* below = nullptr;
    for (int v = 1; v <= MaxLevel; ++v) {
      head_[v] = Layout::template make_sentinel<Node>(
          Node::Kind::kHead, v, Key{}, T{}, below, nullptr);
      head_[v]->succ.store_unsynchronized(View{tail_, false, false});
      below = head_[v];
    }
    top_hint_.store(1, std::memory_order_relaxed);
  }

  // Destruction requires quiescence. Under the flat layout each level-1
  // node is a tower root owning one block for its whole tower; under the
  // chained layout every linked node is freed individually per level.
  ~FRSkipList() {
    if constexpr (kFingerActive && FingerPol::kPublishes) {
      // Null every retained hazard slot still pointing into this instance
      // before freeing nodes directly, so no concurrent scan can chain-walk
      // into freed memory (see core/fr_list.h destructor).
      reclaimer_.finger_invalidate(finger_id_);
    }
    if constexpr (Layout::kFlat) {
      Node* n = head_[1]->succ.load().right;
      while (n->kind != Node::Kind::kTail) {
        Node* next = n->succ.load().right;
        Layout::template destroy_tower<Node>(n);
        n = next;
      }
    } else {
      for (int v = 1; v <= MaxLevel; ++v) {
        Node* n = head_[v]->succ.load().right;
        while (n->kind != Node::Kind::kTail) {
          Node* next = n->succ.load().right;
          Layout::template destroy_node<Node>(n);
          n = next;
        }
      }
    }
    for (int v = 1; v <= MaxLevel; ++v) Layout::free_sentinel(head_[v]);
    Layout::free_sentinel(tail_);
  }

  FRSkipList(const FRSkipList&) = delete;
  FRSkipList& operator=(const FRSkipList&) = delete;

  // ---- Dictionary operations (Insert_SL / Delete_SL / Search_SL) -------

  // insert_checked distinguishes "key already present" from "allocation
  // failed". A root allocation that throws is absorbed before anything is
  // linked; an upper-level allocation that throws truncates the tower but
  // the root IS in, so the insert still succeeded.
  enum class InsertStatus { kInserted, kDuplicate, kNoMemory };

  bool insert(const Key& k, T value) {
    return insert_impl(k, std::move(value),
                       tls_rng().tower_height(kMaxTowerHeight)) ==
           InsertStatus::kInserted;
  }

  InsertStatus insert_checked(const Key& k, T value) {
    return insert_impl(k, std::move(value),
                       tls_rng().tower_height(kMaxTowerHeight));
  }

  // Test hook: insert with a chosen tower height instead of coin flips, so
  // fault-injection tests can target a specific upper-level allocation.
  InsertStatus insert_with_height(const Key& k, T value, int tower_height) {
    assert(tower_height >= 1 && tower_height <= kMaxTowerHeight);
    return insert_impl(k, std::move(value), tower_height);
  }

  bool erase(const Key& k) {
    [[maybe_unused]] auto guard = reclaimer_.guard();
    // prev.key < k <= del.key on level 1.
    auto [prev, del] = search_to_level<false>(k, 1);
    bool erased = false;
    if (node_eq(del, k)) {
      erased = delete_node(prev, del);
      if (erased) {
        // Delete_SL: re-search down to level 2 to physically delete the
        // rest of the now-superfluous tower, top-down. The sweep must
        // ENTER at or above the tower's top — a finger entry below it
        // would leave the levels above the entry linked — so pass the
        // tower's height as the minimum finger entry level. tower_top is
        // pre-published before every level link, so it covers every node
        // a concurrent builder managed to link (any node linked after
        // this read is removed by the builder itself when it sees the
        // marked root).
        Node* top = del->tower_root->tower_top.load(std::memory_order_acquire);
        search_to_level<true>(k, 2, top != nullptr ? top->level : MaxLevel);
      }
    }
    stats::tls().op_erase.inc();
    return erased;
  }

  std::optional<T> find(const Key& k) const {
    [[maybe_unused]] auto guard = reclaimer_.guard();
    auto [curr, next] = search_to_level<true>(k, 1);
    (void)next;
    std::optional<T> out;
    if (node_eq(curr, k)) out.emplace(curr->value);
    stats::tls().op_search.inc();
    return out;
  }

  bool contains(const Key& k) const {
    [[maybe_unused]] auto guard = reclaimer_.guard();
    auto [curr, next] = search_to_level<true>(k, 1);
    (void)next;
    stats::tls().op_search.inc();
    return node_eq(curr, k);
  }

  // ---- Snapshot / diagnostics ------------------------------------------

  // Count of regular root nodes. O(n); approximate under concurrency.
  std::size_t size() const {
    [[maybe_unused]] auto guard = reclaimer_.guard();
    std::size_t n = 0;
    for (Node* p = head_[1]->succ.load().right; p->kind != Node::Kind::kTail;
         p = p->succ.load().right) {
      if (!p->succ.load().mark) ++n;
    }
    return n;
  }

  bool empty() const { return size() == 0; }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    [[maybe_unused]] auto guard = reclaimer_.guard();
    for (Node* p = head_[1]->succ.load().right; p->kind != Node::Kind::kTail;
         p = p->succ.load().right) {
      if (!p->succ.load().mark) fn(p->key, p->value);
    }
  }

  std::vector<Key> keys() const {
    std::vector<Key> out;
    for_each([&](const Key& k, const T&) { out.push_back(k); });
    return out;
  }

  // Visits every regular entry with lo <= key < hi, in key order. The
  // skip list finds the range start in O(log n) expected and then walks
  // level 1 — the range-scan pattern LSM memtables and index scans use.
  // Weakly consistent under concurrency like all iteration here.
  template <typename Fn>
  void for_each_range(const Key& lo, const Key& hi, Fn&& fn) const {
    [[maybe_unused]] auto guard = reclaimer_.guard();
    auto [prev, curr] = search_to_level<false>(lo, 1);  // prev.key < lo
    (void)prev;
    for (Node* p = curr; p->kind != Node::Kind::kTail;
         p = p->succ.load().right) {
      if (!node_lt(p, hi)) break;  // p.key >= hi
      if (!p->succ.load().mark) fn(p->key, p->value);
    }
  }

  // Number of regular keys in [lo, hi). O(log n + range length) expected.
  std::size_t count_range(const Key& lo, const Key& hi) const {
    std::size_t n = 0;
    for_each_range(lo, hi, [&](const Key&, const T&) { ++n; });
    return n;
  }

  // The smallest regular key and its value, or nullopt when empty. O(1+d)
  // where d is the number of logically deleted nodes at the front — the
  // accessor priority queues need (see lf/extras/priority_queue.h).
  std::optional<std::pair<Key, T>> first() const {
    [[maybe_unused]] auto guard = reclaimer_.guard();
    for (Node* p = head_[1]->succ.load().right; p->kind != Node::Kind::kTail;
         p = p->succ.load().right) {
      if (!p->succ.load().mark) return std::make_pair(p->key, p->value);
    }
    return std::nullopt;
  }

  int top_level_hint() const noexcept {
    return top_hint_.load(std::memory_order_relaxed);
  }

  // Human-readable name of the memory-layout policy (bench labels).
  static constexpr const char* layout_name() noexcept { return Layout::kName; }

  // ---- Invariant validation & census (tests / E6; quiescent only) ------

  struct ValidationReport {
    bool ok = true;
    std::size_t node_count = 0;  // across all levels
    std::string error;
  };

  ValidationReport validate() const {
    ValidationReport rep;
    std::size_t roots = 0;
    for (int v = 1; v <= MaxLevel; ++v) {
      const Node* prev = head_[v];
      const Node* curr = prev->succ.load().right;
      if (prev->succ.load().mark || prev->succ.load().flag)
        return fail(rep, "head marked or flagged");
      while (curr->kind != Node::Kind::kTail) {
        const View cv = curr->succ.load();
        if (cv.mark) return fail(rep, "linked node marked at quiescence");
        if (cv.flag) return fail(rep, "linked node flagged at quiescence");
        if (prev->kind == Node::Kind::kInterior &&
            !comp_(prev->key, curr->key))
          return fail(rep, "INV1 violated: keys not strictly sorted");
        if (curr->level != v) return fail(rep, "node on wrong level");
        if (v == 1) {
          ++roots;
          if (curr->tower_root != curr || curr->down != nullptr)
            return fail(rep, "root node vertical structure broken");
        } else {
          if (curr->down == nullptr || curr->down->level != v - 1)
            return fail(rep, "down pointer broken");
          if (!keys_equal(curr->down->key, curr->key))
            return fail(rep, "tower keys differ across levels");
          if (curr->tower_root->succ.load().mark)
            return fail(rep, "superfluous node linked at quiescence");
        }
        ++rep.node_count;
        prev = curr;
        curr = cv.right;
        if (curr == nullptr) return fail(rep, "level does not reach tail");
      }
    }
    // Every upper node's tower_root must itself be linked at level 1; since
    // all linked roots are unmarked here, tower_root unmarked was checked.
    (void)roots;
    return rep;
  }

  // Tower census for experiment E6: for every linked tower, its observed
  // height and its planned (coin-flip) height. Quiescent only.
  struct TowerCensus {
    std::map<int, std::size_t> height_counts;   // observed height -> towers
    std::size_t full = 0;        // observed == planned
    std::size_t incomplete = 0;  // observed < planned (interrupted builds)
    std::size_t towers = 0;
  };

  TowerCensus census() const {
    TowerCensus out;
    std::unordered_map<const Node*, int> height;
    for (int v = 1; v <= MaxLevel; ++v) {
      for (const Node* p = head_[v]->succ.load().right;
           p->kind != Node::Kind::kTail; p = p->succ.load().right) {
        auto [it, fresh] = height.emplace(p->tower_root, v);
        if (!fresh && v > it->second) it->second = v;
      }
    }
    for (const auto& [root, h] : height) {
      ++out.height_counts[h];
      ++out.towers;
      if (h >= root->planned_height) {
        ++out.full;
      } else {
        ++out.incomplete;
      }
    }
    return out;
  }

  Node* head(int level) const { return head_[level]; }
  Node* tail() const noexcept { return tail_; }

 private:
  enum class InsertResult { kInserted, kDuplicate };

  // Insert_SL with an explicit tower height (public insert draws it from
  // the coin-flip rng; tests may pin it).
  InsertStatus insert_impl(const Key& k, T value, const int tower_height) {
    [[maybe_unused]] auto guard = reclaimer_.guard();
    auto [prev, next] = search_to_level<true>(k, 1);
    if (node_eq(prev, k)) {
      stats::tls().op_insert.inc();
      return InsertStatus::kDuplicate;  // DUPLICATE_KEY
    }
    Node* root = nullptr;
    try {
      root = Layout::template make_root<Node>(tower_height,
                                              Node::Kind::kInterior, 1, k,
                                              std::move(value), nullptr,
                                              nullptr);
    } catch (const std::bad_alloc&) {
      stats::tls().op_insert.inc();
      return InsertStatus::kNoMemory;  // nothing linked, nothing leaked
    }
    Node* node = root;
    int curr_v = 1;
    for (;;) {
      auto [new_prev, result] = insert_node(node, prev, next);
      prev = new_prev;
      if (result == InsertResult::kDuplicate) {
        if (curr_v == 1) {
          // Never published; nobody else can hold it.
          Layout::free_unpublished_root(root);
          stats::tls().op_insert.inc();
          return InsertStatus::kDuplicate;
        }
        // A same-key tower exists at an upper level: only possible after
        // our root was deleted and the key reinserted. Abandon the node
        // (never linked): roll tower_top back to the highest linked node
        // and release the reference taken before the attempt.
        root->tower_top.store(node->down, std::memory_order_release);
        Layout::free_unpublished_upper(node);
        release_tower_ref(root);
        break;
      }
      if (root->succ.load().mark) {
        // Construction interrupted by a deletion of our root (Section 4).
        // Remove the node we just linked above the (now superfluous) tower,
        // then finish: the root WAS inserted, so we report success.
        if (node != root) delete_node(prev, node);
        break;
      }
      raise_top_hint(curr_v);
      if (curr_v == tower_height) break;  // tower complete
      ++curr_v;
      Node* below = node;
      LF_CHAOS_POINT(kSkipTowerBuild);
      // Announce the upcoming link BEFORE attempting it (see Node docs):
      // while tower_alive includes this node, nobody can retire the tower,
      // so pre-publishing tower_top is race-free. If the tower already died
      // (count reached zero), it must NOT be resurrected: stop building.
      if (!acquire_tower_ref(root)) break;
      try {
        node = Layout::make_upper(root, curr_v, Node::Kind::kInterior,
                                  curr_v, k, T{}, below, root);
      } catch (const std::bad_alloc&) {
        // Out of memory above a linked root: give back the announced
        // reference and stop with a truncated (still valid) tower.
        release_tower_ref(root);
        break;
      }
      root->tower_top.store(node, std::memory_order_release);
      std::tie(prev, next) = search_to_level<true>(k, curr_v);
    }
    stats::tls().op_insert.inc();
    return InsertStatus::kInserted;
  }

  // ---- Chaos instrumentation -------------------------------------------
  // Same contract as FRList::chaos_cas: zero-cost passthrough when chaos
  // is off; when on, an armed forced failure returns a view matching no
  // caller pattern so the caller re-reads real state and recovers.
  static View chaos_cas([[maybe_unused]] chaos::Site site, Succ& field,
                        View expected, View desired) {
#if LF_CHAOS
    chaos::point(site);
    if (chaos::force_cas_fail(site)) {
      stats::tls().cas_attempt.inc();  // a failed attempt is still a step
      return View{nullptr, true, false};
    }
#endif
    return field.cas(expected, desired);
  }

  // ---- ordering helpers (sentinels = -inf / +inf) -----------------------
  bool node_lt(const Node* n, const Key& k) const {
    if (n->kind == Node::Kind::kHead) return true;
    if (n->kind == Node::Kind::kTail) return false;
    return comp_(n->key, k);
  }
  bool node_le(const Node* n, const Key& k) const {
    if (n->kind == Node::Kind::kHead) return true;
    if (n->kind == Node::Kind::kTail) return false;
    return !comp_(k, n->key);
  }
  bool node_eq(const Node* n, const Key& k) const {
    return n->kind == Node::Kind::kInterior && !comp_(n->key, k) &&
           !comp_(k, n->key);
  }
  bool keys_equal(const Key& a, const Key& b) const {
    return !comp_(a, b) && !comp_(b, a);
  }

  static Xoshiro256& tls_rng() {
    thread_local Xoshiro256 rng(
        0x9e3779b97f4a7c15ULL ^
        std::hash<std::thread::id>{}(std::this_thread::get_id()));
    return rng;
  }

  void raise_top_hint(int level) noexcept {
    int top = top_hint_.load(std::memory_order_relaxed);
    while (top < level && !top_hint_.compare_exchange_weak(
                              top, level, std::memory_order_relaxed)) {
    }
  }

  // ---- Finger (search hint) layer — sync/finger.h, DESIGN.md §10 ---------
  //
  // Each thread remembers, per skip-list instance, the lowest kFingerLevels
  // levels of recent descents — and, per level, a set of kWays cache ways,
  // each holding the (pred, succ) pair a SearchRight returned plus the
  // reclaimer token under which that pair was observed. The next search
  // enters at the LOWEST cached level l >= v holding a way whose token
  // still validates and whose window brackets the key (pred.key < k <=
  // succ.key-at-save-time), skipping the whole descent above l. Multiple
  // ways per level are what serve a skewed-but-scattered (zipf) hot set: a
  // single way thrashes between far-apart hot keys, while k ways hold k
  // disjoint hot windows at once. Replacement is clock (second-chance); a
  // way already caching the same pred is refreshed in place. Ways carry
  // individual tokens because a finger-entered search only refreshes the
  // ways it traverses, so surviving ways may be older than fresh ones.
  //
  // A pred that was marked since it was saved is recovered through its
  // backlink chain — the same recovery a failed C&S performs — and any
  // validation failure falls back to the ordinary head descent, so the
  // paper's amortized bound is untouched (the fallback IS the status quo;
  // probing is deref-free and validation attempts are O(kFingerLevels)).

  using FingerPol = sync::FingerPolicy<Reclaimer>;
  static constexpr bool kFingerActive =
      Finger::kEnabled && FingerPol::kSupported;
  static constexpr int kWays = sync::kFingerCacheWays;
  // Publishing policies (hazard pointers) pair every cached pred with a
  // retained slot, and a slot only protects what it holds if that address
  // is a RETIRED OBJECT address. Under the FLAT layout the whole tower is
  // one retired block whose address is the level-1 root, and every node
  // carries an immutable tower_root — so each fingered level retains its
  // ways' preds' ROOTS in its own GROUP of slots (level l, way w lives in
  // entry (l-1) * kWays + w of FingerPol::kPublishedEntries), and a slot
  // match keeps the whole block, interior pred included, dereferenceable.
  // A CHAINED layout retires towers per node; only the level-1 node's
  // address is both cacheable and retireable, so the finger degrades to
  // level 1 there (the same restriction the RC variant's level-1 cache
  // lives with) — still with its full way set.
  static constexpr int kMaxFingerLevels =
      4 < kMaxTowerHeight ? 4 : kMaxTowerHeight;
  static constexpr int kFingerLevels =
      FingerPol::kPublishes
          ? (Layout::kFlat
                 ? (kMaxFingerLevels < FingerPol::kPublishedGroups
                        ? kMaxFingerLevels
                        : FingerPol::kPublishedGroups)
                 : 1)
          : kMaxFingerLevels;
  static_assert(!FingerPol::kPublishes ||
                    (kFingerLevels * kWays <= FingerPol::kPublishedEntries &&
                     kWays <= FingerPol::kPublishedWays),
                "each fingered (level, way) needs its own retained slot");

  // Retained-slot index of (lvl, way) under a publishing policy. Level 1
  // occupies entries [0, kWays) — the group the domain's scan chain-walks.
  static constexpr int finger_entry_index(int lvl, int way) noexcept {
    return (lvl - 1) * kWays + way;
  }

  // Ways cache the bracket KEYS (and sentinel kinds) alongside the pred
  // pointer: while the token validates, the node is unreclaimed and its
  // key/kind are immutable, so checking the cached copies is equivalent to
  // dereferencing — and a failed probe (the common case on a locality
  // break) then costs no cache misses on cold nodes at all. Only the way
  // that wins a level's probe dereferences its pred, for the mark check.
  struct FingerSlot {
    std::uint64_t instance = 0;
    struct Entry {
      Node* pred = nullptr;
      Node* root = nullptr;  // pred->tower_root at save (publishing only)
      std::uint64_t token = 0;
      Key pred_key{};  // meaningful unless pred_head
      Key succ_key{};  // meaningful unless succ_tail
      bool pred_head = false;
      bool succ_tail = false;
      std::uint8_t freq = 0;  // hit counter (aged by finger_victim_pick)
    };
    struct Level {
      Entry way[kWays] = {};
      unsigned hand = 0;   // tie rotation for victim selection
      unsigned ticks = 0;  // replacements since the last aging pass
      // Way refreshed by the search in progress; only meaningful for the
      // levels the current search traversed (publish_fingers' [lo, hi]).
      int fresh = -1;
    };
    Level level[kFingerLevels + 1];  // [1..kFingerLevels]; [0] unused
  };

  // Type-erased backlink-chain step for HazardDomain's chain-protecting
  // scan (see core/fr_list.h::finger_chain_walker — identical contract).
  // Paired with finger entry 0 only, which always holds a level-1 root: a
  // level-1 backlink targets the level-1 predecessor, so the chain stays
  // within retired-address territory (tower roots). Upper finger entries
  // are never walked — a marked upper pred falls through to the next level
  // instead of recovering, because a level-l backlink (l > 1) targets
  // another tower's INTERIOR node, whose address no slot could protect.
  static void* finger_chain_walker(void* p) {
    Node* n = static_cast<Node*>(p);
    if (!n->succ.load().mark) return nullptr;
    return n->backlink.load(std::memory_order_acquire);
  }

  // Level the plain head descent would enter at.
  int head_entry_level(int v) const noexcept {
    int curr_v = top_hint_.load(std::memory_order_relaxed) + 1;
    if (curr_v > MaxLevel) curr_v = MaxLevel;
    if (curr_v < v) curr_v = v;
    return curr_v;
  }

  void save_finger(FingerSlot& slot, int lvl, Node* pred, Node* succ,
                   std::uint64_t token) const {
    if (lvl > kFingerLevels) return;
    if (slot.instance != finger_id_) {
      // First touch, or the direct-mapped TLS slot was evicted by another
      // instance: ways at OTHER levels hold that instance's pointers, and
      // once `instance` below claims the slot they would masquerade as
      // ours (publishing policies use a constant token, so nothing else
      // would catch them). Kill them before claiming.
      for (int l = 1; l <= kFingerLevels; ++l)
        slot.level[l] = typename FingerSlot::Level();
      slot.instance = finger_id_;
    }
    auto& lv = slot.level[lvl];
    // A way already caching this pred is refreshed in place (its bracket
    // just moved or tightened); otherwise clock replacement picks a victim.
    int w = -1;
    for (int i = 0; i < kWays; ++i)
      if (lv.way[i].pred == pred) { w = i; break; }
    const bool refresh = w >= 0;
    if (!refresh) {
      LF_CHAOS_POINT(kSkipFingerReplace);
      w = sync::finger_victim_pick(
          lv.way, kWays, lv.hand, lv.ticks,
          [](const typename FingerSlot::Entry& e) {
            return e.pred == nullptr;
          });
    }
    auto& e = lv.way[w];
    e.pred = pred;
    e.token = token;
    // pred/succ were just traversed, so these reads are cache-warm.
    e.pred_head = pred->kind == Node::Kind::kHead;
    if (!e.pred_head) e.pred_key = pred->key;
    e.succ_tail = succ->kind == Node::Kind::kTail;
    if (!e.succ_tail) e.succ_key = succ->key;
    // A brand-new way enters at frequency zero — the next replacement's
    // prime victim unless it earns a probe hit first — while refreshes
    // bump the counter. One-shot cold keys then recycle through a
    // de-facto probation way; the accumulated counters of the hot ways
    // are untouched by miss traffic, which is what lets the cache retain
    // a zipf hot set (recency-only clock is lapped by the tail's miss
    // flow before even the hottest key recurs).
    if (refresh) sync::finger_freq_bump(e.freq);
    else e.freq = 0;
    lv.fresh = w;
    if constexpr (FingerPol::kPublishes) {
      // Cache the address the retained slot will hold: the pred's tower
      // root — the address retire_tower hands the reclaimer (the
      // whole-block pointer under the flat layout; pred itself at level 1).
      // pred was just found unmarked (hence linked, hence unreclaimed)
      // under the still-held guard, so the deref is safe. The publication
      // itself happens once per search, in publish_fingers().
      e.root = pred->tower_root;
    }
  }

  // Publishing policies only: rewrite the retained hazard slots after a
  // search refreshed one way on each of levels [lo, hi]. A refreshed way
  // publishes the root cached at save time — publish-while-alive holds
  // because its pred was found linked under the STILL-HELD guard, and a
  // concurrent retirement parks in the epoch stage until this pin ends
  // (the epoch bridge, reclaim/hazard.h). Any other way is kept only if
  // its slot still holds its root: protection was then continuous since
  // its own publish-while-alive moment, so republishing the same address
  // into the same slot extends it soundly. Anything else is dead — its
  // slot is published null and the way cleared so it is never
  // dereferenced.
  void publish_fingers(FingerSlot& slot, int lo, int hi) const {
    if (slot.instance != finger_id_ || lo > kFingerLevels) return;
    void* roots[kFingerLevels * kWays];
    for (int l = 1; l <= kFingerLevels; ++l) {
      auto& lv = slot.level[l];
      for (int w = 0; w < kWays; ++w) {
        auto& e = lv.way[w];
        const int idx = finger_entry_index(l, w);
        if (e.pred == nullptr) {
          roots[idx] = nullptr;
        } else if (l >= lo && l <= hi && w == lv.fresh) {
          roots[idx] = e.root;  // refreshed this search
        } else if (reclaimer_.finger_reacquire(e.root, finger_id_, idx)) {
          roots[idx] = e.root;  // stale but continuously protected
        } else {
          roots[idx] = nullptr;  // evicted since its publish: dead way
          e.pred = nullptr;
        }
      }
    }
    LF_CHAOS_POINT(kSkipFingerPublish);
    reclaimer_.finger_publish(roots, kFingerLevels * kWays,
                              &finger_chain_walker, finger_id_, kWays);
  }

  // Picks a validated entry point: (start node, level), or (nullptr, 0) for
  // a head descent. Scans cached levels from max(v, min_level) upward and
  // takes the lowest usable one — lower entry, shorter walk; within a
  // level, the way with the tightest bracket (largest pred key) wins the
  // deref-free probe and is the only one validated. min_level lets erase's
  // tower-cleanup sweep refuse entries below the tower it must clear (an
  // entry below the tower top would skip the levels above it).
  //
  // Hit/miss accounting covers exactly the finger-ELIGIBLE searches (lo <=
  // kFingerLevels): a search that could never use a finger — a tower build
  // or cleanup sweep above the fingered levels — counts neither, so
  // bench_finger hit rates measure cache effectiveness, not the workload's
  // tower-height mix.
  template <bool Closed>
  std::pair<Node*, int> finger_start(const Key& k, int v, int min_level,
                                     FingerSlot& slot,
                                     std::uint64_t token) const {
    auto& c = stats::tls();
    const int lo = min_level > v ? min_level : v;
    if (lo > kFingerLevels) return {nullptr, 0};  // never eligible
    if (slot.instance == finger_id_) {
      for (int lvl = lo; lvl <= kFingerLevels; ++lvl) {
        auto& lv = slot.level[lvl];
        // Equality (pred.key == k) is admitted only for a Closed search
        // entering at its own target when that target is level 1: there the
        // cached pred is a tower ROOT, so "unmarked" below directly implies
        // it is not superfluous. At upper levels an equal-key start could
        // sit ON a superfluous node and SearchRight — which only examines
        // successors — would never physically delete it, leaving erase's
        // cleanup pass a no-op.
        const bool allow_eq = Closed && lvl == v && v == 1;
        // Deref-free probe: the way whose window [pred_key, succ_key]
        // brackets k, tightest (largest pred key) first on overlap.
        int w = -1;
        for (int i = 0; i < kWays; ++i) {
          const auto& e = lv.way[i];
          if (e.pred == nullptr || e.token != token) continue;
          if (!e.pred_head &&
              (allow_eq ? comp_(k, e.pred_key) : !comp_(e.pred_key, k)))
            continue;
          // Window check: at save time succ was the next node at this
          // level, so k beyond succ's key means an unbounded rightward
          // walk — worse than descending from above. (Tail = +infinity
          // always qualifies.)
          if (!e.succ_tail && comp_(e.succ_key, k)) continue;
          if (w < 0 || (!e.pred_head && (lv.way[w].pred_head ||
                                         comp_(lv.way[w].pred_key, e.pred_key))))
            w = i;
        }
        if (w < 0) continue;
        auto& e = lv.way[w];
        // Publishing policies: re-acquire this way's retained hazard
        // slot — which holds the pred's tower ROOT — before the first
        // dereference (see core/fr_list.h::finger_start — a mismatch means
        // protection was not continuous and the cached pointer may be
        // freed memory; fail closed to the next level / head descent). A
        // match keeps the whole tower block alive, so dereferencing the
        // interior pred below is sound.
        if constexpr (FingerPol::kPublishes) {
          if (!reclaimer_.finger_reacquire(e.root, finger_id_,
                                           finger_entry_index(lvl, w))) {
            e.pred = nullptr;  // dead way; stop probing it
            continue;
          }
        }
        LF_CHAOS_POINT(kSkipFingerValidate);
        Node* start = e.pred;
        std::uint64_t chain = 0;
        // Backlink recovery is level-1-only under a publishing policy: a
        // level-l backlink (l > 1) targets another tower's interior node,
        // which no slot publication could protect (its address is never a
        // retired-object address). A marked upper pred falls through to
        // the next cached level instead.
        if (!FingerPol::kPublishes || lvl == 1) {
          while (start->succ.load().mark) {
            Node* back = start->backlink.load(std::memory_order_acquire);
            if (back == nullptr) break;  // defensive; marked => backlink set
            if constexpr (FingerPol::kPublishes) {
              // Publish the hop before dereferencing it (liveness is
              // already guaranteed by the chain-protecting scan while the
              // finger slot is held; see reclaim/hazard.h).
              LF_CHAOS_POINT(kHazardFingerHop);
              reclaimer_.finger_protect_hop(back);
            }
            c.backlink_traversal.inc();
            ++chain;
            start = back;
          }
        }
        if (chain > 0) stats::chain_hist_tls().record(chain);
        if (start->succ.load().mark) continue;  // try the next level up
        sync::finger_freq_bump(e.freq);
        c.finger_hit.inc();
        const int head_v = head_entry_level(v);
        if (head_v > lvl)
          c.finger_skip.inc(static_cast<std::uint64_t>(head_v - lvl));
        return {start, lvl};
      }
    }
    LF_CHAOS_POINT(kSkipFingerFallback);
    c.finger_miss.inc();
    return {nullptr, 0};
  }

  // ---- SearchToLevel_SL --------------------------------------------------
  //
  // Descends from just above the tallest live tower — or from a validated
  // per-thread finger (see above) — to level v, traversing each level with
  // SearchRight; returns consecutive (n1, n2) on level v with
  // n1.key <= k < n2.key (Closed) or n1.key < k <= n2.key (!Closed).
  template <bool Closed>
  std::pair<Node*, Node*> search_to_level(const Key& k, int v,
                                          int min_finger_level = 0) const {
    Node* curr = nullptr;
    int curr_v = 0;
    [[maybe_unused]] FingerSlot* slot = nullptr;
    [[maybe_unused]] std::uint64_t token = 0;
    if constexpr (kFingerActive) {
      slot = &sync::tls_finger_slot<FingerSlot>(finger_id_);
      token = FingerPol::token(reclaimer_);
      std::tie(curr, curr_v) =
          finger_start<Closed>(k, v, min_finger_level, *slot, token);
    }
    if (curr == nullptr) {
      curr_v = head_entry_level(v);
      curr = head_[curr_v];
    }
    [[maybe_unused]] const int entry_v = curr_v;
    Node* next = nullptr;
    while (curr_v > v) {
      std::tie(curr, next) = search_right<false>(k, curr);
      if constexpr (kFingerActive)
        save_finger(*slot, curr_v, curr, next, token);
      curr = curr->down;
      --curr_v;
    }
    auto out = search_right<Closed>(k, curr);
    if constexpr (kFingerActive) {
      save_finger(*slot, v, out.first, out.second, token);
      if constexpr (FingerPol::kPublishes)
        publish_fingers(*slot, v, entry_v);
    }
    return out;
  }

  // ---- SearchRight --------------------------------------------------------
  //
  // SearchFrom (Figure 3) on one level, with the Section 4 addition:
  // "SearchRight deletes the superfluous nodes along its way, performing
  // all three deletion steps if necessary, whereas SearchFrom physically
  // deletes only those nodes that are already logically deleted."
  template <bool Closed>
  std::pair<Node*, Node*> search_right(const Key& k, Node* curr) const {
    auto& c = stats::tls();
    auto advances = [&](const Node* n) {
      return Closed ? node_le(n, k) : node_lt(n, k);
    };
    Node* next = curr->succ.load().right;
    LF_PREFETCH(next);
    for (;;) {
      // Delete every superfluous tower node on the search path (root
      // marked). The trigger is key <= k in BOTH search modes: a strict
      // (k - eps) search never steps INTO a node with key == k, but the
      // erase cleanup descends with exactly that key and must still remove
      // the tower's upper nodes, and removal never moves curr rightward,
      // so the postcondition of either mode is preserved.
      while (next->kind == Node::Kind::kInterior && node_le(next, k) &&
             next->tower_root->succ.load().mark) {
        auto [new_curr, status, flagged] = try_flag_node(curr, next);
        curr = new_curr;
        if (status == FlagStatus::kIn) {
          (void)flagged;
          help_flagged(curr, next);
        }
        next = curr->succ.load().right;
        LF_PREFETCH(next);
        c.next_update.inc();
      }
      if (!advances(next)) break;
      LF_CHAOS_POINT(kSkipSearchStep);
      curr = next;
      c.curr_update.inc();
      // The hop is a dependent-load chain; start pulling in the next node's
      // line while this iteration finishes its key compare (util/prefetch.h).
      next = curr->succ.load().right;
      LF_PREFETCH(next);
    }
    return {curr, next};
  }

  // ---- level-local deletion machinery (Figures 3-5, per level) ----------

  void help_marked(Node* prev, Node* del) const {
    LF_CHAOS_POINT(kSkipHelpMarked);
    stats::tls().help_marked.inc();
    Node* next = del->succ.load().right;
    const View result =
        chaos_cas(chaos::Site::kSkipUnlinkCas, prev->succ,
                  View{del, false, true}, View{next, false, false});
    if (result == View{del, false, true}) {
      stats::tls().pdelete_cas.inc();
      release_tower_ref(del->tower_root);
    }
  }

  // Take a reference on a tower for an upcoming link attempt; fails (and
  // must abort the attempt) if the tower is already fully unlinked, since a
  // zero count means retirement has begun and may not be undone.
  bool acquire_tower_ref(Node* root) const {
    int alive = root->tower_alive.load(std::memory_order_acquire);
    while (alive > 0) {
      if (root->tower_alive.compare_exchange_weak(alive, alive + 1,
                                                  std::memory_order_acq_rel))
        return true;
    }
    return false;
  }

  // Drop one reference on a tower; the thread that releases the last one
  // retires the whole tower in a single step (see Node docs) — per node
  // under the chained layout, one block under the flat layout.
  void release_tower_ref(Node* root) const {
    if (root->tower_alive.fetch_sub(1, std::memory_order_acq_rel) != 1)
      return;
    Layout::retire_tower(reclaimer_, root);
  }

  void help_flagged(Node* prev, Node* del) const {
    LF_CHAOS_POINT(kSkipHelpFlagged);
    stats::tls().help_flagged.inc();
    del->backlink.store(prev, std::memory_order_release);
    if (!del->succ.load().mark) try_mark(del);
    help_marked(prev, del);
  }

  void try_mark(Node* del) const {
    do {
      Node* next = del->succ.load().right;
      const View result =
          chaos_cas(chaos::Site::kSkipMarkCas, del->succ,
                    View{next, false, false}, View{next, true, false});
      if (result == View{next, false, false}) {
        stats::tls().mark_cas.inc();
      } else if (result.flag && !result.mark) {
        help_flagged(del, result.right);
      }
    } while (!del->succ.load().mark);
  }

  enum class FlagStatus { kIn, kDeleted };

  // TryFlagNode: flag target's predecessor on target's level. Returns the
  // updated predecessor, whether target is still in the list, and whether
  // THIS call placed the flag.
  std::tuple<Node*, FlagStatus, bool> try_flag_node(Node* prev,
                                                    Node* target) const {
    auto& c = stats::tls();
    sync::Backoff backoff;
    for (;;) {
      if (prev->succ.load() == View{target, false, true}) {
        return {prev, FlagStatus::kIn, false};
      }
      const View result =
          chaos_cas(chaos::Site::kSkipFlagCas, prev->succ,
                    View{target, false, false}, View{target, false, true});
      if (result == View{target, false, false}) {
        c.flag_cas.inc();
        return {prev, FlagStatus::kIn, true};
      }
      if (result == View{target, false, true}) {
        return {prev, FlagStatus::kIn, false};
      }
      // Lost a C&S to real contention: back off briefly before recovering
      // (failure path only — no counted steps, no fast-path cost).
      backoff.pause();
      std::uint64_t chain = 0;
      while (prev->succ.load().mark) {
        LF_CHAOS_POINT(kSkipBacklinkStep);
        c.backlink_traversal.inc();
        ++chain;
        prev = prev->backlink.load(std::memory_order_acquire);
      }
      if (chain > 0) stats::chain_hist_tls().record(chain);
      auto [new_prev, del] = search_right<false>(target->key, prev);
      if (del != target) return {new_prev, FlagStatus::kDeleted, false};
      prev = new_prev;
    }
  }

  // DeleteNode: the three-step deletion of one node on its level. Returns
  // true iff this operation's flag initiated the deletion (the caller may
  // then report success for the dictionary-level Delete).
  bool delete_node(Node* prev, Node* del) const {
    auto [flag_prev, status, flagged] = try_flag_node(prev, del);
    if (status == FlagStatus::kIn) help_flagged(flag_prev, del);
    return flagged;
  }

  // InsertNode: the Insert retry loop (Figure 5 lines 5-22) on one level.
  std::pair<Node*, InsertResult> insert_node(Node* node, Node* prev,
                                             Node* next) const {
    auto& c = stats::tls();
    const Key& k = node->key;
    if (node_eq(prev, k)) return {prev, InsertResult::kDuplicate};
    sync::Backoff backoff;
    for (;;) {
      const View prev_succ = prev->succ.load();
      if (prev_succ.flag) {
        help_flagged(prev, prev_succ.right);
      } else {
        node->succ.store_unsynchronized(View{next, false, false});
        const View result =
            chaos_cas(chaos::Site::kSkipInsertCas, prev->succ,
                      View{next, false, false}, View{node, false, false});
        if (result == View{next, false, false}) {
          c.insert_cas.inc();
          return {prev, InsertResult::kInserted};
        }
        if (result.flag && !result.mark) {
          help_flagged(prev, result.right);
        }
        // Failed insertion C&S under contention: back off before the
        // recovery walk + re-search (failure path only; see try_flag_node).
        backoff.pause();
        std::uint64_t chain = 0;
        while (prev->succ.load().mark) {
          LF_CHAOS_POINT(kSkipBacklinkStep);
          c.backlink_traversal.inc();
          ++chain;
          prev = prev->backlink.load(std::memory_order_acquire);
        }
        if (chain > 0) stats::chain_hist_tls().record(chain);
      }
      std::tie(prev, next) = search_right<true>(k, prev);
      if (node_eq(prev, k)) return {prev, InsertResult::kDuplicate};
    }
  }

  static ValidationReport fail(ValidationReport& rep, const char* msg) {
    rep.ok = false;
    rep.error = msg;
    return rep;
  }

  Compare comp_;
  mutable Reclaimer reclaimer_;
  std::array<Node*, MaxLevel + 1> head_{};  // head_[1..MaxLevel]; [0] unused
  Node* tail_;
  std::atomic<int> top_hint_;
  // Never-reused id keying this instance's thread-local finger slots.
  const std::uint64_t finger_id_ = sync::next_finger_instance();

  static_assert(reclaim::reclaimer_for<Reclaimer, Node>);
  // Tower retirement goes through the layout's type-erased deleter, so the
  // reclaimer must support deleter-based retirement (epoch and leaky do).
  static_assert(reclaim::deferred_reclaimer<Reclaimer>);
};

}  // namespace lf
