// FRListNoFlag — ablation of the paper's flag bits.
//
// Section 3.1 argues that backlinks ALONE do not give the desired
// complexity: "The problem is that long chains of backlinks can be traversed
// by the same process many times. This happens when these chains grow
// towards the right, i.e. when backlink pointers are set to marked nodes."
// The flag bit exists precisely to rule that out: a node is only marked
// while its predecessor is flagged, and a flagged node cannot be marked, so
// a backlink never targets a marked node.
//
// This variant removes the flag step. Deletion is two steps, Harris-style
// marking plus a best-effort backlink:
//
//     1. set del.backlink to the current predecessor HINT, then
//        C&S del.succ (next,0,0) -> (next,1,0)        (logical deletion)
//     2. C&S pred.succ (del,0,0) -> (next,0,0)        (physical deletion;
//        searches also unlink marked nodes they pass, as in Harris/Michael)
//
// Because nothing freezes the predecessor, the hint can itself be marked by
// the time it is followed — backlink chains may grow to the right, which is
// exactly the pathology experiment E7 measures (chain-length histograms of
// this variant vs FRList under a delete-heavy hotspot).
//
// The variant is still linearizable and lock-free (marking freezes succ
// fields exactly as in Harris's list; backlinks are a recovery accelerator,
// and walking them strictly decreases the key, so recovery terminates at an
// unmarked node or at head). It is NOT the paper's algorithm; it exists to
// demonstrate why the paper's algorithm is shaped the way it is.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <tuple>
#include <utility>

#include "lf/instrument/counters.h"
#include "lf/reclaim/epoch.h"
#include "lf/reclaim/reclaimer.h"
#include "lf/sync/succ_field.h"

namespace lf {

template <typename Key, typename T = Key, typename Compare = std::less<Key>,
          typename Reclaimer = reclaim::EpochReclaimer>
class FRListNoFlag {
 public:
  using key_type = Key;
  using mapped_type = T;
  using key_compare = Compare;

  struct Node;

 private:
  using Succ = sync::SuccField<Node>;
  using View = sync::SuccView<Node>;

 public:
  struct alignas(8) Node {
    enum class Kind : unsigned char { kHead, kInterior, kTail };

    Kind kind;
    Key key;
    T value;
    Succ succ;
    std::atomic<Node*> backlink{nullptr};

    Node(Kind k, Key key_arg, T value_arg)
        : kind(k), key(std::move(key_arg)), value(std::move(value_arg)) {}
  };

  FRListNoFlag() {
    head_ = new Node(Node::Kind::kHead, Key{}, T{});
    tail_ = new Node(Node::Kind::kTail, Key{}, T{});
    head_->succ.store_unsynchronized(View{tail_, false, false});
  }

  ~FRListNoFlag() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->succ.load().right;
      delete n;
      n = next;
    }
  }

  FRListNoFlag(const FRListNoFlag&) = delete;
  FRListNoFlag& operator=(const FRListNoFlag&) = delete;

  bool insert(const Key& k, T value) {
    [[maybe_unused]] auto guard = reclaimer_.guard();
    auto [prev, next] = search_from<true>(k, head_);
    bool inserted = false;
    if (!node_eq(prev, k)) {
      Node* node = new Node(Node::Kind::kInterior, k, std::move(value));
      for (;;) {
        node->succ.store_unsynchronized(View{next, false, false});
        const View result =
            prev->succ.cas(View{next, false, false}, View{node, false, false});
        if (result == View{next, false, false}) {
          stats::tls().insert_cas.inc();
          inserted = true;
          break;
        }
        recover(prev);
        std::tie(prev, next) = search_from<true>(k, prev);
        if (node_eq(prev, k)) {
          delete node;
          break;
        }
      }
    }
    stats::tls().op_insert.inc();
    return inserted;
  }

  bool erase(const Key& k) {
    [[maybe_unused]] auto guard = reclaimer_.guard();
    auto [prev, del] = search_from<false>(k, head_);
    bool erased = false;
    if (node_eq(del, k)) {
      // Logical deletion: publish the best-effort backlink hint, then mark.
      for (;;) {
        const View del_succ = del->succ.load();
        if (del_succ.mark) break;  // a concurrent erase won
        del->backlink.store(prev, std::memory_order_release);
        const View result = del->succ.cas(
            View{del_succ.right, false, false},
            View{del_succ.right, true, false});
        if (result == View{del_succ.right, false, false}) {
          stats::tls().mark_cas.inc();
          erased = true;
          // Best-effort physical deletion; searches clean up on failure.
          const View unlink = prev->succ.cas(View{del, false, false},
                                             View{del_succ.right, false, false});
          if (unlink == View{del, false, false}) {
            stats::tls().pdelete_cas.inc();
            reclaimer_.retire(del);
          } else {
            search_from<true>(k, head_);  // sweep to unlink
          }
          break;
        }
        // The predecessor hint may have gone stale; recover and retry.
        recover(prev);
        auto [p2, d2] = search_from<false>(k, prev);
        if (d2 != del) break;  // deleted (or replaced) concurrently
        prev = p2;
      }
    }
    stats::tls().op_erase.inc();
    return erased;
  }

  std::optional<T> find(const Key& k) const {
    [[maybe_unused]] auto guard = reclaimer_.guard();
    auto [curr, next] = search_from<true>(k, head_);
    (void)next;
    std::optional<T> out;
    if (node_eq(curr, k)) out.emplace(curr->value);
    stats::tls().op_search.inc();
    return out;
  }

  bool contains(const Key& k) const {
    [[maybe_unused]] auto guard = reclaimer_.guard();
    auto [curr, next] = search_from<true>(k, head_);
    (void)next;
    stats::tls().op_search.inc();
    return node_eq(curr, k);
  }

  std::size_t size() const {
    [[maybe_unused]] auto guard = reclaimer_.guard();
    std::size_t n = 0;
    for (Node* p = head_->succ.load().right; p->kind != Node::Kind::kTail;
         p = p->succ.load().right) {
      if (!p->succ.load().mark) ++n;
    }
    return n;
  }

  Node* head() const noexcept { return head_; }

  // ---- Two-phase insert hooks (benchmark adversary, E7) ------------------
  // Mirror of FRList::insert_locate / insert_complete.
  struct InsertCursor {
    Key key{};
    Node* prev = nullptr;
    Node* next = nullptr;
    Node* node = nullptr;
  };

  bool insert_locate(const Key& k, T value, InsertCursor& cur) {
    [[maybe_unused]] auto guard = reclaimer_.guard();
    auto [prev, next] = search_from<true>(k, head_);
    if (node_eq(prev, k)) return false;
    cur.key = k;
    cur.prev = prev;
    cur.next = next;
    cur.node = new Node(Node::Kind::kInterior, k, std::move(value));
    return true;
  }

  bool insert_complete(InsertCursor& cur) {
    [[maybe_unused]] auto guard = reclaimer_.guard();
    Node* prev = cur.prev;
    Node* next = cur.next;
    bool inserted = false;
    for (;;) {
      cur.node->succ.store_unsynchronized(View{next, false, false});
      const View result = prev->succ.cas(View{next, false, false},
                                         View{cur.node, false, false});
      if (result == View{next, false, false}) {
        stats::tls().insert_cas.inc();
        inserted = true;
        break;
      }
      recover(prev);
      std::tie(prev, next) = search_from<true>(cur.key, prev);
      if (node_eq(prev, cur.key)) {
        delete cur.node;
        break;
      }
    }
    cur.node = nullptr;
    stats::tls().op_insert.inc();
    return inserted;
  }

  // ---- Two-phase erase hooks (benchmark adversary, E7) -------------------
  //
  // The pathology the paper's flag bit eliminates is a backlink being SET
  // to an already-marked node ("chains grow towards the right"). In this
  // flagless variant that happens whenever the predecessor hint captured
  // at locate time goes stale before the marking step. These hooks expose
  // that seam so the E7 driver can build maximal stale-hint chains
  // deterministically. (The real FRList has no such seam to expose: its
  // flagging C&S validates the predecessor atomically, which is the whole
  // point of the ablation.) Use with LeakyReclaimer or under external
  // quiescence, as with the insert hooks.
  struct EraseCursor {
    Key key{};
    Node* prev = nullptr;
    Node* del = nullptr;
  };

  bool erase_locate(const Key& k, EraseCursor& cur) {
    [[maybe_unused]] auto guard = reclaimer_.guard();
    auto [prev, del] = search_from<false>(k, head_);
    if (!node_eq(del, k)) return false;
    cur.key = k;
    cur.prev = prev;
    cur.del = del;
    return true;
  }

  // Completes the deletion using the (possibly stale) located predecessor
  // as the backlink hint — exactly what the in-line erase() does when the
  // scheduler delays it between its search and its marking C&S.
  bool erase_complete(EraseCursor& cur) {
    [[maybe_unused]] auto guard = reclaimer_.guard();
    Node* del = cur.del;
    bool erased = false;
    for (;;) {
      const View del_succ = del->succ.load();
      if (del_succ.mark) break;  // concurrent (or earlier) erase won
      del->backlink.store(cur.prev, std::memory_order_release);
      const View result =
          del->succ.cas(View{del_succ.right, false, false},
                        View{del_succ.right, true, false});
      if (result == View{del_succ.right, false, false}) {
        stats::tls().mark_cas.inc();
        erased = true;
        const View unlink =
            cur.prev->succ.cas(View{del, false, false},
                               View{del_succ.right, false, false});
        if (unlink == View{del, false, false}) {
          stats::tls().pdelete_cas.inc();
          reclaimer_.retire(del);
        }
        // No sweep here: physical deletion is deliberately left to later
        // searches when the hint was stale, as in a delayed erase().
        break;
      }
    }
    stats::tls().op_erase.inc();
    return erased;
  }

 private:
  bool node_lt(const Node* n, const Key& k) const {
    if (n->kind == Node::Kind::kHead) return true;
    if (n->kind == Node::Kind::kTail) return false;
    return comp_(n->key, k);
  }
  bool node_le(const Node* n, const Key& k) const {
    if (n->kind == Node::Kind::kHead) return true;
    if (n->kind == Node::Kind::kTail) return false;
    return !comp_(k, n->key);
  }
  bool node_eq(const Node* n, const Key& k) const {
    return n->kind == Node::Kind::kInterior && !comp_(n->key, k) &&
           !comp_(k, n->key);
  }

  // Walk the backlink chain from a marked node to an unmarked one. Without
  // flags the chain may pass through OTHER marked nodes — the growth the
  // paper's flag bit forbids. Instrumented for E7.
  void recover(Node*& prev) const {
    auto& c = stats::tls();
    std::uint64_t chain = 0;
    while (prev->succ.load().mark) {
      c.backlink_traversal.inc();
      ++chain;
      prev = prev->backlink.load(std::memory_order_acquire);
    }
    if (chain > 0) stats::chain_hist_tls().record(chain);
  }

  // Search with Harris/Michael-style physical deletion of marked nodes,
  // using backlinks (not restarts) when the current node itself is marked.
  template <bool Closed>
  std::pair<Node*, Node*> search_from(const Key& k, Node* curr) const {
    auto& c = stats::tls();
    auto advances = [&](const Node* n) {
      return Closed ? node_le(n, k) : node_lt(n, k);
    };
    Node* next = curr->succ.load().right;
    for (;;) {
      while (next->kind == Node::Kind::kInterior && next->succ.load().mark) {
        if (curr->succ.load().mark) {
          recover(curr);
          next = curr->succ.load().right;
          c.next_update.inc();
          continue;
        }
        // next is marked, so next.right is frozen: unlink next.
        Node* after = next->succ.load().right;
        const View result = curr->succ.cas(View{next, false, false},
                                           View{after, false, false});
        if (result == View{next, false, false}) {
          stats::tls().pdelete_cas.inc();
          reclaimer_.retire(next);
        }
        next = curr->succ.load().right;
        c.next_update.inc();
      }
      if (!advances(next)) break;
      curr = next;
      c.curr_update.inc();
      next = curr->succ.load().right;
    }
    return {curr, next};
  }

  Compare comp_;
  mutable Reclaimer reclaimer_;
  Node* head_;
  Node* tail_;
};

}  // namespace lf
