// FRSkipListRC — the paper's skip list under Valois-style reference
// counting, completing the Section 5 suggestion ("applicable to both our
// linked lists and our skip lists, because there are no cycles among the
// physically deleted nodes").
//
// Same algorithm as FRSkipList (towers, bottom-up insert, root-first
// delete, superfluous-tower cleanup by searches); node lifetime is managed
// by reference counts as in FRListRC. The counted-pointer invariant:
//
//   count(N) = level-list links to N (succ fields)      [carry-over rules]
//            + backlink fields targeting N              [CAS-once, +1]
//            + down fields targeting N                  [immutable, +1 at
//            + tower_root fields targeting N             node creation]
//            + live thread references + in-flight SafeRead ghost pairs.
//
// A pleasant consequence: the whole tower-retirement protocol the epoch
// variant needs (tower_alive / tower_top, see fr_skiplist.h) disappears.
// Descending `down` from a held node is intrinsically safe — the held node
// owns a counted link to its lower neighbour — and each node is recycled
// individually the instant nothing can reach it. The cost is the usual
// reference-counting toll: two shared RMWs per traversal hop (experiment
// E9 quantifies it on the list; the same profile applies here).
//
// The down-pointer acyclicity (upper -> lower -> ... -> root, root points
// nowhere upward) is what guarantees release cascades terminate, exactly
// the property the paper cites.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "lf/chaos/chaos.h"
#include "lf/instrument/counters.h"
#include "lf/sync/finger.h"
#include "lf/sync/succ_field.h"
#include "lf/util/random.h"

namespace lf {

// `Finger` (sync::FingerOn / sync::FingerOff) statically enables the
// thread-local search-hint layer: a set-associative cache of recent
// descent positions over the lowest fingered levels, kWays bracket-keyed
// ways per level (sync/finger.h), mirroring the epoch variant's shape.
// Probing is deref-free over cached bracket keys; only the way that wins a
// level's probe pays the counted re-acquisition (count + reuse stamp, see
// finger_try_hold), whose stamp equality retroactively validates the
// cached keys — so the multi-level cache costs at most one counted hold
// per search, the same as the old level-1-only hint. Unlike the hazard
// variant, a marked pred can recover through backlinks at ANY level (every
// node is individually counted, so safe reads need no retired-address
// argument). Erase's tower-cleanup pass keeps its full head descent
// (min_finger_level = MaxLevel), which preserves the superfluous-tower
// sweep above level 1.
template <typename Key, typename T = Key, typename Compare = std::less<Key>,
          int MaxLevel = 24, typename Finger = sync::FingerOn>
class FRSkipListRC {
  static_assert(MaxLevel >= 2, "need at least two levels (erase cleanup)");

 public:
  using key_type = Key;
  using mapped_type = T;
  using key_compare = Compare;

  struct Node;

 private:
  using Succ = sync::SuccField<Node>;
  using View = sync::SuccView<Node>;

  static constexpr std::uint64_t kFreeBit = 1ULL << 63;
  static constexpr std::uint64_t kCountMask = kFreeBit - 1;

 public:
  static constexpr int kMaxTowerHeight = MaxLevel - 1;

  struct alignas(8) Node {
    enum class Kind : unsigned char { kHead, kInterior, kTail };

    Kind kind = Kind::kInterior;
    int level = 1;
    Key key{};
    T value{};
    Succ succ;
    std::atomic<Node*> backlink{nullptr};
    Node* down = nullptr;        // immutable; counted at creation
    Node* tower_root = nullptr;  // immutable; counted at creation
    std::atomic<std::uint64_t> refct{0};
    // Incarnation counter, bumped once per recycle() before the node can
    // be reallocated; (node, stamp) pairs name incarnations for the finger
    // layer (see fr_list_rc.h for the full argument).
    std::atomic<std::uint64_t> stamp{0};
    Node* arena_next = nullptr;
    Node* free_next = nullptr;
  };

  FRSkipListRC() {
    tail_ = allocate(Node::Kind::kTail, 0, Key{}, T{}, nullptr, nullptr);
    Node* below = nullptr;
    for (int v = 1; v <= MaxLevel; ++v) {
      head_[v] = allocate(Node::Kind::kHead, v, Key{}, T{}, below, nullptr);
      head_[v]->succ.store_unsynchronized(View{tail_, false, false});
      tail_->refct.fetch_add(1, std::memory_order_relaxed);  // head link
      below = head_[v];
    }
    top_hint_.store(1, std::memory_order_relaxed);
  }

  ~FRSkipListRC() {
    Node* n = arena_head_;
    while (n != nullptr) {
      Node* next = n->arena_next;
      delete n;
      n = next;
    }
  }

  FRSkipListRC(const FRSkipListRC&) = delete;
  FRSkipListRC& operator=(const FRSkipListRC&) = delete;

  // ---- dictionary operations --------------------------------------------

  bool insert(const Key& k, T value) {
    auto [prev, next] = search_to_level<true>(k, 1);
    if (node_eq(prev, k)) {
      release(prev);
      release(next);
      stats::tls().op_insert.inc();
      return false;
    }
    const int tower_height = tls_rng().tower_height(kMaxTowerHeight);
    Node* root = allocate(Node::Kind::kInterior, 1, k, std::move(value),
                          nullptr, nullptr);
    Node* node = root;  // the builder's creator reference travels in `node`
    int curr_v = 1;
    for (;;) {
      auto [new_prev, result] = insert_node(node, prev, next);
      release(prev);
      release(next);
      prev = new_prev;  // counted
      next = nullptr;
      if (result == InsertResult::kDuplicate) {
        if (curr_v == 1) {
          release(prev);
          abandon(node);  // the root: never published, nobody else has it
          stats::tls().op_insert.inc();
          return false;
        }
        // A same-key tower appeared at an upper level: our root must have
        // been deleted and the key reinserted. Stop building.
        abandon(node);
        node = nullptr;
        break;
      }
      // Reading root is safe: node == root (creator ref) or node's
      // immutable tower_root link keeps root alive while we hold node.
      if (root->succ.load().mark) {
        // Interrupted by a concurrent deletion of our root (Section 4):
        // undo the node just linked above the superfluous tower; done.
        if (node != root) delete_node_at(prev, node);
        break;
      }
      raise_top_hint(curr_v);
      if (curr_v == tower_height) break;
      ++curr_v;
      Node* upper =
          allocate(Node::Kind::kInterior, curr_v, k, T{}, node, root);
      release(node);  // lower's creator ref; upper's down-link keeps it
      node = upper;
      release(prev);
      std::tie(prev, next) = search_to_level<true>(k, curr_v);
    }
    release(prev);
    if (next != nullptr) release(next);
    if (node != nullptr) release(node);  // creator ref of the top node
    stats::tls().op_insert.inc();
    return true;
  }

  bool erase(const Key& k) {
    auto [prev, del] = search_to_level<false>(k, 1);
    bool erased = false;
    if (node_eq(del, k)) {
      erased = delete_node_at(prev, del);
      if (erased) {
        // Tower cleanup: full head descent (min_finger_level = MaxLevel),
        // so the superfluous-tower sweep starts above every tower.
        auto [p2, n2] = search_to_level<true>(k, 2, MaxLevel);
        release(p2);
        release(n2);
      }
    }
    release(prev);
    release(del);
    stats::tls().op_erase.inc();
    return erased;
  }

  std::optional<T> find(const Key& k) const {
    auto [curr, next] = search_to_level<true>(k, 1);
    std::optional<T> out;
    if (node_eq(curr, k)) out.emplace(curr->value);
    release(curr);
    release(next);
    stats::tls().op_search.inc();
    return out;
  }

  bool contains(const Key& k) const { return find(k).has_value(); }

  std::size_t size() const {
    std::size_t n = 0;
    Node* curr = acquire(head_[1]);
    Node* next = safe_read_succ(curr);
    while (next->kind != Node::Kind::kTail) {
      if (!next->succ.load().mark) ++n;
      Node* after = safe_read_succ(next);
      release(curr);
      curr = next;
      next = after;
    }
    release(curr);
    release(next);
    return n;
  }

  // ---- diagnostics --------------------------------------------------------

  std::size_t free_count() const {
    std::lock_guard lock(free_mu_);
    return free_count_;
  }
  std::size_t arena_count() const {
    std::lock_guard lock(free_mu_);
    return arena_count_;
  }

  // Quiescent full accounting: allocated == recycled + linked + sentinels.
  bool validate_accounting() const {
    std::size_t linked = 0;
    for (int v = 1; v <= MaxLevel; ++v) {
      for (Node* p = head_[v]->succ.load().right;
           p->kind != Node::Kind::kTail; p = p->succ.load().right) {
        ++linked;
      }
    }
    std::lock_guard lock(free_mu_);
    return arena_count_ == free_count_ + linked +
                               static_cast<std::size_t>(MaxLevel) + 1;
  }

 private:
  enum class InsertResult { kInserted, kDuplicate };

  // ---- counting core (as in FRListRC) -------------------------------------

  Node* acquire(Node* p) const {
    p->refct.fetch_add(1, std::memory_order_acq_rel);
    return p;
  }

  Node* safe_read_succ(Node* source) const {
    for (;;) {
      Node* p = source->succ.load().right;
      p->refct.fetch_add(1, std::memory_order_acq_rel);
      if (source->succ.load().right == p) return p;
      release(p);
    }
  }

  Node* safe_read_backlink(Node* source) const {
    for (;;) {
      Node* p = source->backlink.load(std::memory_order_acquire);
      if (p == nullptr) return nullptr;
      p->refct.fetch_add(1, std::memory_order_acq_rel);
      if (source->backlink.load(std::memory_order_acquire) == p) return p;
      release(p);
    }
  }

  void release(Node* p) const {
    std::vector<Node*> pending{p};
    while (!pending.empty()) {
      Node* n = pending.back();
      pending.pop_back();
      if (n == nullptr) continue;
      // C&S decrement so the interior dying transition (1 -> 0) sets the
      // IN-FREELIST bit atomically; zero-without-the-bit must never be
      // observable or finger_try_hold could validate a dying node (see
      // fr_list_rc.h::release for the ghost-revival interleaving).
      std::uint64_t old = n->refct.load(std::memory_order_relaxed);
      bool dying;
      for (;;) {
        assert((old & kCountMask) != 0 && "refcount underflow");
        dying = old == 1 && n->kind == Node::Kind::kInterior;
        const std::uint64_t desired = dying ? kFreeBit : old - 1;
        if (n->refct.compare_exchange_weak(old, desired,
                                           std::memory_order_acq_rel,
                                           std::memory_order_relaxed)) {
          break;
        }
      }
      if (!dying) continue;
      pending.push_back(n->succ.load().right);
      pending.push_back(n->backlink.load(std::memory_order_acquire));
      pending.push_back(n->down);
      if (n->tower_root != n) pending.push_back(n->tower_root);
      recycle(n);
    }
  }

  // Drop a never-linked node: its stored succ was never counted.
  void abandon(Node* node) const {
    node->succ.store_unsynchronized(View{nullptr, false, false});
    release(node);
  }

  // ---- arena / free list ----------------------------------------------------

  Node* allocate(typename Node::Kind kind, int level, Key k, T v, Node* down,
                 Node* root) const {
    Node* n = nullptr;
    {
      std::lock_guard lock(free_mu_);
      if (free_head_ != nullptr) {
        n = free_head_;
        free_head_ = n->free_next;
        --free_count_;
      }
    }
    if (n != nullptr) {
      n->refct.fetch_add(1, std::memory_order_acq_rel);
      n->refct.fetch_and(~kFreeBit, std::memory_order_acq_rel);
      n->succ.store_unsynchronized(View{nullptr, false, false});
      n->backlink.store(nullptr, std::memory_order_relaxed);
      n->free_next = nullptr;
    } else {
      n = new Node;
      n->refct.store(1, std::memory_order_relaxed);
      std::lock_guard lock(free_mu_);
      n->arena_next = arena_head_;
      arena_head_ = n;
      ++arena_count_;
    }
    n->kind = kind;
    n->level = level;
    n->key = std::move(k);
    n->value = std::move(v);
    n->down = down;
    n->tower_root = root == nullptr ? n : root;
    // Immutable outgoing links are counted at creation and released when
    // the node is freed.
    if (down != nullptr) down->refct.fetch_add(1, std::memory_order_acq_rel);
    if (root != nullptr) root->refct.fetch_add(1, std::memory_order_acq_rel);
    return n;
  }

  void recycle(Node* n) const {
    stats::tls().node_retired.inc();
    stats::tls().node_freed.inc();
    // kFreeBit was set by the dying transition in release(); bump the reuse
    // stamp before the node can be reallocated (see fr_list_rc.h).
    n->stamp.fetch_add(1, std::memory_order_release);
    std::lock_guard lock(free_mu_);
    n->free_next = free_head_;
    free_head_ = n;
    ++free_count_;
  }

  // ---- ordering helpers -------------------------------------------------------

  bool node_lt(const Node* n, const Key& k) const {
    if (n->kind == Node::Kind::kHead) return true;
    if (n->kind == Node::Kind::kTail) return false;
    return comp_(n->key, k);
  }
  bool node_le(const Node* n, const Key& k) const {
    if (n->kind == Node::Kind::kHead) return true;
    if (n->kind == Node::Kind::kTail) return false;
    return !comp_(k, n->key);
  }
  bool node_eq(const Node* n, const Key& k) const {
    return n->kind == Node::Kind::kInterior && !comp_(n->key, k) &&
           !comp_(k, n->key);
  }

  static Xoshiro256& tls_rng() {
    thread_local Xoshiro256 rng(
        0xa0761d6478bd642fULL ^
        std::hash<std::thread::id>{}(std::this_thread::get_id()));
    return rng;
  }

  void raise_top_hint(int level) const noexcept {
    int top = top_hint_.load(std::memory_order_relaxed);
    while (top < level && !top_hint_.compare_exchange_weak(
                              top, level, std::memory_order_relaxed)) {
    }
  }

  // ---- finger (search hint) layer ------------------------------------------

  static constexpr bool kFingerActive = Finger::kEnabled;
  static constexpr int kWays = sync::kFingerCacheWays;
  static constexpr int kFingerLevels =
      4 < kMaxTowerHeight ? 4 : kMaxTowerHeight;

  // Ways cache the bracket KEYS alongside the pred pointer; the probe is
  // deref-free, and the keys are trusted only after finger_try_hold
  // succeeds with an equal stamp (same incarnation => same key).
  struct FingerSlot {
    std::uint64_t instance = 0;
    struct Entry {
      Node* pred = nullptr;
      std::uint64_t stamp = 0;
      Key pred_key{};  // meaningful unless pred_head
      Key succ_key{};  // meaningful unless succ_tail
      bool pred_head = false;
      bool succ_tail = false;
      std::uint8_t freq = 0;  // hit counter (aged by finger_victim_pick)
    };
    struct Level {
      Entry way[kWays] = {};
      unsigned hand = 0;   // tie rotation for victim selection
      unsigned ticks = 0;  // replacements since the last aging pass
    };
    Level level[kFingerLevels + 1];  // [1..kFingerLevels]; [0] unused
  };

  // Identical protocol to fr_list_rc.h::finger_try_hold; the soundness
  // argument (RMW on the count word sees the dying transition's atomic
  // free-bit, and synchronizes with allocate() so the stamp check sees any
  // recycle) lives there.
  bool finger_try_hold(Node* n, std::uint64_t stamp) const {
    const std::uint64_t old = n->refct.fetch_add(1, std::memory_order_acq_rel);
    if ((old & kFreeBit) != 0 || (old & kCountMask) == 0) {
      n->refct.fetch_sub(1, std::memory_order_acq_rel);  // raw undo
      return false;
    }
    if (n->stamp.load(std::memory_order_acquire) != stamp) {
      release(n);  // live node, but a later incarnation
      return false;
    }
    return true;
  }

  // Level the plain head descent would enter at.
  int head_entry_level(int v) const noexcept {
    int curr_v = top_hint_.load(std::memory_order_relaxed) + 1;
    if (curr_v > MaxLevel) curr_v = MaxLevel;
    if (curr_v < v) curr_v = v;
    return curr_v;
  }

  // Picks a validated, COUNTED entry point: (start node, level), or
  // (nullptr, 0) for a head descent. Scans cached levels from
  // max(v, min_level) upward, probing each level's ways deref-free
  // (bracket containing k, tightest pred key first) and paying a counted
  // finger_try_hold only for the probe winner; a hold/stamp failure kills
  // the way and falls through to the next level. Hit/miss accounting
  // covers exactly the finger-eligible searches (lo <= kFingerLevels) —
  // see fr_skiplist.h::finger_start.
  template <bool Closed>
  std::pair<Node*, int> finger_start(const Key& k, int v,
                                     int min_level) const {
    auto& c = stats::tls();
    const int lo = min_level > v ? min_level : v;
    if (lo > kFingerLevels) return {nullptr, 0};  // never eligible
    auto& slot = sync::tls_finger_slot<FingerSlot>(finger_id_);
    if (slot.instance == finger_id_) {
      for (int lvl = lo; lvl <= kFingerLevels; ++lvl) {
        auto& lv = slot.level[lvl];
        // Equality admitted only for a Closed level-1 search at its own
        // target (same superfluous-node argument as fr_skiplist.h).
        const bool allow_eq = Closed && lvl == v && v == 1;
        int w = -1;
        for (int i = 0; i < kWays; ++i) {
          const auto& e = lv.way[i];
          if (e.pred == nullptr) continue;
          if (!e.pred_head &&
              (allow_eq ? comp_(k, e.pred_key) : !comp_(e.pred_key, k)))
            continue;
          if (!e.succ_tail && comp_(e.succ_key, k)) continue;
          if (w < 0 ||
              (!e.pred_head && (lv.way[w].pred_head ||
                                comp_(lv.way[w].pred_key, e.pred_key))))
            w = i;
        }
        if (w < 0) continue;
        auto& e = lv.way[w];
        if (!finger_try_hold(e.pred, e.stamp)) {
          e.pred = nullptr;  // recycled since the save: dead way
          continue;
        }
        Node* start = e.pred;
        LF_CHAOS_POINT(kSkipFingerValidate);
        // Marked pred: recover leftward. Sound at ANY level here — every
        // node is individually counted, so the walk's safe reads need no
        // retired-address argument (unlike the hazard variant).
        walk_backlinks(start);
        if (start->succ.load().mark) {
          release(start);
          continue;  // try the next level up
        }
        sync::finger_freq_bump(e.freq);
        c.finger_hit.inc();
        const int head_v = head_entry_level(v);
        if (head_v > lvl)
          c.finger_skip.inc(static_cast<std::uint64_t>(head_v - lvl));
        return {start, lvl};
      }
    }
    LF_CHAOS_POINT(kSkipFingerFallback);
    c.finger_miss.inc();
    return {nullptr, 0};
  }

  // Remember the (pred, succ) pair a level's SearchRight returned — both
  // held by the caller — as a way of this level's set. Only raw pointers,
  // keys, and stamps are kept; no count survives the caller's release.
  void save_finger(int lvl, Node* pred, Node* succ) const {
    if constexpr (kFingerActive) {
      if (lvl > kFingerLevels) return;
      auto& slot = sync::tls_finger_slot<FingerSlot>(finger_id_);
      if (slot.instance != finger_id_) {
        // Claim the direct-mapped TLS slot: ways from another instance
        // must never be probed as ours.
        for (int l = 1; l <= kFingerLevels; ++l)
          slot.level[l] = typename FingerSlot::Level();
        slot.instance = finger_id_;
      }
      auto& lv = slot.level[lvl];
      int w = -1;
      for (int i = 0; i < kWays; ++i)
        if (lv.way[i].pred == pred) { w = i; break; }
      const bool refresh = w >= 0;
      if (!refresh) {
        LF_CHAOS_POINT(kSkipFingerReplace);
        w = sync::finger_victim_pick(
            lv.way, kWays, lv.hand, lv.ticks,
            [](const typename FingerSlot::Entry& e) {
              return e.pred == nullptr;
            });
      }
      auto& e = lv.way[w];
      e.pred = pred;
      e.stamp = pred->stamp.load(std::memory_order_acquire);
      e.pred_head = pred->kind == Node::Kind::kHead;
      if (!e.pred_head) e.pred_key = pred->key;
      e.succ_tail = succ->kind == Node::Kind::kTail;
      if (!e.succ_tail) e.succ_key = succ->key;
      // New ways start at frequency zero (probation); refreshes bump, so
      // the hot set is retained against the cold-miss flow.
      if (refresh) sync::finger_freq_bump(e.freq);
      else e.freq = 0;
    }
  }

  // ---- skip-list search (counted) ------------------------------------------

  // Returns counted (n1, n2) on level v. min_finger_level lets erase's
  // tower-cleanup sweep refuse finger entry points entirely (it passes
  // MaxLevel): the sweep must descend from above the tower it clears, and
  // the RC variant does not track tower tops, so any finger entry could
  // skip superfluous nodes above it.
  template <bool Closed>
  std::pair<Node*, Node*> search_to_level(const Key& k, int v,
                                          int min_finger_level = 0) const {
    Node* curr = nullptr;
    int curr_v = 0;
    if constexpr (kFingerActive)
      std::tie(curr, curr_v) = finger_start<Closed>(k, v, min_finger_level);
    if (curr == nullptr) {
      curr_v = head_entry_level(v);
      curr = acquire(head_[curr_v]);
    }
    while (curr_v > v) {
      auto [c2, n2] = search_right<false>(k, curr);  // consumes curr
      if constexpr (kFingerActive) save_finger(curr_v, c2, n2);
      release(n2);
      // Descend: c2->down is an immutable counted link, so its target is
      // alive while we hold c2; take a reference before letting c2 go.
      Node* below = acquire(c2->down);
      release(c2);
      curr = below;
      --curr_v;
    }
    auto out = search_right<Closed>(k, curr);
    if constexpr (kFingerActive) save_finger(v, out.first, out.second);
    return out;
  }

  // Consumes curr; returns counted (n1, n2).
  template <bool Closed>
  std::pair<Node*, Node*> search_right(const Key& k, Node* curr) const {
    auto& c = stats::tls();
    auto advances = [&](const Node* n) {
      return Closed ? node_le(n, k) : node_lt(n, k);
    };
    Node* next = safe_read_succ(curr);
    for (;;) {
      // Superfluous-tower removal (root marked), trigger key <= k in both
      // modes — see fr_skiplist.h for why.
      while (next->kind == Node::Kind::kInterior && node_le(next, k) &&
             next->tower_root->succ.load().mark) {
        auto [new_curr, status, won] = try_flag_node(curr, next);  // eats curr
        (void)won;
        curr = new_curr;
        if (status == FlagStatus::kIn) help_flagged(curr, next);
        release(next);
        next = safe_read_succ(curr);
        c.next_update.inc();
      }
      if (!advances(next)) break;
      release(curr);
      curr = next;
      c.curr_update.inc();
      next = safe_read_succ(curr);
    }
    return {curr, next};
  }

  // ---- level-local deletion machinery (counted) -----------------------------

  void help_marked(Node* prev, Node* del) const {
    stats::tls().help_marked.inc();
    Node* next = safe_read_succ(del);
    next->refct.fetch_add(1, std::memory_order_acq_rel);  // would-be link
    const View result =
        prev->succ.cas(View{del, false, true}, View{next, false, false});
    if (result == View{del, false, true}) {
      stats::tls().pdelete_cas.inc();
      release(del);  // prev->del link removed
    } else {
      release(next);  // roll back the pre-count
    }
    release(next);
  }

  void help_flagged(Node* prev, Node* del) const {
    stats::tls().help_flagged.inc();
    if (del->backlink.load(std::memory_order_acquire) == nullptr) {
      prev->refct.fetch_add(1, std::memory_order_acq_rel);
      Node* expected = nullptr;
      if (!del->backlink.compare_exchange_strong(
              expected, prev, std::memory_order_acq_rel)) {
        release(prev);
      }
    }
    if (!del->succ.load().mark) try_mark(del);
    help_marked(prev, del);
  }

  void help_flagged_at(Node* prev) const {
    const View v = prev->succ.load();
    if (!v.flag) return;
    Node* del = safe_read_succ(prev);
    if (prev->succ.load() == View{del, false, true}) help_flagged(prev, del);
    release(del);
  }

  void try_mark(Node* del) const {
    do {
      Node* next = safe_read_succ(del);
      const View result =
          del->succ.cas(View{next, false, false}, View{next, true, false});
      if (result == View{next, false, false}) {
        stats::tls().mark_cas.inc();
      } else if (result.flag && !result.mark) {
        help_flagged_at(del);
      }
      release(next);
    } while (!del->succ.load().mark);
  }

  void walk_backlinks(Node*& prev) const {
    auto& c = stats::tls();
    std::uint64_t chain = 0;
    while (prev->succ.load().mark) {
      Node* back = safe_read_backlink(prev);
      if (back == nullptr) break;
      release(prev);
      prev = back;
      c.backlink_traversal.inc();
      ++chain;
    }
    if (chain > 0) stats::chain_hist_tls().record(chain);
  }

  enum class FlagStatus { kIn, kDeleted };

  // Consumes prev; returns (counted prev', status, this-call-won-the-flag).
  std::tuple<Node*, FlagStatus, bool> try_flag_node(Node* prev,
                                                    Node* target) const {
    for (;;) {
      if (prev->succ.load() == View{target, false, true}) {
        return {prev, FlagStatus::kIn, false};
      }
      const View result = prev->succ.cas(View{target, false, false},
                                         View{target, false, true});
      if (result == View{target, false, false}) {
        stats::tls().flag_cas.inc();
        return {prev, FlagStatus::kIn, true};
      }
      if (result == View{target, false, true}) {
        return {prev, FlagStatus::kIn, false};
      }
      walk_backlinks(prev);
      auto [new_prev, del] = search_right<false>(target->key, prev);
      if (del != target) {
        release(del);
        return {new_prev, FlagStatus::kDeleted, false};
      }
      release(del);
      prev = new_prev;
    }
  }

  // Three-step deletion of `del` on its level; both args stay owned by the
  // caller. Returns whether THIS call's flag initiated the deletion.
  bool delete_node_at(Node* prev, Node* del) const {
    Node* p = acquire(prev);
    auto [p2, status, won] = try_flag_node(p, del);
    if (status == FlagStatus::kIn) help_flagged(p2, del);
    release(p2);
    return won;
  }

  // Level-local insert loop; consumes nothing, returns counted prev'.
  std::pair<Node*, InsertResult> insert_node(Node* node, Node* prev_in,
                                             Node* next_in) const {
    auto& c = stats::tls();
    const Key& k = node->key;
    Node* prev = acquire(prev_in);
    Node* next = acquire(next_in);
    if (node_eq(prev, k)) {
      release(next);
      return {prev, InsertResult::kDuplicate};
    }
    for (;;) {
      const View prev_succ = prev->succ.load();
      if (prev_succ.flag) {
        help_flagged_at(prev);
      } else {
        node->succ.store_unsynchronized(View{next, false, false});
        const View result =
            prev->succ.cas(View{next, false, false}, View{node, false, false});
        if (result == View{next, false, false}) {
          c.insert_cas.inc();
          node->refct.fetch_add(1, std::memory_order_acq_rel);  // the link
          release(next);
          return {prev, InsertResult::kInserted};
        }
        if (result.flag && !result.mark) help_flagged_at(prev);
        walk_backlinks(prev);
      }
      release(next);
      std::tie(prev, next) = search_right<true>(k, prev);
      if (node_eq(prev, k)) {
        release(next);
        return {prev, InsertResult::kDuplicate};
      }
    }
  }

  Compare comp_;
  std::array<Node*, MaxLevel + 1> head_{};
  Node* tail_;
  mutable std::atomic<int> top_hint_{1};
  const std::uint64_t finger_id_ = sync::next_finger_instance();

  mutable std::mutex free_mu_;
  mutable Node* free_head_ = nullptr;
  mutable Node* arena_head_ = nullptr;
  mutable std::size_t free_count_ = 0;
  mutable std::size_t arena_count_ = 0;
};

}  // namespace lf
