// FRList — the lock-free sorted singly-linked list of Fomitchev & Ruppert,
// "Lock-Free Linked Lists and Skip Lists", PODC 2004, Section 3.
//
// The data structure is a sorted singly-linked list between two sentinel
// nodes (head = -inf, tail = +inf). Each node carries
//
//     succ     = (right pointer, mark bit, flag bit) in one CAS-able word
//     backlink = pointer to the node's predecessor, set when it is deleted
//
// Deletion of node B with predecessor A is the paper's three-step protocol
// (Figure 2):
//
//     1. FLAG      C&S A.succ (B,0,0) -> (B,0,1).  A's successor field is
//                  now frozen: it cannot be redirected or marked until the
//                  flag is removed, so B's backlink — about to be set to A —
//                  will never point at a marked node.
//     2. MARK      set B.backlink = A, then C&S B.succ (C,0,0) -> (C,1,0).
//                  B is now logically deleted; a marked successor field
//                  never changes again.
//     3. UNLINK    C&S A.succ (B,0,1) -> (C,0,0): physically deletes B and
//                  removes A's flag in the same step.
//
// An operation that fails a C&S because its target node got marked does NOT
// restart from the head (Harris-style); it walks backlink pointers left
// until it reaches an unmarked node and resumes from there. Because a node
// is only marked while its predecessor is flagged — and a flagged node can
// never be marked — backlink chains only ever grow to the LEFT, which is
// precisely what bounds the recovery cost and yields the paper's amortized
// bound  t̂(S) = O(n(S) + c(S))  (Section 3.4).
//
// Processes help one another (HelpFlagged / HelpMarked) so that a stalled
// deleter can never block anyone: the implementation is lock-free.
//
// Linearization points (Section 3.3): successful insert at its successful
// C&S; successful delete when the node becomes marked; searches at the
// moment the SearchFrom postcondition (n1 unmarked and n1.right = n2) holds.
//
// Template parameters:
//   Key, T      key and mapped value. Both must be default-constructible
//               (sentinels value-initialize them) and T must be copyable
//               (find() returns a copy made while the node is guarded).
//   Compare     strict weak order on Key.
//   Reclaimer   memory-reclamation policy (see lf/reclaim/reclaimer.h).
//               Defaults to epoch-based reclamation, which is safe here
//               even though searches may traverse backlinks into
//               physically deleted nodes (argument in lf/reclaim/epoch.h).
//   Alloc       node allocation policy (see lf/mem/pool.h). Defaults to the
//               per-thread segment pool: nodes come out 64-byte aligned in
//               whole cache lines (no false sharing between neighbours) and
//               a freed node is recycled only after the reclaimer's grace
//               period, so reuse is ABA-safe. mem::HeapAlloc restores the
//               global allocator for the ablation benches.
//
// Instrumentation: every C&S, backlink traversal and search pointer update
// is tallied in lf::stats — the exact step set the paper's amortized
// analysis counts (Section 3.4) — so benchmarks can reproduce the paper's
// cost claims in its own units.
#pragma once

#include <cassert>
#include <cstddef>
#include <functional>
#include <new>
#include <optional>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "lf/chaos/chaos.h"
#include "lf/instrument/counters.h"
#include "lf/mem/pool.h"
#include "lf/reclaim/epoch.h"
#include "lf/reclaim/leaky.h"
#include "lf/reclaim/reclaimer.h"
#include "lf/sync/backoff.h"
#include "lf/sync/finger.h"
#include "lf/sync/succ_field.h"
#include "lf/util/prefetch.h"

namespace lf {

// The extra template parameters beyond the paper's algorithm:
//   Finger      sync::FingerOn (default) caches each thread's last search
//               result per structure and starts the next search there when
//               the reclaimer policy can re-validate it (sync/finger.h).
//               sync::FingerOff compiles the layer out entirely.
template <typename Key, typename T = Key, typename Compare = std::less<Key>,
          typename Reclaimer = reclaim::EpochReclaimer,
          typename Alloc = mem::PoolAlloc, typename Finger = sync::FingerOn>
class FRList {
 public:
  using key_type = Key;
  using mapped_type = T;
  using key_compare = Compare;

  struct Node;

 private:
  using Succ = sync::SuccField<Node>;
  using View = sync::SuccView<Node>;

 public:
  // Node layout. Public so that white-box tests and the skip list (which
  // reuses these routines per level) can inspect structure; user code should
  // treat nodes as opaque.
  struct alignas(8) Node {
    enum class Kind : unsigned char { kHead, kInterior, kTail };

    Kind kind;
    Key key;    // value-initialized for sentinels
    T value;    // value-initialized for sentinels
    Succ succ;
    std::atomic<Node*> backlink{nullptr};

    Node(Kind k, Key key_arg, T value_arg)
        : kind(k), key(std::move(key_arg)), value(std::move(value_arg)) {}

    // Route every `new Node` / `delete node` — including the reclaimer's
    // deferred deletes — through the allocation policy. The sized overload
    // is all that's needed; the compiler always knows the node size here.
    static void* operator new(std::size_t bytes) {
      return Alloc::allocate(bytes);
    }
    static void operator delete(void* p, std::size_t bytes) {
      Alloc::deallocate(p, bytes);
    }
  };

  FRList() : FRList(Compare{}, Reclaimer{}) {}
  explicit FRList(Reclaimer reclaimer) : FRList(Compare{}, std::move(reclaimer)) {}
  FRList(Compare comp, Reclaimer reclaimer)
      : comp_(std::move(comp)), reclaimer_(std::move(reclaimer)) {
    head_ = new Node(Node::Kind::kHead, Key{}, T{});
    tail_ = new Node(Node::Kind::kTail, Key{}, T{});
    head_->succ.store_unsynchronized(View{tail_, false, false});
    tail_->succ.store_unsynchronized(View{nullptr, false, false});
  }

  // Destruction requires quiescence (no concurrent operations), like every
  // concurrent container's destructor. Frees all nodes still linked;
  // physically deleted nodes were already handed to the reclaimer.
  ~FRList() {
    if constexpr (kFingerActive && FingerPol::kPublishes) {
      // Other threads' retained hazard slots may still point into this
      // list, and a concurrent scan would WALK them (dereferencing nodes
      // we are about to free directly). Null every slot carrying this
      // instance's tag first; the call excludes in-flight chain walks, so
      // afterwards no scanner can touch our nodes.
      reclaimer_.finger_invalidate(finger_id_);
    }
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->succ.load().right;
      delete n;
      n = next;
    }
  }

  FRList(const FRList&) = delete;
  FRList& operator=(const FRList&) = delete;

  // ---- Dictionary operations (paper Figures 3-5) ----------------------

  // insert_checked distinguishes "key already present" from "allocation
  // failed": a node allocation that throws std::bad_alloc is absorbed
  // before anything is linked, so the structure is untouched.
  enum class InsertStatus { kInserted, kDuplicate, kNoMemory };

  // INSERT(k, e): true on success, false if the key is already present.
  bool insert(const Key& k, T value) {
    return insert_checked(k, std::move(value)) == InsertStatus::kInserted;
  }

  InsertStatus insert_checked(const Key& k, T value) {
    [[maybe_unused]] auto guard = reclaimer_.guard();
    auto [prev, next] = search_entry<true>(k);
    if (node_eq(prev, k)) {
      stats::tls().op_insert.inc();
      return InsertStatus::kDuplicate;  // DUPLICATE_KEY
    }
    Node* node = nullptr;
    try {
      node = new Node(Node::Kind::kInterior, k, std::move(value));
    } catch (const std::bad_alloc&) {
      stats::tls().op_insert.inc();
      return InsertStatus::kNoMemory;  // nothing linked, nothing leaked
    }
    const bool inserted = insert_loop(node, prev, next);
    stats::tls().op_insert.inc();
    return inserted ? InsertStatus::kInserted : InsertStatus::kDuplicate;
  }

  // DELETE(k): true if this operation deleted the key, false otherwise
  // (absent, or a concurrent deletion of the same node wins).
  bool erase(const Key& k) {
    [[maybe_unused]] auto guard = reclaimer_.guard();
    // SearchFrom(k - eps): prev.key < k <= del.key, per Delete line 1.
    auto [prev, del] = search_entry<false>(k);
    bool erased = false;
    if (node_eq(del, k)) {
      auto [flag_prev, result] = try_flag(prev, del);
      if (flag_prev != nullptr) help_flagged(flag_prev, del);
      erased = result;
    }
    stats::tls().op_erase.inc();
    return erased;
  }

  // SEARCH(k): copy of the mapped value, or nullopt.
  std::optional<T> find(const Key& k) const {
    [[maybe_unused]] auto guard = reclaimer_.guard();
    auto [curr, next] = search_entry<true>(k);
    (void)next;
    std::optional<T> out;
    if (node_eq(curr, k)) out.emplace(curr->value);
    stats::tls().op_search.inc();
    return out;
  }

  bool contains(const Key& k) const {
    [[maybe_unused]] auto guard = reclaimer_.guard();
    auto [curr, next] = search_entry<true>(k);
    (void)next;
    stats::tls().op_search.inc();
    return node_eq(curr, k);
  }

  // ---- Snapshot / diagnostic helpers -----------------------------------

  // Number of unmarked (regular) interior nodes. O(n); a linearizable size
  // is impossible to maintain cheaply on a lock-free list, so under
  // concurrency this is a point-in-traversal approximation.
  std::size_t size() const {
    [[maybe_unused]] auto guard = reclaimer_.guard();
    std::size_t n = 0;
    for (Node* p = head_->succ.load().right; p->kind != Node::Kind::kTail;
         p = p->succ.load().right) {
      if (!p->succ.load().mark) ++n;
    }
    return n;
  }

  bool empty() const { return size() == 0; }

  // Visits (key, value) of every regular node in key order. Weakly
  // consistent under concurrency (like every lock-free iteration).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    [[maybe_unused]] auto guard = reclaimer_.guard();
    for (Node* p = head_->succ.load().right; p->kind != Node::Kind::kTail;
         p = p->succ.load().right) {
      if (!p->succ.load().mark) fn(p->key, p->value);
    }
  }

  std::vector<Key> keys() const {
    std::vector<Key> out;
    for_each([&](const Key& k, const T&) { out.push_back(k); });
    return out;
  }

  // ---- Invariant validation (tests; requires quiescence) ---------------

  struct ValidationReport {
    bool ok = true;
    std::size_t node_count = 0;
    std::string error;
  };

  // Checks the paper's INV 1-5 as they manifest at a quiescent point: the
  // list from head to tail is strictly sorted, and no linked node is marked
  // or flagged (all deletions, once begun, complete before their operation
  // returns, so quiescence implies no logically deleted nodes remain).
  ValidationReport validate() const {
    ValidationReport rep;
    const Node* prev = head_;
    View pv = prev->succ.load();
    if (pv.mark || pv.flag) return fail(rep, "head marked or flagged");
    const Node* curr = pv.right;
    while (curr->kind != Node::Kind::kTail) {
      const View cv = curr->succ.load();
      if (cv.mark) return fail(rep, "linked node is marked at quiescence");
      if (cv.flag) return fail(rep, "linked node is flagged at quiescence");
      if (cv.mark && cv.flag) return fail(rep, "INV5 violated");
      if (prev->kind == Node::Kind::kInterior &&
          !comp_(prev->key, curr->key)) {
        return fail(rep, "INV1 violated: keys not strictly sorted");
      }
      ++rep.node_count;
      prev = curr;
      curr = cv.right;
      if (curr == nullptr) return fail(rep, "list does not reach tail");
    }
    return rep;
  }

  // ---- Two-phase insertion hooks (benchmark adversary; Section 3.1) ----
  //
  // The paper's lower-bound execution for Harris's list requires the
  // scheduler to stop inserters between "located the insertion position"
  // and "performed the C&S". These hooks expose exactly that seam so the
  // adversary driver can realize the schedule deterministically. Use with
  // LeakyReclaimer (no guard needs to span the phases) or under external
  // quiescence between phases.
  struct InsertCursor {
    Key key{};
    Node* prev = nullptr;
    Node* next = nullptr;
    Node* node = nullptr;  // allocated, unlinked
  };

  // Phase 1: the initial SearchFrom + duplicate check + node allocation
  // (Insert lines 1-4). Returns false (and allocates nothing) on duplicate.
  bool insert_locate(const Key& k, T value, InsertCursor& cur) {
    [[maybe_unused]] auto guard = reclaimer_.guard();
    auto [prev, next] = search_from<true>(k, head_);
    if (node_eq(prev, k)) return false;
    cur.key = k;
    cur.prev = prev;
    cur.next = next;
    cur.node = new Node(Node::Kind::kInterior, k, std::move(value));
    return true;
  }

  // Phase 2: the Insert retry loop (lines 5-22), including recovery via
  // backlinks when the located predecessor got marked in between.
  bool insert_complete(InsertCursor& cur) {
    [[maybe_unused]] auto guard = reclaimer_.guard();
    const bool inserted = insert_loop(cur.node, cur.prev, cur.next);
    stats::tls().op_insert.inc();
    cur.node = nullptr;
    return inserted;
  }

  // Phase 2 alternative: exactly ONE iteration of the Insert retry loop —
  // one C&S attempt and, on failure, one recovery (help / backlink walk /
  // SearchFrom). The adversary interposes a deletion between iterations,
  // which is precisely the schedule of the paper's Section 3.1 lower bound.
  enum class TryResult { kInserted, kRetry, kDuplicate };

  TryResult insert_try_once(InsertCursor& cur) {
    [[maybe_unused]] auto guard = reclaimer_.guard();
    auto& c = stats::tls();
    Node* prev = cur.prev;
    Node* next = cur.next;
    const View prev_succ = prev->succ.load();
    if (prev_succ.flag) {
      help_flagged(prev, prev_succ.right);
    } else {
      cur.node->succ.store_unsynchronized(View{next, false, false});
      const View result =
          chaos_cas(chaos::Site::kListInsertCas, prev->succ,
                    View{next, false, false}, View{cur.node, false, false});
      if (result == View{next, false, false}) {
        c.insert_cas.inc();
        c.op_insert.inc();
        cur.node = nullptr;
        return TryResult::kInserted;
      }
      if (result.flag && !result.mark) help_flagged(prev, result.right);
      std::uint64_t chain = 0;
      while (prev->succ.load().mark) {
        LF_CHAOS_POINT(kListBacklinkStep);
        c.backlink_traversal.inc();
        ++chain;
        prev = prev->backlink.load(std::memory_order_acquire);
      }
      if (chain > 0) stats::chain_hist_tls().record(chain);
    }
    std::tie(prev, next) = search_from<true>(cur.key, prev);
    if (node_eq(prev, cur.key)) {
      delete cur.node;
      cur.node = nullptr;
      c.op_insert.inc();
      return TryResult::kDuplicate;
    }
    cur.prev = prev;
    cur.next = next;
    return TryResult::kRetry;
  }

  // ---- Stalled-deleter hooks (tests; Section 3.3 helping paths) --------
  //
  // A lock-free algorithm must tolerate a deleter that performs the FIRST
  // deletion step (flagging the predecessor) and then stops forever — any
  // other operation that runs into the flag must help the deletion to
  // completion. These hooks create exactly that state so tests can verify
  // each helping path deterministically. erase_begin performs Delete lines
  // 1-4 (search + TryFlag) and returns WITHOUT calling HelpFlagged;
  // erase_finish resumes the stalled operation (idempotent: helpers may
  // have completed it already).
  struct StalledErase {
    Node* prev = nullptr;
    Node* del = nullptr;
    bool flagged = false;  // whether THIS operation placed the flag
  };

  bool erase_begin(const Key& k, StalledErase& out) {
    [[maybe_unused]] auto guard = reclaimer_.guard();
    auto [prev, del] = search_from<false>(k, head_);
    if (!node_eq(del, k)) return false;
    auto [flag_prev, result] = try_flag(prev, del);
    out.prev = flag_prev;
    out.del = del;
    out.flagged = result;
    return flag_prev != nullptr;
  }

  // Completes the stalled deletion; returns whether the stalled operation
  // reports success (it placed the flag, so the deletion is "its").
  bool erase_finish(StalledErase& st) {
    [[maybe_unused]] auto guard = reclaimer_.guard();
    if (st.prev != nullptr) help_flagged(st.prev, st.del);
    stats::tls().op_erase.inc();
    return st.flagged;
  }

  // Direct access for white-box tests and the adversary driver.
  Node* head() const noexcept { return head_; }
  Node* tail() const noexcept { return tail_; }
  Reclaimer& reclaimer() noexcept { return reclaimer_; }

 private:
  // ---- Chaos instrumentation -------------------------------------------
  //
  // Every protocol C&S goes through this wrapper. With LF_CHAOS off it
  // inlines to the bare primitive. With chaos on, the site becomes an
  // injection point, and an armed forced failure returns a view matching
  // no caller's success or helping pattern — callers then re-read real
  // state and take their recovery path (retry / help / backlink walk)
  // exactly as if a concurrent thread had won the C&S.
  static View chaos_cas([[maybe_unused]] chaos::Site site, Succ& field,
                        View expected, View desired) {
#if LF_CHAOS
    chaos::point(site);
    if (chaos::force_cas_fail(site)) {
      stats::tls().cas_attempt.inc();  // a failed attempt is still a step
      return View{nullptr, true, false};
    }
#endif
    return field.cas(expected, desired);
  }

  // ---- Key/sentinel ordering helpers -----------------------------------
  // Sentinels hold no real keys; kHead compares below and kTail above
  // every key, realizing the paper's -inf/+inf dummy keys for arbitrary
  // key types.

  bool node_lt(const Node* n, const Key& k) const {  // n.key < k
    if (n->kind == Node::Kind::kHead) return true;
    if (n->kind == Node::Kind::kTail) return false;
    return comp_(n->key, k);
  }

  bool node_le(const Node* n, const Key& k) const {  // n.key <= k
    if (n->kind == Node::Kind::kHead) return true;
    if (n->kind == Node::Kind::kTail) return false;
    return !comp_(k, n->key);
  }

  bool node_eq(const Node* n, const Key& k) const {
    return n->kind == Node::Kind::kInterior && !comp_(n->key, k) &&
           !comp_(k, n->key);
  }

  // ---- Finger (search hint) layer — see sync/finger.h and DESIGN.md §10 --
  //
  // Each thread remembers, per list instance, a small set-associative cache
  // of recent search results: kWays ways, each holding the n1 node a search
  // returned together with the bracket of keys it serves ([n1.key,
  // n2.key]) and the reclaimer's validity token. The next top-level search
  // probes for the way whose bracket contains the new key — a hot-set
  // repeat lands in its own way even when the hot keys are positionally
  // scattered — falling back to the way with the closest key still left of
  // k (any unmarked node with key < k is a valid start), and to the head
  // when no way validates. A finger that was marked in the meantime is
  // recovered through its backlink chain — the exact recovery a failed C&S
  // performs. Replacement is least-frequently-hit with aging
  // (sync::finger_victim_pick); a bracket hit refreshes its own way in
  // place and bumps its frequency counter. Only the public entry points use fingers; the
  // two-phase adversary hooks (insert_locate / insert_try_once /
  // erase_begin) keep their head starts so the paper's lower-bound
  // schedules stay reproducible.
  //
  // Publishing policies (FingerPol::kPublishes — hazard pointers) replace
  // the token proof with publish-then-revalidate: the save additionally
  // publishes every way into the thread's retained hazard slots (way i in
  // entry i; the refreshed way republishes a provably live node, the others
  // are kept only if still continuously protected), reuse re-acquires the
  // probed way by slot match before the first dereference, and every
  // backlink hop of a recovery walk is published into the hop slot before
  // it is followed (reclaim/hazard.h, DESIGN.md §10).

  using FingerPol = sync::FingerPolicy<Reclaimer>;
  static constexpr bool kFingerActive =
      Finger::kEnabled && FingerPol::kSupported;
  static constexpr int kWays = sync::kFingerCacheWays;
  static_assert(!FingerPol::kPublishes || kWays <= FingerPol::kPublishedWays,
                "every list cache way needs its own retained hazard entry");

  // Each way caches the node's key and its successor's key (immutable while
  // the token validates, since a validating token proves the node
  // unreclaimed) so bracket probing never touches a cold node: only the
  // way that wins the probe is dereferenced, for the mark check.
  struct FingerSlot {
    struct Way {
      std::uint64_t token = 0;
      Node* node = nullptr;
      Key key{};              // bracket low end; meaningful unless is_head
      Key succ_key{};         // bracket high end; meaningful unless succ_tail
      bool is_head = false;   // head sentinel compares below every key
      bool succ_tail = false; // tail sentinel compares above every key
      std::uint8_t freq = 0;  // hit counter (aged by finger_victim_pick)
    };
    std::uint64_t instance = 0;
    Way way[kWays] = {};
    unsigned hand = 0;   // tie rotation for victim selection
    unsigned ticks = 0;  // replacements since the last aging pass
  };

  // Type-erased backlink-chain step for HazardDomain's chain-protecting
  // scan: from a published finger, scanners protect every node the owning
  // thread's recovery walk could dereference. Returns null at the first
  // unmarked node (the chain's end; unmarked nodes are never unlinked, so
  // they are alive regardless).
  static void* finger_chain_walker(void* p) {
    Node* n = static_cast<Node*>(p);
    if (!n->succ.load().mark) return nullptr;
    return n->backlink.load(std::memory_order_acquire);
  }

  // The head-or-finger search every public operation starts with.
  template <bool Closed>
  std::pair<Node*, Node*> search_entry(const Key& k) const {
    if constexpr (kFingerActive) {
      auto& slot = sync::tls_finger_slot<FingerSlot>(finger_id_);
      const std::uint64_t token = FingerPol::token(reclaimer_);
      const auto [start, bracket] = finger_start<Closed>(k, slot, token);
      auto out = search_from<Closed>(k, start != nullptr ? start : head_);
      save_finger(slot, token, out, bracket);
      return out;
    } else {
      return search_from<Closed>(k, head_);
    }
  }

  // Save this search's result into the way cache, under the token of the
  // CURRENT pin (everything reachable in this operation stays
  // dereferenceable while that token revalidates). A way already caching
  // the same node is refreshed in place, as is the bracket way that served
  // this search (its new bracket is a tightened subrange of the old one);
  // otherwise a clock victim is replaced.
  void save_finger(FingerSlot& slot, std::uint64_t token,
                   const std::pair<Node*, Node*>& out, int bracket) const {
    if (slot.instance != finger_id_) {
      slot = FingerSlot{};  // claim: stale ways must never be probed
      slot.instance = finger_id_;
    }
    int w = -1;
    for (int i = 0; i < kWays; ++i)
      if (slot.way[i].node == out.first) { w = i; break; }
    if (w < 0) w = bracket;
    const bool refresh = w >= 0;
    if (!refresh) {
      LF_CHAOS_POINT(kListFingerReplace);
      w = sync::finger_victim_pick(
          slot.way, kWays, slot.hand, slot.ticks,
          [](const typename FingerSlot::Way& e) {
            return e.node == nullptr;
          });
    }
    auto& e = slot.way[w];
    e.token = token;
    e.node = out.first;
    e.is_head = out.first == head_;
    if (!e.is_head) e.key = out.first->key;  // cache-warm reads
    e.succ_tail = out.second->kind == Node::Kind::kTail;
    if (!e.succ_tail) e.succ_key = out.second->key;
    // A refreshed way keeps earning frequency; a brand-new way starts at
    // zero — the next replacement's prime victim unless it earns a hit
    // first — so one-shot cold keys recycle through a de-facto probation
    // way instead of eroding the retained hot set.
    if (refresh) sync::finger_freq_bump(e.freq);
    else e.freq = 0;
    if constexpr (FingerPol::kPublishes) {
      // Publish-while-alive: out.first was found unmarked (hence still
      // linked, hence unreclaimed) under the current guard, so way w's
      // publication starts from a provably live node — the invariant the
      // scan-side chain-protection argument rests on. (The head sentinel
      // is published too; it is never retired, and uniformity is simpler.)
      // The OTHER ways were not revalidated by this operation, so each is
      // kept only if its retained slot still holds it — continuous
      // protection — and dropped (entry nulled, way killed) otherwise;
      // republishing the same pointer into the same slot keeps the
      // protection gapless.
      LF_CHAOS_POINT(kListFingerPublish);
      void* nodes[kWays];
      for (int i = 0; i < kWays; ++i) {
        auto& wi = slot.way[i];
        if (wi.node == nullptr) {
          nodes[i] = nullptr;
        } else if (i == w ||
                   reclaimer_.finger_reacquire(wi.node, finger_id_, i)) {
          nodes[i] = wi.node;
        } else {
          nodes[i] = nullptr;
          wi.node = nullptr;
        }
      }
      reclaimer_.finger_publish(nodes, kWays, &finger_chain_walker,
                                finger_id_, kWays);
    }
  }

  // Returns {start, way}: a validated start node with key < k (Closed:
  // key <= k) or nullptr for a head start, plus the index of the bracket
  // way that served it (-1 when the start came from the key-side fallback
  // or the head). Counts one hit or miss per search; backlink hops taken
  // here are charged as regular recovery steps.
  template <bool Closed>
  std::pair<Node*, int> finger_start(const Key& k, FingerSlot& slot,
                                     std::uint64_t token) const {
    auto& c = stats::tls();
    if (slot.instance == finger_id_) {
      // Deref-free probe over the cached brackets: prefer the way whose
      // bracket [key, succ_key] contains k (the tightest such way, by pred
      // key); otherwise the way with the largest key still on the correct
      // side of k. Every check here reads only TLS-cached fields.
      int bracket = -1, fallback = -1;
      for (int i = 0; i < kWays; ++i) {
        const auto& e = slot.way[i];
        if (e.node == nullptr || e.token != token) continue;
        if (!(e.is_head ||
              (Closed ? !comp_(k, e.key) : comp_(e.key, k))))
          continue;  // wrong side of k
        if (e.succ_tail || !comp_(e.succ_key, k)) {  // k <= succ_key
          if (bracket < 0 ||
              (!e.is_head && (slot.way[bracket].is_head ||
                              comp_(slot.way[bracket].key, e.key))))
            bracket = i;
        } else if (fallback < 0 ||
                   (!e.is_head && (slot.way[fallback].is_head ||
                                   comp_(slot.way[fallback].key, e.key)))) {
          fallback = i;
        }
      }
      const int candidates[2] = {bracket, fallback};
      for (int ci = 0; ci < 2; ++ci) {
        const int i = candidates[ci];
        if (i < 0) continue;
        auto& e = slot.way[i];
        if (e.node == nullptr) continue;
        // Publishing policies must re-acquire the retained hazard entry
        // BEFORE the first dereference: a slot mismatch means protection
        // was not continuous (evicted by another structure's save on this
        // thread, or invalidated), so the cached pointer may be freed
        // memory — kill the way without touching it.
        if constexpr (FingerPol::kPublishes) {
          if (!reclaimer_.finger_reacquire(e.node, finger_id_, i)) {
            e.node = nullptr;
            continue;
          }
        }
        LF_CHAOS_POINT(kListFingerValidate);
        Node* start = e.node;
        std::uint64_t chain = 0;
        while (start->succ.load().mark) {
          Node* back = start->backlink.load(std::memory_order_acquire);
          if (back == nullptr) break;  // defensive; marked => backlink set
          if constexpr (FingerPol::kPublishes) {
            // Publish the hop before dereferencing it (its liveness is
            // already guaranteed by the chain-protecting scan while the
            // finger entry is held; see reclaim/hazard.h).
            LF_CHAOS_POINT(kHazardFingerHop);
            reclaimer_.finger_protect_hop(back);
          }
          c.backlink_traversal.inc();
          ++chain;
          start = back;
        }
        if (chain > 0) stats::chain_hist_tls().record(chain);
        if (!start->succ.load().mark) {
          sync::finger_freq_bump(e.freq);
          c.finger_hit.inc();
          return {start, i == bracket ? i : -1};
        }
      }
    }
    LF_CHAOS_POINT(kListFingerFallback);
    c.finger_miss.inc();
    return {nullptr, -1};
  }

  // ---- SEARCHFROM (Figure 3) --------------------------------------------
  //
  // Finds consecutive nodes n1, n2 with n1.right == n2 at some time during
  // the call and n1.key <= k < n2.key (Closed = true), or
  // n1.key < k <= n2.key (Closed = false; the paper's SearchFrom(k - eps)).
  // Physically deletes the logically deleted nodes it encounters by helping
  // (line 5).
  template <bool Closed>
  std::pair<Node*, Node*> search_from(const Key& k, Node* curr) const {
    auto& c = stats::tls();
    auto advances = [&](const Node* n) {
      return Closed ? node_le(n, k) : node_lt(n, k);
    };
    Node* next = curr->succ.load().right;
    LF_PREFETCH(next);
    while (advances(next)) {
      // Ensure that either next is unmarked, or both curr and next are
      // marked and curr was marked earlier (paper lines 3-6).
      for (;;) {
        const View next_succ = next->succ.load();
        if (!next_succ.mark) break;
        const View curr_succ = curr->succ.load();
        if (curr_succ.mark && curr_succ.right == next) break;
        if (curr_succ.right == next) help_marked(curr, next);
        next = curr->succ.load().right;
        LF_PREFETCH(next);
        c.next_update.inc();  // paper line 6
      }
      if (advances(next)) {
        LF_CHAOS_POINT(kListSearchStep);
        curr = next;
        c.curr_update.inc();  // paper line 8
        // Start the next hop's line fill while this node's key compares
        // run — the dependent-load chain is the list's dominant stall
        // (util/prefetch.h).
        next = curr->succ.load().right;
        LF_PREFETCH(next);
      }
    }
    return {curr, next};
  }

  // ---- HELPMARKED (Figure 3) --------------------------------------------
  //
  // Physically deletes the marked node del (the successor of the flagged
  // node prev) and removes prev's flag, in one C&S. The thread whose C&S
  // performs the unlink owns retirement of del.
  void help_marked(Node* prev, Node* del) const {
    LF_CHAOS_POINT(kListHelpMarked);
    stats::tls().help_marked.inc();
    Node* next = del->succ.load().right;
    const View result =
        chaos_cas(chaos::Site::kListUnlinkCas, prev->succ,
                  View{del, false, true}, View{next, false, false});
    if (result == View{del, false, true}) {
      stats::tls().pdelete_cas.inc();
      reclaimer_.retire(del);
    }
  }

  // ---- HELPFLAGGED (Figure 4) -------------------------------------------
  //
  // prev is flagged and del is its successor: set del's backlink, mark del,
  // then physically delete it. Callable by any thread (helping); all
  // callers compute the same backlink value, so the store is idempotent.
  void help_flagged(Node* prev, Node* del) const {
    LF_CHAOS_POINT(kListHelpFlagged);
    stats::tls().help_flagged.inc();
    del->backlink.store(prev, std::memory_order_release);
    if (!del->succ.load().mark) try_mark(del);
    help_marked(prev, del);
  }

  // ---- TRYMARK (Figure 4) -----------------------------------------------
  void try_mark(Node* del) const {
    do {
      Node* next = del->succ.load().right;
      const View result =
          chaos_cas(chaos::Site::kListMarkCas, del->succ,
                    View{next, false, false}, View{next, true, false});
      if (result == View{next, false, false}) {
        stats::tls().mark_cas.inc();
      } else if (result.flag && !result.mark) {
        // Failure because del itself got flagged: a deletion of del's
        // successor is underway; help it finish, then retry.
        help_flagged(del, result.right);
      }
      // Failure because del.right changed: loop re-reads and retries.
    } while (!del->succ.load().mark);
  }

  // ---- TRYFLAG (Figure 5) -------------------------------------------------
  //
  // Attempts to flag the predecessor of target. Returns (prev, true) when
  // this call placed the flag; (prev, false) when another operation's flag
  // is already in place (that operation will report success for the key);
  // (nullptr, false) when target was deleted from the list.
  std::pair<Node*, bool> try_flag(Node* prev, Node* target) const {
    auto& c = stats::tls();
    sync::Backoff backoff;
    for (;;) {
      if (prev->succ.load() == View{target, false, true}) {
        return {prev, false};  // predecessor already flagged by someone else
      }
      const View result =
          chaos_cas(chaos::Site::kListFlagCas, prev->succ,
                    View{target, false, false}, View{target, false, true});
      if (result == View{target, false, false}) {
        c.flag_cas.inc();
        return {prev, true};
      }
      if (result == View{target, false, true}) {
        return {prev, false};  // lost the race to a concurrent flagger
      }
      // Lost a C&S to real contention: back off briefly before recovering,
      // so retry storms on one hot predecessor drain instead of thrashing.
      // Off the success path, so it adds no counted steps and no fast-path
      // cost (sync/backoff.h).
      backoff.pause();
      // Possibly a failure due to marking: recover through the backlink
      // chain to the nearest unmarked node (paper lines 9-10).
      std::uint64_t chain = 0;
      while (prev->succ.load().mark) {
        LF_CHAOS_POINT(kListBacklinkStep);
        c.backlink_traversal.inc();
        ++chain;
        prev = prev->backlink.load(std::memory_order_acquire);
      }
      if (chain > 0) stats::chain_hist_tls().record(chain);
      // Relocate target's predecessor (paper line 11; k - eps semantics).
      auto [new_prev, del] = search_from<false>(target->key, prev);
      if (del != target) return {nullptr, false};  // target got deleted
      prev = new_prev;
    }
  }

  // ---- INSERT retry loop (Figure 5, lines 5-22) ---------------------------
  //
  // Attempts to link `node` between prev and next, recovering from flagging
  // (help the deletion), marking (walk backlinks) and repositioning
  // (SearchFrom) until the C&S lands or the key turns out to be a duplicate.
  bool insert_loop(Node* node, Node* prev, Node* next) {
    auto& c = stats::tls();
    const Key& k = node->key;
    sync::Backoff backoff;
    for (;;) {
      const View prev_succ = prev->succ.load();
      if (prev_succ.flag) {
        help_flagged(prev, prev_succ.right);
      } else {
        node->succ.store_unsynchronized(View{next, false, false});
        const View result =
            chaos_cas(chaos::Site::kListInsertCas, prev->succ,
                      View{next, false, false}, View{node, false, false});
        if (result == View{next, false, false}) {
          c.insert_cas.inc();
          return true;  // successful insertion (linearization point)
        }
        if (result.flag && !result.mark) {
          help_flagged(prev, result.right);
        }
        // Failed insertion C&S under contention: back off before the
        // recovery walk + re-search (no counted steps; see try_flag).
        backoff.pause();
        std::uint64_t chain = 0;
        while (prev->succ.load().mark) {
          LF_CHAOS_POINT(kListBacklinkStep);
          c.backlink_traversal.inc();
          ++chain;
          prev = prev->backlink.load(std::memory_order_acquire);
        }
        if (chain > 0) stats::chain_hist_tls().record(chain);
      }
      std::tie(prev, next) = search_from<true>(k, prev);
      if (node_eq(prev, k)) {
        delete node;  // never published; plain delete is safe
        return false;  // DUPLICATE_KEY
      }
    }
  }

  static ValidationReport fail(ValidationReport& rep, const char* msg) {
    rep.ok = false;
    rep.error = msg;
    return rep;
  }

  Compare comp_;
  mutable Reclaimer reclaimer_;
  Node* head_;
  Node* tail_;
  // Never-reused id keying this instance's thread-local finger slots.
  const std::uint64_t finger_id_ = sync::next_finger_instance();

  static_assert(reclaim::reclaimer_for<Reclaimer, Node>);
};

}  // namespace lf
