// The common shape of every dictionary implementation in this repository.
//
// Tests and benchmarks are written once against this duck-typed concept and
// instantiated for the paper's structures and all baselines, so every
// implementation faces the identical battery.
#pragma once

#include <concepts>
#include <cstddef>
#include <optional>

namespace lf {

template <typename S>
concept concurrent_map_like =
    requires(S s, const S cs, const typename S::key_type& k,
             typename S::mapped_type v) {
      typename S::key_type;
      typename S::mapped_type;
      { s.insert(k, v) } -> std::convertible_to<bool>;
      { s.erase(k) } -> std::convertible_to<bool>;
      { cs.contains(k) } -> std::convertible_to<bool>;
      { cs.find(k) } -> std::same_as<std::optional<typename S::mapped_type>>;
      { cs.size() } -> std::convertible_to<std::size_t>;
    };

}  // namespace lf
