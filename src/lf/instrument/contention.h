// Point-contention measurement.
//
// The paper defines (Section 1): "The point contention at time T is the
// number of processes running concurrently at T. We define the contention of
// operation S, denoted c(S), to be the maximum point contention during the
// execution of S."
//
// Exactly computing the maximum over an operation would require every
// concurrent scheduler event; we use the standard sampled approximation —
// the number of in-flight operations observed at the start and end of S
// (both are point contentions at instants inside S, so the sampled value
// lower-bounds c(S); under steady workloads it tracks the true average
// closely). Benchmarks report the average sampled c(S), i.e. c̄_E.
//
// This lives in the workload harness, not inside the data structures, so the
// structures themselves stay measurement-free on this axis.
#pragma once

#include <atomic>
#include <cstdint>

#include "lf/util/align.h"

namespace lf::stats {

class ContentionMeter {
 public:
  // RAII scope for one dictionary operation S.
  class OperationScope {
   public:
    explicit OperationScope(ContentionMeter& meter) noexcept
        : meter_(meter),
          at_start_(
              meter.inflight_->fetch_add(1, std::memory_order_relaxed) + 1) {}

    ~OperationScope() {
      const std::int64_t at_end =
          meter_.inflight_->fetch_sub(1, std::memory_order_relaxed);
      const std::int64_t observed = at_start_ > at_end ? at_start_ : at_end;
      meter_.record(observed);
    }

    OperationScope(const OperationScope&) = delete;
    OperationScope& operator=(const OperationScope&) = delete;

   private:
    ContentionMeter& meter_;
    std::int64_t at_start_;
  };

  // Average sampled point contention per operation since construction/reset.
  double average() const noexcept {
    const std::uint64_t n = ops_->load(std::memory_order_relaxed);
    if (n == 0) return 0.0;
    return static_cast<double>(sum_->load(std::memory_order_relaxed)) /
           static_cast<double>(n);
  }

  std::uint64_t operations() const noexcept {
    return ops_->load(std::memory_order_relaxed);
  }

  std::int64_t inflight_now() const noexcept {
    return inflight_->load(std::memory_order_relaxed);
  }

  void reset() noexcept {
    sum_->store(0, std::memory_order_relaxed);
    ops_->store(0, std::memory_order_relaxed);
  }

 private:
  void record(std::int64_t observed) noexcept {
    sum_->fetch_add(static_cast<std::uint64_t>(observed),
                    std::memory_order_relaxed);
    ops_->fetch_add(1, std::memory_order_relaxed);
  }

  CacheAligned<std::atomic<std::int64_t>> inflight_;
  CacheAligned<std::atomic<std::uint64_t>> sum_;
  CacheAligned<std::atomic<std::uint64_t>> ops_;
};

}  // namespace lf::stats
