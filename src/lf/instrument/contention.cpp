#include "lf/instrument/contention.h"

// ContentionMeter is fully inline; this translation unit exists so the
// header has a home in the library and to pin the vtable-free type's
// layout in one place if it ever grows out-of-line members.
namespace lf::stats {}
