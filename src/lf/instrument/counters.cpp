#include "lf/instrument/counters.h"

#include <mutex>
#include <unordered_set>

namespace lf::stats {
namespace {

// Registry of live per-thread counter blocks plus the retained totals of
// threads that have exited. Registration happens once per thread; the mutex
// is never touched on the counting fast path.
struct Registry {
  std::mutex mu;
  std::unordered_set<const StepCounters*> live;
  Snapshot drained;

  static Registry& instance() {
    static Registry r;  // leaked-on-exit semantics are fine and avoid
    return r;           // destruction-order hazards with late TLS teardown
  }
};

}  // namespace

StepCounters::StepCounters() {
  auto& reg = Registry::instance();
  std::lock_guard lock(reg.mu);
  reg.live.insert(this);
}

StepCounters::~StepCounters() {
  auto& reg = Registry::instance();
  std::lock_guard lock(reg.mu);
  reg.drained += read();
  reg.live.erase(this);
}

StepCounters& tls() {
  thread_local StepCounters block;
  return block;
}

Snapshot aggregate() {
  auto& reg = Registry::instance();
  std::lock_guard lock(reg.mu);
  Snapshot total = reg.drained;
  for (const StepCounters* block : reg.live) total += block->read();
  return total;
}

namespace {

// Registry for the thread-local chain-length histograms. Unlike the scalar
// counters, histograms are only read/merged at quiescent points, so plain
// (mutex-protected at register/drain time, owner-written otherwise) storage
// suffices.
struct ChainHistSlot {
  Histogram hist;

  ChainHistSlot();
  ~ChainHistSlot();
};

struct ChainHistRegistry {
  std::mutex mu;
  std::unordered_set<ChainHistSlot*> live;
  Histogram drained;

  static ChainHistRegistry& instance() {
    static ChainHistRegistry r;
    return r;
  }
};

ChainHistSlot::ChainHistSlot() {
  auto& reg = ChainHistRegistry::instance();
  std::lock_guard lock(reg.mu);
  reg.live.insert(this);
}

ChainHistSlot::~ChainHistSlot() {
  auto& reg = ChainHistRegistry::instance();
  std::lock_guard lock(reg.mu);
  reg.drained.merge(hist);
  reg.live.erase(this);
}

}  // namespace

Histogram& chain_hist_tls() {
  thread_local ChainHistSlot slot;
  return slot.hist;
}

Histogram aggregate_chain_hist() {
  auto& reg = ChainHistRegistry::instance();
  std::lock_guard lock(reg.mu);
  Histogram total = reg.drained;
  for (ChainHistSlot* slot : reg.live) total.merge(slot->hist);
  return total;
}

void reset_chain_hist() {
  auto& reg = ChainHistRegistry::instance();
  std::lock_guard lock(reg.mu);
  reg.drained = Histogram{};
  for (ChainHistSlot* slot : reg.live) slot->hist = Histogram{};
}

}  // namespace lf::stats
