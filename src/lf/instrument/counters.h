// Step counters implementing the paper's cost model.
//
// Section 3.4: "it is only essential to calculate the number of C&S attempts,
// the number of backlink pointer traversals (line 10 in TryFlag and line 18 in
// Insert), and the number of next_node and curr_node pointer updates by
// searches (lines 6 and 8 in SearchFrom respectively). Counting these steps
// gives an accurate picture of the required time (up to a constant factor)."
//
// Every data structure in this repository increments these counters at
// exactly those points, so benchmarks can report costs in the paper's own
// units — schedule-determined and hardware-independent — in addition to wall
// clock. Counters are thread-local (an unshared cache line per thread, plain
// relaxed stores, ~1ns per increment) and are aggregated on demand through a
// registry that also retains the totals of exited threads.
#pragma once

#include <atomic>
#include <cstdint>

#include "lf/util/align.h"

namespace lf::stats {

// X-macro over every counter so the TLS block, the plain snapshot struct and
// their arithmetic never go out of sync.
//
//   cas_attempt          every C&S executed (success or failure)
//   cas_success          every successful C&S
//   insert_cas           successful insertion C&S     (type 1, Def 4)
//   flag_cas             successful flagging C&S      (type 2, Def 4)
//   mark_cas             successful marking C&S       (type 3, Def 4)
//   pdelete_cas          successful physical-deletion C&S (type 4, Def 4)
//   backlink_traversal   one hop along a backlink chain
//   next_update          next_node pointer update in a search loop
//   curr_update          curr_node pointer update in a search loop
//   help_marked          invocations of HelpMarked
//   help_flagged         invocations of HelpFlagged
//   restart              full restarts from the head (Harris/Michael style)
//   node_retired         nodes handed to the reclaimer
//   node_freed           nodes actually freed by the reclaimer
//   op_insert/erase/search   completed dictionary operations
//   finger_hit           searches that started from a validated finger
//   finger_miss          searches that fell back to the head (no usable
//                        finger: empty slot, stale reclaimer token, key
//                        outside the cached window, or unrecoverable mark)
//   finger_skip          levels NOT descended thanks to a finger hit,
//                        i.e. (head entry level - finger entry level)
//                        summed over hits — the "steps saved" proxy
//   epoch_eject          epoch slots neutralized by a stalled-pin advancer
//                        (reclaim/epoch.h: the slot's pin no longer blocks
//                        the global epoch; frees divert to quarantine)
//   epoch_eject_ack      ejected guards acknowledged at unpin (the thread
//                        resumed; once no ejections are outstanding the
//                        quarantine drains)
//   quarantine_in        retired nodes diverted to a domain quarantine
//                        because an ejection was outstanding at free time
//   quarantine_free      quarantine nodes freed after recovery (every
//                        ejected reader acknowledged or was declared dead)
//   orphan_adopt         stalled-thread resources adopted by a survivor:
//                        epoch limbo buckets, hazard retire lists/finger
//                        entries, pool freelist blocks (one inc per record)
//
// The finger_* counters are bookkeeping for the hint layer (sync/finger.h),
// NOT steps of the paper's cost model: essential_steps() must never include
// them. Work a finger actually causes (its backlink-recovery hops, the
// traversal from the hint) is already charged to the regular step counters.
// The resilience counters (epoch_eject .. orphan_adopt) are likewise
// bookkeeping for the stalled-thread subsystem, never essential steps.
#define LF_STEP_COUNTER_FIELDS(X) \
  X(cas_attempt)                  \
  X(cas_success)                  \
  X(insert_cas)                   \
  X(flag_cas)                     \
  X(mark_cas)                     \
  X(pdelete_cas)                  \
  X(backlink_traversal)           \
  X(next_update)                  \
  X(curr_update)                  \
  X(help_marked)                  \
  X(help_flagged)                 \
  X(restart)                      \
  X(node_retired)                 \
  X(node_freed)                   \
  X(op_insert)                    \
  X(op_erase)                     \
  X(op_search)                    \
  X(finger_hit)                   \
  X(finger_miss)                  \
  X(finger_skip)                  \
  X(epoch_eject)                  \
  X(epoch_eject_ack)              \
  X(quarantine_in)                \
  X(quarantine_free)              \
  X(orphan_adopt)

// Single-writer counter readable by other threads. The owner's increment is a
// relaxed load+store pair (no lock prefix); concurrent readers may observe a
// slightly stale value, which is fine for statistics.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    v_.store(v_.load(std::memory_order_relaxed) + n,
             std::memory_order_relaxed);
  }
  std::uint64_t get() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void set(std::uint64_t n) noexcept {
    v_.store(n, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

// Plain-value snapshot of all counters, with the arithmetic benches need.
struct Snapshot {
#define LF_DECL(name) std::uint64_t name = 0;
  LF_STEP_COUNTER_FIELDS(LF_DECL)
#undef LF_DECL

  Snapshot operator-(const Snapshot& rhs) const noexcept {
    Snapshot out;
#define LF_SUB(name) out.name = name - rhs.name;
    LF_STEP_COUNTER_FIELDS(LF_SUB)
#undef LF_SUB
    return out;
  }

  Snapshot& operator+=(const Snapshot& rhs) noexcept {
#define LF_ADD(name) name += rhs.name;
    LF_STEP_COUNTER_FIELDS(LF_ADD)
#undef LF_ADD
    return *this;
  }

  // The paper's "essential steps" (Section 3.4).
  std::uint64_t essential_steps() const noexcept {
    return cas_attempt + backlink_traversal + next_update + curr_update;
  }

  std::uint64_t cas_failures() const noexcept {
    return cas_attempt - cas_success;
  }

  std::uint64_t total_ops() const noexcept {
    return op_insert + op_erase + op_search;
  }

  // "Extra steps" in the sense of Def 4 are those caused by interference;
  // CAS failures and backlink traversals are always extra.
  double steps_per_op() const noexcept {
    const std::uint64_t ops = total_ops();
    return ops == 0 ? 0.0
                    : static_cast<double>(essential_steps()) /
                          static_cast<double>(ops);
  }

  // Fraction of finger-eligible searches that started from a validated
  // hint. 0 when the finger layer is disabled or unused.
  double finger_hit_rate() const noexcept {
    const std::uint64_t total = finger_hit + finger_miss;
    return total == 0 ? 0.0
                      : static_cast<double>(finger_hit) /
                            static_cast<double>(total);
  }
};

// Per-thread counter block, padded so no two threads share a line.
struct alignas(kCacheLineSize) StepCounters {
#define LF_DECL(name) Counter name;
  LF_STEP_COUNTER_FIELDS(LF_DECL)
#undef LF_DECL

  StepCounters();
  ~StepCounters();
  StepCounters(const StepCounters&) = delete;
  StepCounters& operator=(const StepCounters&) = delete;

  Snapshot read() const noexcept {
    Snapshot s;
#define LF_READ(name) s.name = name.get();
    LF_STEP_COUNTER_FIELDS(LF_READ)
#undef LF_READ
    return s;
  }
};

// The calling thread's counter block. First use registers the block in the
// global registry; thread exit folds its totals into the drained accumulator
// so aggregate() never loses counts.
StepCounters& tls();

// Sum over all live threads plus everything drained from exited threads.
// Exact when no counted code is executing concurrently (the normal benchmark
// usage: snapshot, run workers to join, snapshot again, subtract).
Snapshot aggregate();

}  // namespace lf::stats

#include "lf/util/histogram.h"

namespace lf::stats {

// Thread-local histogram of backlink-chain lengths: every time an operation
// recovers from a failed C&S by walking a backlink chain, the length of that
// walk is recorded here. Experiment E7 uses this to show the flag bits keep
// chains short (the FRListNoFlag ablation lets them grow).
Histogram& chain_hist_tls();

// Merged view across live and exited threads (same caveats as aggregate()).
Histogram aggregate_chain_hist();

// Zero all live thread-local chain histograms and the drained accumulator.
// Only call while no instrumented code runs concurrently.
void reset_chain_hist();

}  // namespace lf::stats
