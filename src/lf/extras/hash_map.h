// FRHashMap — a lock-free hash map with FRList buckets.
//
// Michael's SPAA 2002 paper (the paper's reference [8]) builds its
// headline structure — a dynamic lock-free hash table — out of exactly the
// kind of list-based set this repository implements: an array of buckets,
// each an independent lock-free sorted list. This adapter does the same
// with the paper's list, inheriting its recovery behaviour per bucket.
//
// Properties:
//   * expected O(n/B + c) per operation (B buckets), lock-free,
//     linearizable (each operation touches exactly one bucket's list);
//   * fixed bucket count chosen at construction — no resizing. Size the
//     table for the expected load (Michael's dynamic resizing and
//     split-ordered lists are out of scope here);
//   * same key/value requirements as FRList.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "lf/core/fr_list.h"

namespace lf::extras {

template <typename Key, typename T, typename Hash = std::hash<Key>,
          typename Compare = std::less<Key>,
          typename Reclaimer = reclaim::EpochReclaimer>
class FRHashMap {
 public:
  using key_type = Key;
  using mapped_type = T;

  explicit FRHashMap(std::size_t buckets = 1024, Hash hash = Hash{})
      : hash_(std::move(hash)), buckets_(round_up_pow2(buckets)) {
    table_.reserve(buckets_);
    for (std::size_t i = 0; i < buckets_; ++i)
      table_.push_back(std::make_unique<Bucket>());
  }

  bool insert(const Key& k, T value) {
    return bucket(k).insert(k, std::move(value));
  }

  bool erase(const Key& k) { return bucket(k).erase(k); }

  bool contains(const Key& k) const { return bucket(k).contains(k); }

  std::optional<T> find(const Key& k) const { return bucket(k).find(k); }

  // Sum of bucket sizes; weakly consistent under concurrency like every
  // per-bucket aggregate.
  std::size_t size() const {
    std::size_t n = 0;
    for (const auto& b : table_) n += b->size();
    return n;
  }

  // Visits every (key, value) pair, bucket by bucket (NOT in key order).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& b : table_) b->for_each(fn);
  }

  std::size_t bucket_count() const noexcept { return buckets_; }

 private:
  using Bucket = FRList<Key, T, Compare, Reclaimer>;

  static std::size_t round_up_pow2(std::size_t v) {
    std::size_t p = 1;
    while (p < v) p <<= 1;
    return p;
  }

  Bucket& bucket(const Key& k) const {
    // Mix the hash so that low-entropy std::hash outputs (identity for
    // integers in libstdc++) still spread across buckets.
    std::uint64_t h = static_cast<std::uint64_t>(hash_(k));
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return *table_[h & (buckets_ - 1)];
  }

  Hash hash_;
  std::size_t buckets_;
  std::vector<std::unique_ptr<Bucket>> table_;  // pointers: FRList pins
};

}  // namespace lf::extras
