// FRPriorityQueue — a lock-free priority queue on top of FRSkipList.
//
// The application the paper's related work leads with: Sundell & Tsigas's
// lock-free skip list (the paper's reference [14]) was built to implement
// exactly Insert + DeleteMin for multi-thread priority queues, and Lotan &
// Shavit's lock-based design [13] targets the same. This adapter provides
// that interface over the paper's skip list:
//
//   push(priority, value)   -> false if the priority key is already queued
//   pop_min()               -> extract the smallest-priority entry
//   peek_min()              -> observe it without removing
//
// pop_min() is the interesting operation: competing consumers race to
// erase() the front key, and the paper's Delete semantics guarantee each
// key is won by exactly one of them, so every queued entry is popped
// exactly once. Lock-freedom is inherited: a stalled consumer cannot block
// producers or other consumers (its half-done deletion is helped along).
//
// Priorities must be unique (the underlying dictionary rejects duplicate
// keys). For FIFO-within-priority semantics, pack (priority, sequence)
// into the key as examples/url_frontier.cpp demonstrates.
#pragma once

#include <optional>
#include <utility>

#include "lf/core/fr_skiplist.h"

namespace lf::extras {

template <typename Priority, typename T,
          typename Compare = std::less<Priority>,
          typename Reclaimer = reclaim::EpochReclaimer>
class FRPriorityQueue {
 public:
  using priority_type = Priority;
  using value_type = T;

  FRPriorityQueue() = default;
  explicit FRPriorityQueue(Reclaimer reclaimer)
      : skip_(std::move(reclaimer)) {}

  // Enqueue; false if an entry with this priority key is already queued.
  bool push(const Priority& priority, T value) {
    return skip_.insert(priority, std::move(value));
  }

  // Dequeue the minimum-priority entry; nullopt when the queue is empty.
  // Linearizes at the successful marking of the popped root node.
  std::optional<std::pair<Priority, T>> pop_min() {
    for (;;) {
      auto front = skip_.first();
      if (!front.has_value()) return std::nullopt;
      if (skip_.erase(front->first)) return front;
      // Lost the race for this key to another consumer (or the key was
      // concurrently erased); retry with the new front.
    }
  }

  // Observe the minimum without removing it. Weakly consistent: by the
  // time the caller looks, a concurrent pop may have taken it.
  std::optional<std::pair<Priority, T>> peek_min() const {
    return skip_.first();
  }

  bool empty() const { return !skip_.first().has_value(); }
  std::size_t size() const { return skip_.size(); }

  // The underlying dictionary, for inspection/tests.
  using Skip = FRSkipList<Priority, T, Compare, Reclaimer>;
  const Skip& dictionary() const { return skip_; }

 private:
  Skip skip_;
};

}  // namespace lf::extras
