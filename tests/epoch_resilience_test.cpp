// Stalled-thread resilience tests (DESIGN.md §11): epoch neutralization,
// quarantine-gated degradation, orphan adoption, and the teardown
// diagnostic. All chaos-free — every scenario parks its victim on a plain
// condition variable so the suite runs identically under Release, ASan and
// TSan configs; the chaos-armed variants live in chaos_test.cpp.
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include <gtest/gtest.h>

#include "lf/instrument/counters.h"
#include "lf/reclaim/epoch.h"
#include "lf/reclaim/hazard.h"

namespace {

using lf::reclaim::EpochDomain;

struct Tracked {
  static std::atomic<int> live;
  Tracked() { live.fetch_add(1, std::memory_order_relaxed); }
  ~Tracked() { live.fetch_sub(1, std::memory_order_relaxed); }
};
std::atomic<int> Tracked::live{0};

// A victim parked on a condvar while holding a Guard: the deterministic
// stand-in for a thread that crashed mid-pin. The ctor returns only after
// the victim is pinned; release() resumes it and join() completes the
// unwind (outermost ~Guard, i.e. the ejection-acknowledge path).
class PinnedVictim {
 public:
  explicit PinnedVictim(EpochDomain& domain) {
    thread_ = std::thread([this, &domain] {
      auto g = domain.guard();
      std::unique_lock lk(mu_);
      pinned_ = true;
      cv_.notify_all();
      cv_.wait(lk, [this] { return release_; });
    });
    std::unique_lock lk(mu_);
    cv_.wait(lk, [this] { return pinned_; });
  }

  void release() {
    std::lock_guard lk(mu_);
    release_ = true;
    cv_.notify_all();
  }

  void join() { thread_.join(); }
  std::thread::id id() const { return thread_.get_id(); }

 private:
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool pinned_ = false;
  bool release_ = false;
};

EpochDomain::ResilienceOptions fast_resilience() {
  EpochDomain::ResilienceOptions opts;
  opts.neutralize = true;
  opts.blame_threshold = 4;
  opts.quarantine_soft_cap = 1024;
  return opts;
}

TEST(EpochResilience, EjectionUnblocksEpochAndQuarantineGatesFrees) {
  const auto before = lf::stats::aggregate();
  EpochDomain domain;
  domain.set_resilience(fast_resilience());
  PinnedVictim victim(domain);

  // Garbage retired while the victim is pinned at the current epoch.
  constexpr int kNodes = 10;
  for (int i = 0; i < kNodes; ++i) domain.retire(new Tracked);
  ASSERT_EQ(Tracked::live.load(), kNodes);
  const std::uint64_t e0 = domain.epoch();

  // Without resilience the epoch could never pass the parked pin. The
  // remediation loop runs the advancer past the blame threshold: the
  // victim's slot is ejected and the epoch moves beyond its grace window.
  EXPECT_TRUE(domain.remediate_now());
  EXPECT_EQ(domain.ejected_count(), 1u);
  EXPECT_GE(domain.epoch(), e0 + 2);

  // Graceful degradation: the frees the advance enabled must NOT run —
  // the parked reader may still hold references — so they divert into the
  // bounded quarantine instead.
  domain.drain();
  EXPECT_EQ(Tracked::live.load(), kNodes);
  EXPECT_EQ(domain.quarantine_depth(), static_cast<std::uint64_t>(kNodes));
  EXPECT_EQ(domain.retired_count(), static_cast<std::uint64_t>(kNodes));

  // The victim resumes and unpins: its outermost ~Guard acknowledges the
  // ejection, which drains the quarantine — everything is freed, late but
  // never early.
  victim.release();
  victim.join();
  EXPECT_EQ(domain.ejected_count(), 0u);
  EXPECT_EQ(domain.quarantine_depth(), 0u);
  EXPECT_EQ(Tracked::live.load(), 0);

  const auto delta = lf::stats::aggregate() - before;
  EXPECT_GE(delta.epoch_eject, 1u);
  EXPECT_GE(delta.epoch_eject_ack, 1u);
  EXPECT_GE(delta.quarantine_in, static_cast<std::uint64_t>(kNodes));
  EXPECT_GE(delta.quarantine_free, static_cast<std::uint64_t>(kNodes));
}

TEST(EpochResilience, EjectedThreadPinsAgainCleanly) {
  EpochDomain domain;
  domain.set_resilience(fast_resilience());
  PinnedVictim victim(domain);
  EXPECT_TRUE(domain.remediate_now());
  EXPECT_EQ(domain.ejected_count(), 1u);
  victim.release();
  victim.join();
  EXPECT_EQ(domain.ejected_count(), 0u);

  // A fresh thread (same pattern) works untainted afterwards, and the
  // domain keeps advancing.
  PinnedVictim second(domain);
  const std::uint64_t e0 = domain.epoch();
  second.release();
  second.join();
  for (int i = 0; i < 4; ++i) domain.drain();
  EXPECT_GT(domain.epoch(), e0);
}

TEST(EpochResilience, QuarantineDrainsOnlyAfterLastEjectionSettles) {
  EpochDomain domain;
  domain.set_resilience(fast_resilience());
  PinnedVictim first(domain);
  PinnedVictim second(domain);

  constexpr int kNodes = 8;
  for (int i = 0; i < kNodes; ++i) domain.retire(new Tracked);

  // The blame detector ejects one frozen slot at a time; two remediation
  // rounds neutralize both victims.
  domain.remediate_now();
  domain.remediate_now();
  ASSERT_EQ(domain.ejected_count(), 2u);
  domain.drain();
  ASSERT_EQ(domain.quarantine_depth(), static_cast<std::uint64_t>(kNodes));

  // One acknowledgement is not enough: the other ejected reader may still
  // resume and dereference.
  first.release();
  first.join();
  EXPECT_EQ(domain.ejected_count(), 1u);
  EXPECT_EQ(Tracked::live.load(), kNodes);
  EXPECT_EQ(domain.quarantine_depth(), static_cast<std::uint64_t>(kNodes));

  second.release();
  second.join();
  EXPECT_EQ(domain.ejected_count(), 0u);
  EXPECT_EQ(domain.quarantine_depth(), 0u);
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST(EpochResilience, AdoptStalledMovesLimboToOrphans) {
  const auto before = lf::stats::aggregate();
  EpochDomain domain;

  // The victim retires into its own limbo, then parks OUTSIDE any guard —
  // the resumable-victim adoption contract. Fewer than kAdvanceEvery
  // retires, so nothing self-reclaims before the park.
  constexpr int kNodes = 12;
  std::mutex mu;
  std::condition_variable cv;
  bool parked = false, release = false;
  std::thread victim([&] {
    for (int i = 0; i < kNodes; ++i) domain.retire(new Tracked);
    std::unique_lock lk(mu);
    parked = true;
    cv.notify_all();
    cv.wait(lk, [&] { return release; });
  });
  {
    std::unique_lock lk(mu);
    cv.wait(lk, [&] { return parked; });
  }
  ASSERT_EQ(Tracked::live.load(), kNodes);

  // Unknown threads are not found; the parked victim is.
  EXPECT_FALSE(domain.adopt_stalled(std::this_thread::get_id()));
  EXPECT_TRUE(domain.adopt_stalled(victim.get_id()));

  // The adopted limbo sits in the domain orphans and frees through the
  // normal grace machinery — no victim participation needed.
  domain.drain();
  domain.drain();
  EXPECT_EQ(Tracked::live.load(), 0);
  EXPECT_EQ(domain.retired_count(), 0u);

  {
    std::lock_guard lk(mu);
    release = true;
    cv.notify_all();
  }
  victim.join();

  const auto delta = lf::stats::aggregate() - before;
  EXPECT_GE(delta.orphan_adopt, static_cast<std::uint64_t>(kNodes));
}

TEST(EpochResilience, AdoptStalledSettlesEjectedPinnedVictim) {
  EpochDomain domain;
  domain.set_resilience(fast_resilience());
  PinnedVictim victim(domain);
  constexpr int kNodes = 6;
  for (int i = 0; i < kNodes; ++i) domain.retire(new Tracked);
  domain.remediate_now();
  ASSERT_EQ(domain.ejected_count(), 1u);
  domain.drain();
  ASSERT_EQ(domain.quarantine_depth(), static_cast<std::uint64_t>(kNodes));

  // Declaring the parked victim dead settles its ejection and drains the
  // quarantine without its cooperation. NOTE: this is only legal because
  // the victim is parked outside any traversal — it pinned and then
  // immediately blocked, holding no node references (the adoption
  // contract; a victim parked mid-traversal must instead resume and
  // acknowledge on its own, as in the tests above).
  EXPECT_TRUE(domain.adopt_stalled(victim.id()));
  EXPECT_EQ(domain.ejected_count(), 0u);
  EXPECT_EQ(domain.quarantine_depth(), 0u);
  EXPECT_EQ(Tracked::live.load(), 0);

  victim.release();
  victim.join();  // unwinds over the already-cleared slot: benign
}

TEST(EpochResilience, StallReportNamesTheStragglerAndGauges) {
  EpochDomain domain;
  domain.set_resilience(fast_resilience());
  PinnedVictim victim(domain);
  for (int i = 0; i < 5; ++i) domain.retire(new Tracked);

  std::string report = domain.stall_report();
  EXPECT_NE(report.find("epoch domain:"), std::string::npos);
  EXPECT_NE(report.find("active=1"), std::string::npos);
  EXPECT_NE(report.find("retired_backlog=5"), std::string::npos);
  EXPECT_NE(report.find("neutralize=on"), std::string::npos);

  domain.remediate_now();
  report = domain.stall_report();
  EXPECT_NE(report.find("ejected=1"), std::string::npos);

  victim.release();
  victim.join();
  domain.drain();
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST(EpochResilience, HazardAdoptStalledScavengesFingersAndRetired) {
  const auto before = lf::stats::aggregate();
  lf::reclaim::EpochDomain epoch;
  lf::reclaim::HazardDomain hazard;

  constexpr int kNodes = 5;
  std::mutex mu;
  std::condition_variable cv;
  bool parked = false, release = false;
  auto* finger_node = new Tracked;
  std::thread victim([&] {
    // Publish a retained finger and retire some nodes, then park — the
    // stand-in for a thread that died between operations holding a finger.
    hazard.publish_finger(finger_node, nullptr, /*tag=*/42);
    for (int i = 0; i < kNodes; ++i) hazard.retire(new Tracked);
    std::unique_lock lk(mu);
    parked = true;
    cv.notify_all();
    cv.wait(lk, [&] { return release; });
  });
  {
    std::unique_lock lk(mu);
    cv.wait(lk, [&] { return parked; });
  }
  ASSERT_EQ(Tracked::live.load(), kNodes + 1);

  EXPECT_FALSE(hazard.adopt_stalled(std::this_thread::get_id()));
  EXPECT_TRUE(hazard.adopt_stalled(victim.get_id()));

  // The victim's fingers no longer protect anything and its retired list
  // was orphaned: one scan from a survivor frees everything, including
  // the de-protected finger target once it is retired too.
  hazard.retire(finger_node);
  hazard.scan();
  EXPECT_EQ(Tracked::live.load(), 0);
  EXPECT_EQ(hazard.retired_count(), 0u);

  {
    std::lock_guard lk(mu);
    release = true;
    cv.notify_all();
  }
  victim.join();

  const auto delta = lf::stats::aggregate() - before;
  EXPECT_GE(delta.orphan_adopt, static_cast<std::uint64_t>(kNodes));
}

TEST(EpochResilience, TeardownWhileParkedPinnedAbandonsSlot) {
  const std::uint64_t before = EpochDomain::abandoned_slots();
  std::mutex mu;
  std::condition_variable cv;
  bool pinned = false, release = false;
  auto* domain = new EpochDomain;
  std::thread victim([&] {
    auto g = domain->guard();
    std::unique_lock lk(mu);
    pinned = true;
    cv.notify_all();
    cv.wait(lk, [&] { return release; });
  });
  {
    std::unique_lock lk(mu);
    cv.wait(lk, [&] { return pinned; });
  }

  // Destroying the domain under a live pin violates the "domain outlives
  // every thread" contract; the destructor must diagnose it (counted,
  // non-fatal) and abandon the slot instead of freeing memory the parked
  // thread's unpin will still write to.
  delete domain;
  EXPECT_EQ(EpochDomain::abandoned_slots(), before + 1);

  // The victim's unwind after the domain is gone touches only the
  // abandoned (immortal) slot: no use-after-free under ASan.
  {
    std::lock_guard lk(mu);
    release = true;
    cv.notify_all();
  }
  victim.join();
}

}  // namespace
