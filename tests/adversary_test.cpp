// Tests of the Section 3.1 adversarial schedule driver — the reproduction
// machinery for experiment E1. The asymptotic claims themselves are
// benchmarked (bench_adversarial); here we verify the driver realizes the
// intended schedule and that the headline separation (local recovery vs
// full restart) already shows at test sizes.
#include <gtest/gtest.h>

#include "lf/baselines/harris_list.h"
#include "lf/core/fr_list.h"
#include "lf/reclaim/leaky.h"
#include "lf/workload/adversary.h"

namespace {

using FR =
    lf::FRList<long, long, std::less<long>, lf::reclaim::LeakyReclaimer>;
using Harris =
    lf::HarrisList<long, long, std::less<long>, lf::reclaim::LeakyReclaimer>;

TEST(Adversary, ScheduleExecutesAllRounds) {
  FR list;
  const auto res = lf::workload::run_adversarial_schedule(list, 3, 128, 64);
  EXPECT_EQ(res.rounds, 64u);
  EXPECT_EQ(res.deletions_done, 64u);  // every round deleted the last node
  EXPECT_EQ(res.inserters, 3);
  // Every round forces one failed C&S per inserter.
  EXPECT_GE(res.steps.cas_failures(), 3u * 64u);
  EXPECT_TRUE(list.validate().ok);
}

TEST(Adversary, RoundsClampedToListSize) {
  FR list;
  const auto res =
      lf::workload::run_adversarial_schedule(list, 2, 16, 1000);
  EXPECT_EQ(res.rounds, 15u);  // can't delete more than n-1 last nodes
  EXPECT_EQ(res.deletions_done, 15u);
}

TEST(Adversary, BacklinksAreActuallyTraversed) {
  FR list;
  const auto res = lf::workload::run_adversarial_schedule(list, 4, 128, 64);
  // Each failed C&S recovers through >= 1 backlink hop in the FR list.
  EXPECT_GE(res.steps.backlink_traversal, 4u * 64u / 2);
  EXPECT_EQ(res.steps.restart, 0u);  // FR never restarts
}

TEST(Adversary, HarrisRestartsFromHeadEveryRound) {
  Harris list;
  const auto res = lf::workload::run_adversarial_schedule(list, 4, 128, 64);
  EXPECT_GE(res.steps.restart, 4u * 64u);  // one restart per failure
  EXPECT_EQ(res.steps.backlink_traversal, 0u);  // Harris has no backlinks
}

TEST(Adversary, FRBeatsHarrisOnTotalSteps) {
  FR fr;
  Harris harris;
  const auto fr_res =
      lf::workload::run_adversarial_schedule(fr, 4, 256, 128);
  const auto h_res =
      lf::workload::run_adversarial_schedule(harris, 4, 256, 128);
  // Identical schedules; Harris must pay strictly (and substantially) more.
  EXPECT_LT(fr_res.steps.essential_steps() * 2,
            h_res.steps.essential_steps());
}

TEST(Adversary, FRRecoveryCostIsSizeIndependent) {
  // The defining property of the paper's design: the per-interference
  // recovery cost must NOT grow with the list size. Compare inserter-side
  // extra steps at two sizes (deleter search costs are subtracted by
  // comparing like with like).
  auto recovery_cost = [](std::uint64_t n) {
    FR list;
    const auto res = lf::workload::run_adversarial_schedule(list, 2, n, 32);
    // Inserter recovery steps = backlinks + the short re-searches; use
    // backlink+curr_update attributable per failure as the proxy.
    return static_cast<double>(res.steps.backlink_traversal) /
           static_cast<double>(res.steps.cas_failures());
  };
  const double small = recovery_cost(64);
  const double large = recovery_cost(1024);
  EXPECT_LT(large, small * 3 + 2);  // flat, not ~16x like a linear cost
}

TEST(Adversary, HarrisRecoveryCostGrowsWithSize) {
  auto steps_per_failure = [](std::uint64_t n) {
    Harris list;
    const auto res = lf::workload::run_adversarial_schedule(list, 2, n, 32);
    return static_cast<double>(res.steps.curr_update) /
           static_cast<double>(res.steps.cas_failures());
  };
  const double small = steps_per_failure(64);
  const double large = steps_per_failure(512);
  EXPECT_GT(large, small * 3);  // grows roughly linearly with n
}

}  // namespace
