// Finger (search-hint) layer tests — the per-thread "start where the last
// search ended" optimization of DESIGN.md §10.
//
// Four properties are pinned down here:
//
//   * FAST PATH — a repeated search starts at the previously found node
//     and takes ZERO traversal steps, observed through the paper's step
//     counters (curr_update), not wall clock.
//
//   * VALIDATION — a finger left on a node that was since deleted,
//     reclaimed, or recycled is either recovered through its backlink
//     chain (counted as backlink_traversal) or rejected into a head
//     fallback; results stay correct and no retired memory is touched
//     (the whole file is meaningful under ASan, which the sanitizer CI
//     job runs).
//
//   * ISOLATION — hints are per (thread, structure instance); instances
//     never share or inherit each other's hints, even when a structure is
//     destroyed and a new one takes its place.
//
//   * STATIC OFF — sync::FingerOff compiles the layer out; its counters
//     stay exactly zero (the fuzz suite re-checks this under yields).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <optional>
#include <thread>

#include "lf/core/fr_list.h"
#include "lf/core/fr_list_rc.h"
#include "lf/core/fr_skiplist.h"
#include "lf/core/fr_skiplist_rc.h"
#include "lf/instrument/counters.h"
#include "lf/reclaim/hazard.h"
#include "lf/reclaim/leaky.h"

namespace {

using lf::stats::aggregate;
using lf::reclaim::EpochDomain;
using lf::reclaim::HazardDomain;
using lf::reclaim::HazardReclaimer;

using HPList = lf::FRList<long, long, std::less<long>, HazardReclaimer>;
using HPSkipList =
    lf::FRSkipList<long, long, std::less<long>, HazardReclaimer>;

// ---- Fast path: repeated searches take zero traversal steps ---------------

template <typename Set>
void expect_repeat_find_is_free(Set& set) {
  for (long k : {10, 20, 30, 40}) ASSERT_TRUE(set.insert(k, k));
  ASSERT_TRUE(set.find(20).has_value());  // installs the finger on node 20
  const auto before = aggregate();
  constexpr int kRepeats = 50;
  for (int i = 0; i < kRepeats; ++i) {
    ASSERT_TRUE(set.find(20).has_value());
  }
  const auto delta = aggregate() - before;
  EXPECT_EQ(delta.finger_hit, static_cast<std::uint64_t>(kRepeats));
  EXPECT_EQ(delta.finger_miss, 0u);
  // The finger IS the sought node: the search starts there, sees the next
  // key is larger, and stops without advancing once.
  EXPECT_EQ(delta.curr_update, 0u);
}

TEST(Finger, RepeatedFindIsFreeFRList) {
  lf::FRList<long, long> list;
  expect_repeat_find_is_free(list);
}

TEST(Finger, RepeatedFindIsFreeFRSkipList) {
  lf::FRSkipList<long, long> s;
  expect_repeat_find_is_free(s);
}

TEST(Finger, RepeatedFindIsFreeFRListRC) {
  lf::FRListRC<long, long> list;
  expect_repeat_find_is_free(list);
}

TEST(Finger, RepeatedFindIsFreeFRSkipListRC) {
  lf::FRSkipListRC<long, long> s;
  expect_repeat_find_is_free(s);
}

// Hazard rows: publish-then-revalidate must preserve the zero-step fast
// path — re-acquisition is a slot comparison, not a traversal.
TEST(Finger, RepeatedFindIsFreeFRListHazard) {
  HPList list;
  expect_repeat_find_is_free(list);
}

TEST(Finger, RepeatedFindIsFreeFRSkipListHazard) {
  HPSkipList s;
  expect_repeat_find_is_free(s);
}

// ---- Multi-way hot set: k fingers serve k hot keys at once ----------------

// The set-associative upgrade's core promise: a working set of kFingerWays
// distinct hot keys round-robins through the cache with every search a
// zero-step hit — the single-finger layer could only ever serve the LAST
// key. Two priming rounds let the way set converge (installs start at
// frequency zero and may briefly evict each other); after that the state is
// absorbing: every find refreshes its own way in place and nothing is ever
// replaced.
TEST(Finger, MultiWayHotSetAllFourKeysStayFree) {
  lf::FRList<long, long> list;
  for (long k = 10; k <= 80; k += 10) ASSERT_TRUE(list.insert(k, k));
  constexpr long kHot[] = {20, 40, 60, 80};
  for (int round = 0; round < 2; ++round)
    for (long k : kHot) ASSERT_TRUE(list.find(k).has_value());
  const auto before = aggregate();
  constexpr int kRounds = 25;
  for (int round = 0; round < kRounds; ++round)
    for (long k : kHot) ASSERT_TRUE(list.find(k).has_value());
  const auto delta = aggregate() - before;
  EXPECT_EQ(delta.finger_hit, static_cast<std::uint64_t>(4 * kRounds));
  EXPECT_EQ(delta.finger_miss, 0u);
  // Each find starts at ITS OWN cached bracket, not a neighbor's: zero
  // traversal steps, exactly like the single-key repeat tests above.
  EXPECT_EQ(delta.curr_update, 0u);
}

// Skip-list shape: four hot keys spread across the key space, each served
// by its own level-1 bracket way (upper-level ways churn, but the level-1
// cache converges to exactly the hot set and then never replaces).
TEST(Finger, SkipListMultiWayHotSetAllFourKeysHit) {
  lf::FRSkipList<long, long> s;
  for (long k = 0; k < 256; ++k) ASSERT_TRUE(s.insert(k, k));
  constexpr long kHot[] = {40, 100, 170, 230};
  for (int round = 0; round < 2; ++round)
    for (long k : kHot) ASSERT_TRUE(s.find(k).has_value());
  const auto before = aggregate();
  constexpr int kRounds = 25;
  for (int round = 0; round < kRounds; ++round)
    for (long k : kHot) ASSERT_TRUE(s.find(k).has_value());
  const auto delta = aggregate() - before;
  EXPECT_EQ(delta.finger_hit, static_cast<std::uint64_t>(4 * kRounds));
  EXPECT_EQ(delta.finger_miss, 0u);
  EXPECT_TRUE(s.validate().ok);
}

// Replacement policy: a frequently-hit way must survive a stream of
// one-shot cold keys. The colds DESCEND from the top of the key space
// (each cached cold bracket then sits on the wrong side of the next cold
// key), so every cold find is a guaranteed probe miss that forces a
// replacement — three per round, cycling the aging period several times
// over the run. The hot key sits above the whole cold range: its find must
// stay a ZERO-STEP hit every single round, which is possible only if the
// hot way is never chosen as the replacement victim. This is the test that
// rules out recency-only (clock) replacement: with three replacements per
// round a clock hand laps the set between hot references, clears the hot
// way's use bit and evicts it within a couple of rounds — only a frequency
// counter survives the pressure.
TEST(Finger, HotWaySurvivesColdMissStream) {
  lf::FRList<long, long> list;
  for (long k = 0; k <= 600; k += 2) ASSERT_TRUE(list.insert(k, k));
  constexpr long kHot = 601;
  ASSERT_TRUE(list.insert(kHot, kHot));
  // Build the hot way's frequency before the cold stream starts.
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(list.find(kHot).has_value());
  constexpr int kRounds = 48;
  for (int round = 0; round < kRounds; ++round) {
    const auto before = aggregate();
    ASSERT_TRUE(list.find(kHot).has_value());
    const auto delta = aggregate() - before;
    EXPECT_EQ(delta.finger_hit, 1u) << "round " << round;
    EXPECT_EQ(delta.curr_update, 0u) << "round " << round;
    // Three distinct cold keys, never repeated, all below the hot key and
    // descending: deterministic misses, head-started searches.
    for (int j = 0; j < 3; ++j) {
      const long cold = 600 - 2 * (3 * round + j);
      const auto b = aggregate();
      ASSERT_TRUE(list.find(cold).has_value());
      const auto d = aggregate() - b;
      EXPECT_EQ(d.finger_miss, 1u) << "cold " << cold;
      EXPECT_EQ(d.finger_hit, 0u) << "cold " << cold;
    }
  }
  EXPECT_TRUE(list.validate().ok);
}

// ---- Static off: FingerOff means zero finger traffic ----------------------

TEST(Finger, FingerOffKeepsCountersAtZero) {
  lf::FRList<long, long, std::less<long>, lf::reclaim::EpochReclaimer,
             lf::mem::PoolAlloc, lf::sync::FingerOff>
      list;
  lf::FRSkipList<long, long, std::less<long>, lf::reclaim::EpochReclaimer,
                 24, lf::mem::FlatTowers, lf::sync::FingerOff>
      s;
  const auto before = aggregate();
  for (long k = 0; k < 64; ++k) {
    list.insert(k, k);
    s.insert(k, k);
  }
  for (int r = 0; r < 4; ++r) {
    for (long k = 0; k < 64; ++k) {
      list.find(k);
      s.find(k);
    }
  }
  const auto delta = aggregate() - before;
  EXPECT_EQ(delta.finger_hit, 0u);
  EXPECT_EQ(delta.finger_miss, 0u);
  EXPECT_EQ(delta.finger_skip, 0u);
}

// ---- Validation: stale fingers recover via backlinks ----------------------

// Leaky reclamation makes the recovery deterministic: the token always
// matches, so a finger on a deleted node MUST take the backlink path (the
// paper's own recovery mechanism) rather than falling back to the head.
TEST(Finger, DeletedFingerRecoversThroughBacklink) {
  using List =
      lf::FRList<long, long, std::less<long>, lf::reclaim::LeakyReclaimer>;
  List list;
  for (long k : {10, 20, 30}) ASSERT_TRUE(list.insert(k, k));
  ASSERT_TRUE(list.find(20).has_value());  // finger -> node 20
  // A DIFFERENT thread erases 20, so this thread's finger still points at
  // the (now marked, backlinked, unlinked) node.
  std::thread eraser([&] { ASSERT_TRUE(list.erase(20)); });
  eraser.join();
  const auto before = aggregate();
  EXPECT_FALSE(list.find(20).has_value());
  const auto delta = aggregate() - before;
  EXPECT_EQ(delta.finger_hit, 1u);  // recovered, not abandoned
  EXPECT_GE(delta.backlink_traversal, 1u);
  EXPECT_TRUE(list.validate().ok);
}

// Epoch variant of the same shape, plus actual reclamation: after the
// fingered tower is erased, churn advances the epoch until the victim's
// nodes are freed. The next search from the stale finger must reject it
// (token mismatch) without dereferencing the retired memory — this test is
// the ASan tripwire for the whole validation scheme.
TEST(Finger, ReclaimedFingerFallsBackToHead) {
  lf::FRSkipList<long, long> s;
  for (long k = 0; k < 32; ++k) ASSERT_TRUE(s.insert(k, k));

  std::atomic<int> phase{0};
  std::optional<long> second_result;
  lf::stats::Snapshot worker_delta;
  std::thread worker([&] {
    ASSERT_TRUE(s.find(7).has_value());  // installs the finger
    phase.store(1, std::memory_order_release);
    while (phase.load(std::memory_order_acquire) != 2) {
      std::this_thread::yield();  // unpinned: epochs can advance past us
    }
    const auto before = aggregate();
    second_result = s.find(7);
    worker_delta = aggregate() - before;
  });

  while (phase.load(std::memory_order_acquire) != 1) {
    std::this_thread::yield();
  }
  ASSERT_TRUE(s.erase(7));
  // Far beyond kAdvanceEvery retirements: the epoch advances several times
  // and node 7's tower is genuinely freed while the worker's finger still
  // names it.
  for (int r = 0; r < 40; ++r) {
    for (long k = 100; k < 164; ++k) ASSERT_TRUE(s.insert(k, k));
    for (long k = 100; k < 164; ++k) ASSERT_TRUE(s.erase(k));
  }
  phase.store(2, std::memory_order_release);
  worker.join();

  EXPECT_FALSE(second_result.has_value());
  // The pin epoch moved, so every saved level fails the token check.
  EXPECT_EQ(worker_delta.finger_hit, 0u);
  EXPECT_EQ(worker_delta.finger_miss, 1u);
  EXPECT_TRUE(s.validate().ok);
}

// Reference-counted variant: the erased node is recycled IMMEDIATELY and
// its memory reused by an unrelated insert. The stale finger re-acquires
// the node, sees a bumped reuse stamp (a different incarnation), and must
// reject it.
TEST(Finger, RecycledFingerRejectedByReuseStamp) {
  lf::FRListRC<long, long> list;
  for (long k : {10, 20, 30}) ASSERT_TRUE(list.insert(k, k));
  ASSERT_TRUE(list.find(20).has_value());  // finger -> node 20
  std::thread helper([&] {
    ASSERT_TRUE(list.erase(20));     // node 20 goes to the free list
    ASSERT_TRUE(list.insert(99, 99));  // LIFO free list: reuses its memory
  });
  helper.join();
  const auto before = aggregate();
  EXPECT_FALSE(list.find(20).has_value());
  const auto delta = aggregate() - before;
  EXPECT_EQ(delta.finger_miss, 1u);
  EXPECT_TRUE(list.contains(99));
  EXPECT_TRUE(list.validate_counts());
}

// Per-way stamp validation: recycling ONE cached node must kill only that
// way. The other ways' nodes were never recycled, so their stamps still
// match and they keep serving zero-step hits.
TEST(Finger, RecycledWayRejectedWhileOtherWaysSurvive) {
  lf::FRListRC<long, long> list;
  for (long k : {10, 20, 30, 40, 50}) ASSERT_TRUE(list.insert(k, k));
  ASSERT_TRUE(list.find(20).has_value());  // way A -> node 20
  ASSERT_TRUE(list.find(40).has_value());  // way B -> node 40
  std::thread helper([&] {
    ASSERT_TRUE(list.erase(20));       // node 20 goes to the free list
    ASSERT_TRUE(list.insert(99, 99));  // LIFO free list: reuses its memory
  });
  helper.join();
  const auto before = aggregate();
  // Way B first: its bracket [40, 50] is untouched by the recycle.
  ASSERT_TRUE(list.find(40).has_value());
  const auto mid = aggregate() - before;
  EXPECT_EQ(mid.finger_hit, 1u);
  EXPECT_EQ(mid.finger_miss, 0u);
  EXPECT_EQ(mid.curr_update, 0u);
  // Way A: the re-acquired node carries a bumped reuse stamp — a different
  // incarnation — and must be rejected without poisoning way B.
  EXPECT_FALSE(list.find(20).has_value());
  const auto delta = aggregate() - before;
  EXPECT_EQ(delta.finger_miss, 1u);
  EXPECT_TRUE(list.contains(99));
  EXPECT_TRUE(list.validate_counts());
}

// ---- Validation under hazard pointers (publish-then-revalidate) -----------

// Backlink recovery with reclamation racing it: another thread erases the
// fingered node and churns far past the scan threshold, so hazard scans run
// while this thread's retained slot still names the node. The chain-
// protecting scan must spare the node and its backlink chain; the next
// search re-acquires the slot and recovers through the backlink — the
// deterministic Leaky-row behavior, now with real reclamation in flight.
TEST(Finger, HazardDeletedFingerRecoversThroughBacklink) {
  HazardDomain hdom;  // must outlive edom: its drain feeds the hazard stage
  EpochDomain edom;
  HazardReclaimer rec(edom, hdom);
  HPList list(rec);
  for (long k : {10, 20, 30}) ASSERT_TRUE(list.insert(k, k));
  ASSERT_TRUE(list.find(20).has_value());  // publishes finger -> node 20
  std::thread eraser([&] {
    ASSERT_TRUE(list.erase(20));
    for (int r = 0; r < 64; ++r) {
      for (long k = 100; k < 140; ++k) ASSERT_TRUE(list.insert(k, k));
      for (long k = 100; k < 140; ++k) ASSERT_TRUE(list.erase(k));
    }
    edom.drain();  // push every grace-expired node into the hazard stage
    hdom.scan();   // must spare node 20: the main thread's slot names it
  });
  eraser.join();
  const auto before = aggregate();
  EXPECT_FALSE(list.find(20).has_value());
  const auto delta = aggregate() - before;
  EXPECT_EQ(delta.finger_hit, 1u);  // recovered, not abandoned
  EXPECT_GE(delta.backlink_traversal, 1u);
  EXPECT_EQ(delta.finger_miss, 0u);
  EXPECT_TRUE(list.validate().ok);
}

// Skip-list shape of the same property. Validation tries the lowest cached
// level first, so the deleted target is re-found through its LEVEL-1 entry,
// whose backlinks mirror the list's (upper entries never walk backlinks —
// a marked upper pred falls through to the next level).
TEST(Finger, HazardDeletedSkipFingerRecoversThroughBacklink) {
  HazardDomain hdom;
  EpochDomain edom;
  HazardReclaimer rec(edom, hdom);
  HPSkipList s(rec);
  for (long k : {10, 20, 30}) ASSERT_TRUE(s.insert(k, k));
  ASSERT_TRUE(s.find(20).has_value());
  std::thread eraser([&] { ASSERT_TRUE(s.erase(20)); });
  eraser.join();
  const auto before = aggregate();
  EXPECT_FALSE(s.find(20).has_value());
  const auto delta = aggregate() - before;
  EXPECT_EQ(delta.finger_hit, 1u);
  EXPECT_TRUE(s.validate().ok);
}

// The grown retained-slot budget, end to end: TWO ways' nodes are erased
// and real reclamation runs (drain + scan) while both publications are
// live. The scan must chain-walk EVERY published entry — not just the
// first — sparing both nodes and both backlink chains; each next search
// then re-acquires its own way and recovers through its own backlink. A
// scan that only walked entry 0 would free node 40 and this test would be
// a use-after-free under ASan.
TEST(Finger, HazardScanSparesAllPublishedWays) {
  HazardDomain hdom;
  EpochDomain edom;
  HazardReclaimer rec(edom, hdom);
  HPList list(rec);
  for (long k : {10, 20, 30, 40, 50}) ASSERT_TRUE(list.insert(k, k));
  ASSERT_TRUE(list.find(20).has_value());  // way A -> node 20, published
  ASSERT_TRUE(list.find(40).has_value());  // way B -> node 40, published
  std::thread eraser([&] {
    ASSERT_TRUE(list.erase(20));
    ASSERT_TRUE(list.erase(40));
    for (int r = 0; r < 64; ++r) {
      for (long k = 100; k < 140; ++k) ASSERT_TRUE(list.insert(k, k));
      for (long k = 100; k < 140; ++k) ASSERT_TRUE(list.erase(k));
    }
    edom.drain();  // both victims reach the hazard stage
    hdom.scan();   // must spare nodes 20 AND 40: both entries are retained
  });
  eraser.join();
  const auto before = aggregate();
  EXPECT_FALSE(list.find(20).has_value());
  EXPECT_FALSE(list.find(40).has_value());
  const auto delta = aggregate() - before;
  EXPECT_EQ(delta.finger_hit, 2u);  // both recovered via their backlinks
  EXPECT_EQ(delta.finger_miss, 0u);
  EXPECT_GE(delta.backlink_traversal, 2u);
  EXPECT_TRUE(list.validate().ok);
}

// Multi-level hazard fingers (one retained slot per level, each holding
// that level's pred's tower root — flat layout only): queries hopping
// around a small window must mostly re-enter through a cached UPPER level,
// something the level-1 entry alone cannot do (its window is ~1 key wide,
// which on this stream would hit ~1/16th of the time). The 20% floor sits
// well below the observed ~50% rate but far above the level-1 ceiling.
TEST(Finger, HazardSkipListWindowQueriesReenterThroughUpperLevels) {
  HazardDomain hdom;
  EpochDomain edom;
  HazardReclaimer rec(edom, hdom);
  HPSkipList s(rec);
  constexpr long kKeys = 4096;
  for (long k = 0; k < kKeys; ++k) ASSERT_TRUE(s.insert(k, k));
  const auto before = aggregate();
  // 128 windows of 32 keys each, 16 hops per window. A single window's hit
  // count is at the mercy of the (random) tower geometry inside it — a
  // tall tower mid-window can block most upper-level re-entries — so the
  // assertion averages across windows; only the aggregate is stable.
  std::uint64_t queries = 0;
  for (long w = 0; w < 128; ++w) {
    const long base = (w * 509) % (kKeys - 32);  // scattered window bases
    for (int i = 0; i < 16; ++i, ++queries)
      ASSERT_TRUE(s.find(base + (i * 7) % 32).has_value());
  }
  const auto delta = aggregate() - before;
  EXPECT_GT(delta.finger_hit, queries / 10);
  EXPECT_TRUE(s.validate().ok);
}

// The ASan tripwire for publish-then-revalidate: a finger whose slot
// publication was EVICTED (another structure's save on the same thread)
// points at memory that a scan is then free to reclaim. The next reuse
// attempt passes every deref-free check (instance, token, cached key) and
// must be rejected by the slot-match re-acquisition WITHOUT touching the
// freed node — under ASan a single dereference fails the whole suite.
TEST(Finger, HazardEvictedFingerRejectedAfterReclamation) {
  HazardDomain hdom;
  EpochDomain edom;
  HazardReclaimer rec(edom, hdom);
  HPList a(rec);
  HPList b(rec);  // consecutive instance ids: distinct TLS finger ways
  for (long k : {10, 20, 30}) ASSERT_TRUE(a.insert(k, k));
  ASSERT_TRUE(b.insert(5, 5));
  ASSERT_TRUE(a.find(20).has_value());  // a's finger -> node 20, published
  // A helper erases 20: the retirement is filed by another thread while the
  // main thread's TLS entry for `a` keeps naming the node.
  std::thread helper([&] { ASSERT_TRUE(a.erase(20)); });
  helper.join();
  // One retained slot per (thread, domain): b's save evicts a's
  // publication. From here the cached pointer has no protection.
  ASSERT_TRUE(b.find(5).has_value());
  edom.drain();  // grace over: node 20 reaches the hazard stage
  hdom.scan();   // no slot names it -> genuinely freed
  const auto before = aggregate();
  EXPECT_FALSE(a.find(20).has_value());
  const auto delta = aggregate() - before;
  EXPECT_EQ(delta.finger_miss, 1u);  // rejected by slot mismatch
  EXPECT_EQ(delta.finger_hit, 0u);
  EXPECT_TRUE(a.validate().ok);
}

// What the retained slot buys over the epoch token: churn that advances the
// epoch many times (the exact scenario of ReclaimedFingerFallsBackToHead
// above, where the strict-token epoch policy must miss) does NOT invalidate
// a hazard finger, because the churning structure is FingerOff and never
// evicts the slot.
TEST(Finger, HazardFingerSurvivesEpochAdvance) {
  using ChurnList = lf::FRList<long, long, std::less<long>, HazardReclaimer,
                               lf::mem::PoolAlloc, lf::sync::FingerOff>;
  HazardDomain hdom;
  EpochDomain edom;
  HazardReclaimer rec(edom, hdom);
  HPList a(rec);
  ChurnList b(rec);
  for (long k = 0; k < 16; ++k) ASSERT_TRUE(a.insert(k, k));
  ASSERT_TRUE(a.find(7).has_value());  // publishes the finger
  for (int r = 0; r < 40; ++r) {
    for (long k = 0; k < 64; ++k) ASSERT_TRUE(b.insert(k, k));
    for (long k = 0; k < 64; ++k) ASSERT_TRUE(b.erase(k));
  }
  const auto before = aggregate();
  EXPECT_TRUE(a.find(7).has_value());
  const auto delta = aggregate() - before;
  EXPECT_EQ(delta.finger_hit, 1u);  // slot match — epochs are irrelevant
  EXPECT_EQ(delta.finger_miss, 0u);
}

// FingerOff under the hazard reclaimer stays statically zero-cost: no
// finger counters move and nothing is ever published.
TEST(Finger, FingerOffUnderHazardKeepsCountersAtZero) {
  lf::FRList<long, long, std::less<long>, HazardReclaimer, lf::mem::PoolAlloc,
             lf::sync::FingerOff>
      list;
  lf::FRSkipList<long, long, std::less<long>, HazardReclaimer, 24,
                 lf::mem::FlatTowers, lf::sync::FingerOff>
      s;
  const auto before = aggregate();
  for (long k = 0; k < 64; ++k) {
    list.insert(k, k);
    s.insert(k, k);
  }
  for (int r = 0; r < 4; ++r) {
    for (long k = 0; k < 64; ++k) {
      list.find(k);
      s.find(k);
    }
  }
  const auto delta = aggregate() - before;
  EXPECT_EQ(delta.finger_hit, 0u);
  EXPECT_EQ(delta.finger_miss, 0u);
  EXPECT_EQ(delta.finger_skip, 0u);
}

// ---- Isolation: hints are per-instance, ids never reused ------------------

TEST(Finger, InstancesDoNotShareHints) {
  lf::FRList<long, long> a;
  lf::FRList<long, long> b;
  ASSERT_TRUE(a.insert(100, 1));
  ASSERT_TRUE(b.insert(200, 2));
  // Interleave so each op runs with the OTHER structure's hint freshest.
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(a.contains(100));
    EXPECT_TRUE(b.contains(200));
    EXPECT_FALSE(a.contains(200));
    EXPECT_FALSE(b.contains(100));
  }
  EXPECT_TRUE(a.validate().ok);
  EXPECT_TRUE(b.validate().ok);
}

TEST(Finger, DestroyedInstanceLeavesNoUsableHint) {
  auto first = std::make_unique<lf::FRSkipList<long, long>>();
  for (long k = 0; k < 16; ++k) ASSERT_TRUE(first->insert(k, k));
  ASSERT_TRUE(first->find(8).has_value());  // hint into `first`'s nodes
  first.reset();                            // nodes freed with the instance
  // A new instance gets a NEW id, so the old slot contents fail the id
  // check instead of being dereferenced (ASan-observable if they were).
  lf::FRSkipList<long, long> second;
  for (long k = 0; k < 16; ++k) ASSERT_TRUE(second.insert(k, k));
  EXPECT_TRUE(second.find(8).has_value());
  EXPECT_TRUE(second.validate().ok);
}

}  // namespace
