// Concurrent integration tests for FRList.
//
// On a single-core host these interleave via preemption; the assertions are
// all schedule-independent (exact-count semantics, invariants at
// quiescence), so they are meaningful regardless of core count.
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <set>
#include <thread>
#include <vector>

#include "lf/core/fr_list.h"
#include "lf/reclaim/epoch.h"
#include "lf/util/random.h"

namespace {

using IntList = lf::FRList<long, long>;

constexpr int kThreads = 4;

TEST(FRListConcurrent, DisjointRangeInserts) {
  IntList list;
  constexpr long kPerThread = 500;
  std::barrier start(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      start.arrive_and_wait();
      for (long i = 0; i < kPerThread; ++i) {
        const long k = t * kPerThread + i;
        ASSERT_TRUE(list.insert(k, k * 2));
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(list.size(), static_cast<std::size_t>(kThreads * kPerThread));
  for (long k = 0; k < kThreads * kPerThread; ++k) {
    ASSERT_TRUE(list.contains(k)) << k;
    ASSERT_EQ(*list.find(k), k * 2);
  }
  EXPECT_TRUE(list.validate().ok);
}

TEST(FRListConcurrent, ExactlyOneWinnerPerContestedKey) {
  IntList list;
  constexpr long kKeys = 200;
  std::atomic<long> wins{0};
  std::barrier start(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      start.arrive_and_wait();
      long local = 0;
      for (long k = 0; k < kKeys; ++k)
        if (list.insert(k, k)) ++local;
      wins.fetch_add(local);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(wins.load(), kKeys);  // each key inserted exactly once
  EXPECT_EQ(list.size(), static_cast<std::size_t>(kKeys));
  EXPECT_TRUE(list.validate().ok);
}

TEST(FRListConcurrent, ExactlyOneEraserPerKey) {
  IntList list;
  constexpr long kKeys = 200;
  for (long k = 0; k < kKeys; ++k) list.insert(k, k);
  std::atomic<long> wins{0};
  std::barrier start(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      start.arrive_and_wait();
      long local = 0;
      for (long k = 0; k < kKeys; ++k)
        if (list.erase(k)) ++local;
      wins.fetch_add(local);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(wins.load(), kKeys);  // each deletion reported exactly once
  EXPECT_TRUE(list.empty());
  EXPECT_TRUE(list.validate().ok);
}

TEST(FRListConcurrent, InsertEraseRace_NetCountConsistent) {
  // Each thread inserts its own key range then erases it; interleaved with
  // other threads doing the same. Net result must be empty.
  IntList list;
  constexpr long kPerThread = 300;
  std::barrier start(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      start.arrive_and_wait();
      for (long i = 0; i < kPerThread; ++i) {
        const long k = t * kPerThread + i;
        ASSERT_TRUE(list.insert(k, k));
        ASSERT_TRUE(list.contains(k));
        ASSERT_TRUE(list.erase(k));
        ASSERT_FALSE(list.contains(k));
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_TRUE(list.empty());
  EXPECT_TRUE(list.validate().ok);
}

TEST(FRListConcurrent, AdjacentKeyDeletions) {
  // Deleting adjacent nodes concurrently exercises the flag/backlink
  // machinery hardest (the predecessor of one deletion IS the other's
  // target). Repeat many rounds.
  IntList list;
  constexpr long kKeys = 64;
  for (int round = 0; round < 30; ++round) {
    for (long k = 0; k < kKeys; ++k) list.insert(k, k);
    std::barrier start(kThreads);
    std::atomic<long> erased{0};
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        start.arrive_and_wait();
        long local = 0;
        // Interleaved strides so deletions collide on neighbours.
        for (long k = t; k < kKeys; k += kThreads)
          if (list.erase(k)) ++local;
        for (long k = 0; k < kKeys; ++k)
          if (list.erase(k)) ++local;
        erased.fetch_add(local);
      });
    }
    for (auto& w : workers) w.join();
    ASSERT_EQ(erased.load(), kKeys);
    ASSERT_TRUE(list.empty());
    const auto rep = list.validate();
    ASSERT_TRUE(rep.ok) << rep.error;
  }
}

TEST(FRListConcurrent, MixedChurnKeepsInvariants) {
  IntList list;
  std::atomic<bool> stop{false};
  std::barrier start(kThreads + 1);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      lf::Xoshiro256 rng(1000 + t);
      start.arrive_and_wait();
      while (!stop.load(std::memory_order_acquire)) {
        const long k = static_cast<long>(rng.below(256));
        switch (rng.below(3)) {
          case 0: list.insert(k, k); break;
          case 1: list.erase(k); break;
          default: list.contains(k);
        }
      }
    });
  }
  start.arrive_and_wait();
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  stop.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  const auto rep = list.validate();
  EXPECT_TRUE(rep.ok) << rep.error;
  EXPECT_LE(list.size(), 256u);
}

TEST(FRListConcurrent, EpochReclamationActuallyFrees) {
  lf::reclaim::EpochDomain domain;
  {
    lf::FRList<long, long> list{lf::reclaim::EpochReclaimer(domain)};
    std::barrier start(kThreads);
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        lf::Xoshiro256 rng(55 + t);
        start.arrive_and_wait();
        for (int i = 0; i < 20000; ++i) {
          const long k = static_cast<long>(rng.below(128));
          if (rng.below(2) == 0) {
            list.insert(k, k);
          } else {
            list.erase(k);
          }
        }
      });
    }
    for (auto& w : workers) w.join();
    domain.drain();
    // With 160k ops over 128 keys, at least some thousands of nodes must
    // have been physically deleted, retired and freed.
    EXPECT_EQ(domain.retired_count(), 0u);
    EXPECT_TRUE(list.validate().ok);
  }
}

TEST(FRListConcurrent, ReadersDuringChurnSeeOnlySaneValues) {
  IntList list;
  // Values are derived from keys; a reader must never observe a torn pair.
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    lf::Xoshiro256 rng(77);
    while (!stop.load(std::memory_order_acquire)) {
      const long k = static_cast<long>(rng.below(64));
      list.insert(k, k * 7);
      list.erase(static_cast<long>(rng.below(64)));
    }
  });
  std::thread reader([&] {
    lf::Xoshiro256 rng(78);
    for (int i = 0; i < 50000; ++i) {
      const long k = static_cast<long>(rng.below(64));
      const auto v = list.find(k);
      if (v.has_value()) { ASSERT_EQ(*v, k * 7); }
    }
    stop.store(true, std::memory_order_release);
  });
  reader.join();
  writer.join();
  EXPECT_TRUE(list.validate().ok);
}

}  // namespace
