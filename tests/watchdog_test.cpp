// Unit tests for the progress watchdog (compiled in every build mode),
// including the detect → report → remediate escalation ladder.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

#include "lf/harness/watchdog.h"
#include "lf/reclaim/epoch.h"

namespace {

using namespace std::chrono_literals;
using lf::harness::Watchdog;

Watchdog::Options fast_opts(std::atomic<bool>& fired, std::string& report) {
  Watchdog::Options o;
  o.stall_timeout = 300ms;
  o.poll_interval = 50ms;
  o.on_stall = [&](const std::string& r) {
    report = r;
    fired.store(true);
  };
  return o;
}

TEST(Watchdog, NoStallWhileBeating) {
  std::atomic<bool> fired{false};
  std::string report;
  Watchdog dog(2, fast_opts(fired, report));
  for (int i = 0; i < 20; ++i) {
    dog.beat(0);
    dog.beat(1);
    std::this_thread::sleep_for(40ms);
  }
  dog.mark_done(0);
  dog.mark_done(1);
  dog.stop();
  EXPECT_FALSE(fired.load());
  EXPECT_FALSE(dog.stalled());
}

TEST(Watchdog, DetectsSilentThread) {
  std::atomic<bool> fired{false};
  std::string report;
  Watchdog dog(2, fast_opts(fired, report));
  // Thread 1 beats; thread 0 never does.
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (!fired.load() && std::chrono::steady_clock::now() < deadline) {
    dog.beat(1);
    std::this_thread::sleep_for(25ms);
  }
  dog.stop();
  ASSERT_TRUE(fired.load());
  EXPECT_TRUE(dog.stalled());
  EXPECT_NE(report.find("thread 0"), std::string::npos) << report;
  EXPECT_NE(report.find("no progress"), std::string::npos) << report;
}

TEST(Watchdog, DoneThreadsAreNotMonitored) {
  std::atomic<bool> fired{false};
  std::string report;
  Watchdog dog(1, fast_opts(fired, report));
  dog.mark_done(0);
  std::this_thread::sleep_for(600ms);
  dog.stop();
  EXPECT_FALSE(fired.load());
}

TEST(Watchdog, ParkedThreadsAreNotStalls) {
  // A chaos-parked victim is the experiment, not a failure.
  std::atomic<bool> fired{false};
  std::string report;
  Watchdog dog(1, fast_opts(fired, report));
  dog.mark_parked(0);
  std::this_thread::sleep_for(600ms);
  dog.stop();
  EXPECT_FALSE(fired.load());
}

TEST(Watchdog, DumpListsEveryThread) {
  std::atomic<bool> fired{false};
  std::string report;
  Watchdog dog(3, fast_opts(fired, report));
  dog.beat(1);
  dog.beat(1);
  dog.mark_done(2);
  const std::string d = dog.dump();
  dog.mark_done(0);
  dog.mark_done(1);
  dog.stop();
  EXPECT_NE(d.find("thread 0: beats=0"), std::string::npos) << d;
  EXPECT_NE(d.find("thread 1: beats=2"), std::string::npos) << d;
  EXPECT_NE(d.find("thread 2: beats=0 done"), std::string::npos) << d;
}

TEST(Watchdog, EscalationReportsAndRemediatesBeforeFatal) {
  // With the resilience hooks set, a stall must walk the full ladder:
  // structured report → remediation → a fresh stall window → only then the
  // fatal handler, annotated as post-remediation.
  std::atomic<int> reports{0};
  std::atomic<int> remediations{0};
  std::atomic<bool> fatal{false};
  std::string fatal_report;
  Watchdog::StallReport first;
  Watchdog::Options o;
  o.stall_timeout = 300ms;
  o.poll_interval = 50ms;
  o.on_stall = [&](const std::string& r) {
    fatal_report = r;
    fatal.store(true);
  };
  o.on_stall_report = [&](const Watchdog::StallReport& r) {
    first = r;
    reports.fetch_add(1);
  };
  o.remediate = [&] { remediations.fetch_add(1); };
  Watchdog dog(1, o);  // thread 0 never beats
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (!fatal.load() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(25ms);
  }
  dog.stop();
  ASSERT_TRUE(fatal.load());
  EXPECT_EQ(reports.load(), 1);
  EXPECT_EQ(remediations.load(), 1);
  EXPECT_EQ(dog.escalations(), 1u);
  EXPECT_EQ(first.thread, 0);
  EXPECT_GE(first.stalled_for, 300ms);
  EXPECT_NE(first.details.find("escalating"), std::string::npos)
      << first.details;
  EXPECT_NE(fatal_report.find("after remediation"), std::string::npos)
      << fatal_report;
}

TEST(Watchdog, RemediationForgivesARevivedThread) {
  // If remediation actually unwedges the thread, the fatal handler must
  // never fire — and renewed progress resets the ladder.
  std::atomic<bool> reported{false};
  std::atomic<bool> fatal{false};
  Watchdog::Options o;
  o.stall_timeout = 300ms;
  o.poll_interval = 50ms;
  o.on_stall = [&](const std::string&) { fatal.store(true); };
  o.on_stall_report = [&](const Watchdog::StallReport&) {
    reported.store(true);
  };
  Watchdog dog(1, o);
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (!reported.load() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(25ms);
  }
  ASSERT_TRUE(reported.load());
  // "Remediation worked": the thread beats again through two full windows.
  for (int i = 0; i < 30; ++i) {
    dog.beat(0);
    std::this_thread::sleep_for(25ms);
  }
  dog.mark_done(0);
  dog.stop();
  EXPECT_FALSE(fatal.load());
  EXPECT_FALSE(dog.stalled());
}

TEST(Watchdog, EpochDomainHookReportsAndNeutralizesStalledReader) {
  // End-to-end ladder against a real domain: a reader parked while pinned
  // stalls a (never-beating) worker slot; the escalation appends the epoch
  // stall dump to the report and the default remediation —
  // EpochDomain::remediate_now() — ejects the parked pin.
  lf::reclaim::EpochDomain domain;
  lf::reclaim::EpochDomain::ResilienceOptions ro;
  ro.neutralize = true;
  ro.blame_threshold = 4;
  domain.set_resilience(ro);

  std::mutex mu;
  std::condition_variable cv;
  bool pinned = false, release = false;
  std::thread victim([&] {
    auto g = domain.guard();
    std::unique_lock lk(mu);
    pinned = true;
    cv.notify_all();
    cv.wait(lk, [&] { return release; });
  });
  {
    std::unique_lock lk(mu);
    cv.wait(lk, [&] { return pinned; });
  }

  std::atomic<bool> reported{false};
  std::string details;
  Watchdog::Options o;
  o.stall_timeout = 300ms;
  o.poll_interval = 50ms;
  o.on_stall = [](const std::string&) {};  // not under test; never abort
  o.on_stall_report = [&](const Watchdog::StallReport& r) {
    details = r.details;
    reported.store(true);
  };
  o.epoch_domain = &domain;
  {
    Watchdog dog(1, o);
    const auto deadline = std::chrono::steady_clock::now() + 5s;
    while (!reported.load() && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(25ms);
    }
    dog.stop();
  }
  ASSERT_TRUE(reported.load());
  EXPECT_NE(details.find("epoch domain:"), std::string::npos) << details;
  EXPECT_NE(details.find("active=1"), std::string::npos) << details;
  EXPECT_EQ(domain.ejected_count(), 1u);  // remediation neutralized the pin

  {
    std::lock_guard lk(mu);
    release = true;
    cv.notify_all();
  }
  victim.join();
  EXPECT_EQ(domain.ejected_count(), 0u);
}

}  // namespace
