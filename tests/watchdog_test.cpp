// Unit tests for the progress watchdog (compiled in every build mode).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "lf/harness/watchdog.h"

namespace {

using namespace std::chrono_literals;
using lf::harness::Watchdog;

Watchdog::Options fast_opts(std::atomic<bool>& fired, std::string& report) {
  Watchdog::Options o;
  o.stall_timeout = 300ms;
  o.poll_interval = 50ms;
  o.on_stall = [&](const std::string& r) {
    report = r;
    fired.store(true);
  };
  return o;
}

TEST(Watchdog, NoStallWhileBeating) {
  std::atomic<bool> fired{false};
  std::string report;
  Watchdog dog(2, fast_opts(fired, report));
  for (int i = 0; i < 20; ++i) {
    dog.beat(0);
    dog.beat(1);
    std::this_thread::sleep_for(40ms);
  }
  dog.mark_done(0);
  dog.mark_done(1);
  dog.stop();
  EXPECT_FALSE(fired.load());
  EXPECT_FALSE(dog.stalled());
}

TEST(Watchdog, DetectsSilentThread) {
  std::atomic<bool> fired{false};
  std::string report;
  Watchdog dog(2, fast_opts(fired, report));
  // Thread 1 beats; thread 0 never does.
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (!fired.load() && std::chrono::steady_clock::now() < deadline) {
    dog.beat(1);
    std::this_thread::sleep_for(25ms);
  }
  dog.stop();
  ASSERT_TRUE(fired.load());
  EXPECT_TRUE(dog.stalled());
  EXPECT_NE(report.find("thread 0"), std::string::npos) << report;
  EXPECT_NE(report.find("no progress"), std::string::npos) << report;
}

TEST(Watchdog, DoneThreadsAreNotMonitored) {
  std::atomic<bool> fired{false};
  std::string report;
  Watchdog dog(1, fast_opts(fired, report));
  dog.mark_done(0);
  std::this_thread::sleep_for(600ms);
  dog.stop();
  EXPECT_FALSE(fired.load());
}

TEST(Watchdog, ParkedThreadsAreNotStalls) {
  // A chaos-parked victim is the experiment, not a failure.
  std::atomic<bool> fired{false};
  std::string report;
  Watchdog dog(1, fast_opts(fired, report));
  dog.mark_parked(0);
  std::this_thread::sleep_for(600ms);
  dog.stop();
  EXPECT_FALSE(fired.load());
}

TEST(Watchdog, DumpListsEveryThread) {
  std::atomic<bool> fired{false};
  std::string report;
  Watchdog dog(3, fast_opts(fired, report));
  dog.beat(1);
  dog.beat(1);
  dog.mark_done(2);
  const std::string d = dog.dump();
  dog.mark_done(0);
  dog.mark_done(1);
  dog.stop();
  EXPECT_NE(d.find("thread 0: beats=0"), std::string::npos) << d;
  EXPECT_NE(d.find("thread 1: beats=2"), std::string::npos) << d;
  EXPECT_NE(d.find("thread 2: beats=0 done"), std::string::npos) << d;
}

}  // namespace
