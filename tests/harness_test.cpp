// Tests for the instrumentation and workload harness: counters, contention
// meter, chain histogram, key/op generators, the run driver, and the table
// printer.
#include <gtest/gtest.h>

#include <barrier>
#include <thread>
#include <vector>

#include "lf/core/fr_list.h"
#include "lf/harness/table.h"
#include "lf/instrument/contention.h"
#include "lf/instrument/counters.h"
#include "lf/workload/keygen.h"
#include "lf/workload/opmix.h"
#include "lf/workload/runner.h"

namespace {

TEST(StepCounters, ThreadLocalIncrementsAggregate) {
  const auto before = lf::stats::aggregate();
  lf::stats::tls().backlink_traversal.inc(5);
  lf::stats::tls().cas_attempt.inc();
  const auto delta = lf::stats::aggregate() - before;
  EXPECT_EQ(delta.backlink_traversal, 5u);
  EXPECT_EQ(delta.cas_attempt, 1u);
}

TEST(StepCounters, ExitedThreadCountsAreRetained) {
  const auto before = lf::stats::aggregate();
  std::thread t([] { lf::stats::tls().restart.inc(7); });
  t.join();
  const auto delta = lf::stats::aggregate() - before;
  EXPECT_EQ(delta.restart, 7u);
}

TEST(StepCounters, MultiThreadSumIsExact) {
  const auto before = lf::stats::aggregate();
  constexpr int kThreads = 4;
  std::vector<std::thread> ts;
  for (int i = 0; i < kThreads; ++i) {
    ts.emplace_back([] {
      for (int j = 0; j < 1000; ++j) lf::stats::tls().next_update.inc();
    });
  }
  for (auto& t : ts) t.join();
  const auto delta = lf::stats::aggregate() - before;
  EXPECT_EQ(delta.next_update, 4000u);
}

TEST(StepCounters, SnapshotArithmetic) {
  lf::stats::Snapshot a, b;
  a.cas_attempt = 10;
  a.cas_success = 6;
  a.backlink_traversal = 2;
  a.next_update = 3;
  a.curr_update = 4;
  a.op_insert = 2;
  a.op_search = 2;
  EXPECT_EQ(a.cas_failures(), 4u);
  EXPECT_EQ(a.essential_steps(), 10u + 2 + 3 + 4);
  EXPECT_EQ(a.total_ops(), 4u);
  EXPECT_DOUBLE_EQ(a.steps_per_op(), 19.0 / 4.0);
  b.cas_attempt = 4;
  const auto d = a - b;
  EXPECT_EQ(d.cas_attempt, 6u);
  b += a;
  EXPECT_EQ(b.cas_attempt, 14u);
}

TEST(ChainHistogram, RecordsAndResets) {
  lf::stats::reset_chain_hist();
  lf::stats::chain_hist_tls().record(3);
  lf::stats::chain_hist_tls().record(1);
  auto agg = lf::stats::aggregate_chain_hist();
  EXPECT_EQ(agg.count(), 2u);
  EXPECT_EQ(agg.max(), 3u);
  lf::stats::reset_chain_hist();
  agg = lf::stats::aggregate_chain_hist();
  EXPECT_EQ(agg.count(), 0u);
}

TEST(ChainHistogram, MergesAcrossExitedThreads) {
  lf::stats::reset_chain_hist();
  std::thread t([] { lf::stats::chain_hist_tls().record(9); });
  t.join();
  const auto agg = lf::stats::aggregate_chain_hist();
  EXPECT_EQ(agg.count(), 1u);
  EXPECT_EQ(agg.max(), 9u);
}

TEST(ContentionMeter, CountsOverlappingOperations) {
  lf::stats::ContentionMeter meter;
  {
    lf::stats::ContentionMeter::OperationScope a(meter);
    EXPECT_EQ(meter.inflight_now(), 1);
    {
      lf::stats::ContentionMeter::OperationScope b(meter);
      EXPECT_EQ(meter.inflight_now(), 2);
    }
  }
  EXPECT_EQ(meter.inflight_now(), 0);
  EXPECT_EQ(meter.operations(), 2u);
  // Inner op observed 2 in-flight; outer observed max(1 at start, 1 at end)
  // = 1 (the inner one finished first). Average = 1.5.
  EXPECT_DOUBLE_EQ(meter.average(), 1.5);
}

TEST(ContentionMeter, ResetZeroes) {
  lf::stats::ContentionMeter meter;
  { lf::stats::ContentionMeter::OperationScope a(meter); }
  meter.reset();
  EXPECT_EQ(meter.operations(), 0u);
  EXPECT_DOUBLE_EQ(meter.average(), 0.0);
}

TEST(KeyGen, UniformInRangeDeterministic) {
  lf::workload::KeyGen a(lf::workload::KeyDist::kUniform, 100, 9);
  lf::workload::KeyGen b(lf::workload::KeyDist::kUniform, 100, 9);
  for (int i = 0; i < 1000; ++i) {
    const auto k = a.next();
    EXPECT_LT(k, 100u);
    EXPECT_EQ(k, b.next());
  }
}

TEST(KeyGen, ZipfSkewsTowardLowRanks) {
  lf::workload::KeyGen g(lf::workload::KeyDist::kZipfian, 1000, 3, 0.99);
  int low = 0;
  for (int i = 0; i < 10000; ++i)
    if (g.next() < 10) ++low;
  EXPECT_GT(low, 2000);  // top-10 ranks draw a large share under theta=.99
}

// scramble() must be a PERMUTATION of [0, key_space): if two ranks ever
// mapped to the same key, scrambled Zipf would merge their popularity mass
// and E13's hit-rate tables would measure a different distribution than
// the unscrambled control. Exhaustive check: every output in range, no
// output repeated — over the whole key space, that is exactly bijectivity
// (and hence exact popularity preservation, rank for rank).
void expect_scramble_bijective(std::uint64_t key_space) {
  lf::workload::KeyGen g(lf::workload::KeyDist::kZipfian, key_space, 1, 0.99,
                         {.scramble = true});
  std::vector<bool> seen(key_space, false);
  for (std::uint64_t k = 0; k < key_space; ++k) {
    const std::uint64_t s = g.scramble(k);
    ASSERT_LT(s, key_space) << "input " << k;
    ASSERT_FALSE(seen[s]) << "collision at input " << k << " -> " << s;
    seen[s] = true;
  }
}

TEST(KeyGen, ScrambleBijectiveSmallKeySpace) {
  expect_scramble_bijective(16);   // power of two: no cycle walking needed
  expect_scramble_bijective(2);    // degenerate edge
}

TEST(KeyGen, ScrambleBijectiveNonPowerOfTwoKeySpace) {
  expect_scramble_bijective(3);     // walks within a 4-cycle domain
  expect_scramble_bijective(1000);  // walks within a 1024 domain
  expect_scramble_bijective(4097);  // just past a power of two: worst
                                    // in-range density (~50%), the
                                    // longest expected cycle walks
}

TEST(KeyGen, ScrambleIsDecorrelatedFromRank) {
  // The point of scrambling: the hottest ranks must not stay clustered at
  // the left edge. With 4096 keys, ranks 0..9 should not all land in the
  // bottom quarter of the key space.
  lf::workload::KeyGen g(lf::workload::KeyDist::kZipfian, 4096, 1, 0.99,
                         {.scramble = true});
  int bottom_quarter = 0;
  for (std::uint64_t k = 0; k < 10; ++k)
    if (g.scramble(k) < 1024) ++bottom_quarter;
  EXPECT_LT(bottom_quarter, 10);
}

TEST(OpMix, RespectsPercentages) {
  lf::workload::OpMix mix{30, 20};
  lf::Xoshiro256 rng(4);
  int ins = 0, del = 0, sea = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    switch (mix.pick(rng)) {
      case lf::workload::Op::kInsert: ++ins; break;
      case lf::workload::Op::kErase: ++del; break;
      case lf::workload::Op::kSearch: ++sea; break;
    }
  }
  EXPECT_NEAR(ins / double(kN), 0.30, 0.01);
  EXPECT_NEAR(del / double(kN), 0.20, 0.01);
  EXPECT_NEAR(sea / double(kN), 0.50, 0.01);
}

TEST(Runner, PrefillInsertsExactCount) {
  lf::FRList<long, long> list;
  lf::workload::RunConfig cfg;
  cfg.prefill = 333;
  cfg.key_space = 1024;
  lf::workload::prefill(list, cfg);
  EXPECT_EQ(list.size(), 333u);
}

TEST(Runner, RunsExactOpCountAndReportsSteps) {
  lf::FRList<long, long> list;
  lf::workload::RunConfig cfg;
  cfg.threads = 3;
  cfg.ops_per_thread = 5000;
  cfg.key_space = 256;
  cfg.prefill = 128;
  lf::workload::prefill(list, cfg);
  const auto res = lf::workload::run_workload(list, cfg);
  EXPECT_EQ(res.total_ops, 3u * 5000u);
  EXPECT_EQ(res.steps.total_ops(), res.total_ops);
  EXPECT_GT(res.steps.essential_steps(), res.total_ops);  // > 1 step/op
  EXPECT_GT(res.steps_per_op(), 1.0);
  EXPECT_GT(res.seconds, 0.0);
  EXPECT_GE(res.avg_contention, 1.0);  // every op sees at least itself
  EXPECT_TRUE(list.validate().ok);
}

TEST(Runner, SearchOnlyWorkloadDoesNoCas) {
  lf::FRList<long, long> list;
  lf::workload::RunConfig cfg;
  cfg.threads = 2;
  cfg.ops_per_thread = 2000;
  cfg.mix = {0, 0};  // search-only
  cfg.prefill = 100;
  cfg.key_space = 200;
  lf::workload::prefill(list, cfg);
  const auto res = lf::workload::run_workload(list, cfg);
  EXPECT_EQ(res.steps.cas_attempt, 0u);
  EXPECT_EQ(res.steps.op_search, res.total_ops);
}

TEST(Table, AlignsAndFormats) {
  lf::harness::Table t({"impl", "n", "steps/op"});
  t.add_row({"FRList", "1024", lf::harness::Table::num(12.345, 2)});
  t.add_row({"Harris", "1024", lf::harness::Table::num(99.9, 2)});
  const auto s = t.to_string();
  EXPECT_NE(s.find("impl"), std::string::npos);
  EXPECT_NE(s.find("12.35"), std::string::npos);  // rounded to 2 decimals
  EXPECT_NE(s.find("99.90"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Table, RatioHelper) {
  EXPECT_EQ(lf::harness::Table::ratio(10, 4, 1), "2.5x");
  EXPECT_EQ(lf::harness::Table::ratio(1, 0), "-");
}

TEST(Table, ShortRowsArePadded) {
  lf::harness::Table t({"a", "b", "c"});
  t.add_row({"only-one"});
  EXPECT_NO_THROW(t.to_string());
}

}  // namespace
