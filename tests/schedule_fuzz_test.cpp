// Schedule fuzzing: concurrent churn with randomly injected yields.
//
// On a single-core host, threads are preempted only at timeslice
// boundaries, so most tests exercise few interleavings. Injecting
// std::this_thread::yield() at random points between operations (and the
// OS moving threads at those points) multiplies the schedules covered —
// crucially including switches in the middle of multi-C&S sequences left
// half-done, which is exactly where the paper's helping machinery must
// take over. Every structure must hold its invariants and exact-count
// semantics under any such schedule.
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <thread>
#include <vector>

#include "lf/core/fr_list.h"
#include "lf/core/fr_list_noflag.h"
#include "lf/core/fr_list_rc.h"
#include "lf/core/fr_skiplist.h"
#include "lf/util/random.h"

namespace {

constexpr int kThreads = 4;

// Churn with yield injection; returns the net number of keys that should
// remain (tracked exactly via per-op results).
template <typename Set>
void fuzz_churn(Set& set, std::uint64_t seed, int ops_per_thread,
                std::uint64_t key_space, std::atomic<long>& net) {
  std::barrier start(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      lf::Xoshiro256 rng(seed + static_cast<std::uint64_t>(t) * 131);
      long local_net = 0;
      start.arrive_and_wait();
      for (int i = 0; i < ops_per_thread; ++i) {
        if (rng.below(4) == 0) std::this_thread::yield();  // fuzz point
        const long k = static_cast<long>(rng.below(key_space));
        switch (rng.below(3)) {
          case 0:
            if (set.insert(k, k)) ++local_net;
            break;
          case 1:
            if (set.erase(k)) --local_net;
            break;
          default:
            set.contains(k);
        }
        if (rng.below(8) == 0) std::this_thread::yield();  // fuzz point
      }
      net.fetch_add(local_net);
    });
  }
  for (auto& w : workers) w.join();
}

TEST(ScheduleFuzz, FRListExactCountsUnderYields) {
  for (std::uint64_t seed : {11u, 222u, 3333u}) {
    lf::FRList<long, long> list;
    std::atomic<long> net{0};
    fuzz_churn(list, seed, 8000, 64, net);
    // Exact-count semantics: successful inserts minus successful erases
    // must equal the final size — every win was real, every loss was real.
    EXPECT_EQ(list.size(), static_cast<std::size_t>(net.load()))
        << "seed " << seed;
    const auto rep = list.validate();
    EXPECT_TRUE(rep.ok) << "seed " << seed << ": " << rep.error;
  }
}

TEST(ScheduleFuzz, FRSkipListExactCountsUnderYields) {
  for (std::uint64_t seed : {44u, 555u, 6666u}) {
    lf::FRSkipList<long, long> s;
    std::atomic<long> net{0};
    fuzz_churn(s, seed, 6000, 64, net);
    EXPECT_EQ(s.size(), static_cast<std::size_t>(net.load()))
        << "seed " << seed;
    const auto rep = s.validate();
    EXPECT_TRUE(rep.ok) << "seed " << seed << ": " << rep.error;
  }
}

TEST(ScheduleFuzz, FRListNoFlagExactCountsUnderYields) {
  for (std::uint64_t seed : {77u, 888u}) {
    lf::FRListNoFlag<long, long> list;
    std::atomic<long> net{0};
    fuzz_churn(list, seed, 8000, 64, net);
    EXPECT_EQ(list.size(), static_cast<std::size_t>(net.load()))
        << "seed " << seed;
  }
}

TEST(ScheduleFuzz, FRListRCExactCountsAndAccountingUnderYields) {
  for (std::uint64_t seed : {99u, 1010u}) {
    lf::FRListRC<long, long> list;
    std::atomic<long> net{0};
    fuzz_churn(list, seed, 6000, 64, net);
    EXPECT_EQ(list.size(), static_cast<std::size_t>(net.load()))
        << "seed " << seed;
    EXPECT_TRUE(list.validate_counts()) << "seed " << seed;
    EXPECT_EQ(list.arena_count(), list.free_count() + list.size() + 2)
        << "seed " << seed;
  }
}

TEST(ScheduleFuzz, HotTwoKeyDuel) {
  // The tightest possible conflict: four threads fight over TWO adjacent
  // keys with constant insert/erase, maximizing flag/mark/backlink
  // interactions on the same pair of nodes.
  lf::FRList<long, long> list;
  std::atomic<long> net{0};
  fuzz_churn(list, 31337, 12000, 2, net);
  EXPECT_EQ(list.size(), static_cast<std::size_t>(net.load()));
  EXPECT_TRUE(list.validate().ok);
}

}  // namespace
