// Schedule fuzzing: concurrent churn with seeded yield injection.
//
// On a single-core host, threads are preempted only at timeslice
// boundaries, so most tests exercise few interleavings. Injecting yields
// at operation boundaries (and the OS moving threads at those points)
// multiplies the schedules covered — crucially including switches in the
// middle of multi-C&S sequences left half-done, which is exactly where
// the paper's helping machinery must take over. Every structure must hold
// its invariants and exact-count semantics under any such schedule.
//
// Yields are routed through chaos::YieldInjector: deterministic per seed
// in every build, and in a -DLF_CHAOS=ON build each boundary additionally
// registers as a kOpBoundary injection point, so the PCT scheduler (when
// a test arms it) perturbs these workloads too.
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <thread>
#include <vector>

#include "lf/chaos/chaos.h"
#include "lf/core/fr_list.h"
#include "lf/core/fr_list_noflag.h"
#include "lf/core/fr_list_rc.h"
#include "lf/core/fr_skiplist.h"
#include "lf/core/fr_skiplist_rc.h"
#include "lf/mem/tower.h"
#include "lf/util/random.h"

namespace {

constexpr int kThreads = 4;

// Churn with yield injection; accumulates into `net` the net number of
// keys that should remain (tracked exactly via per-op results).
template <typename Set>
void fuzz_churn(Set& set, std::uint64_t seed, int ops_per_thread,
                std::uint64_t key_space, std::atomic<long>& net) {
  std::barrier start(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      lf::Xoshiro256 rng(seed + static_cast<std::uint64_t>(t) * 131);
      lf::chaos::YieldInjector fuzz(seed * 977 +
                                    static_cast<std::uint64_t>(t));
      long local_net = 0;
      start.arrive_and_wait();
      for (int i = 0; i < ops_per_thread; ++i) {
        fuzz.op_boundary();
        const long k = static_cast<long>(rng.below(key_space));
        switch (rng.below(3)) {
          case 0:
            if (set.insert(k, k)) ++local_net;
            break;
          case 1:
            if (set.erase(k)) --local_net;
            break;
          default:
            set.contains(k);
        }
        fuzz.op_boundary();
      }
      net.fetch_add(local_net);
    });
  }
  for (auto& w : workers) w.join();
}

TEST(ScheduleFuzz, FRListExactCountsUnderYields) {
  for (std::uint64_t seed : {11u, 222u, 3333u}) {
    lf::FRList<long, long> list;
    std::atomic<long> net{0};
    fuzz_churn(list, seed, 8000, 64, net);
    // Exact-count semantics: successful inserts minus successful erases
    // must equal the final size — every win was real, every loss was real.
    EXPECT_EQ(list.size(), static_cast<std::size_t>(net.load()))
        << "seed " << seed;
    const auto rep = list.validate();
    EXPECT_TRUE(rep.ok) << "seed " << seed << ": " << rep.error;
  }
}

TEST(ScheduleFuzz, FRListNoFlagExactCountsUnderYields) {
  for (std::uint64_t seed : {77u, 888u}) {
    lf::FRListNoFlag<long, long> list;
    std::atomic<long> net{0};
    fuzz_churn(list, seed, 8000, 64, net);
    EXPECT_EQ(list.size(), static_cast<std::size_t>(net.load()))
        << "seed " << seed;
  }
}

TEST(ScheduleFuzz, FRListRCExactCountsAndAccountingUnderYields) {
  for (std::uint64_t seed : {99u, 1010u}) {
    lf::FRListRC<long, long> list;
    std::atomic<long> net{0};
    fuzz_churn(list, seed, 6000, 64, net);
    EXPECT_EQ(list.size(), static_cast<std::size_t>(net.load()))
        << "seed " << seed;
    EXPECT_TRUE(list.validate_counts()) << "seed " << seed;
    EXPECT_EQ(list.arena_count(), list.free_count() + list.size() + 2)
        << "seed " << seed;
  }
}

TEST(ScheduleFuzz, FRSkipListRCExactCountsAndAccountingUnderYields) {
  for (std::uint64_t seed : {1212u, 2323u}) {
    lf::FRSkipListRC<long, long> s;
    std::atomic<long> net{0};
    fuzz_churn(s, seed, 5000, 64, net);
    EXPECT_EQ(s.size(), static_cast<std::size_t>(net.load()))
        << "seed " << seed;
    // Arena accounting: every node ever allocated is free, linked, or a
    // sentinel — no leak and no double-free under any schedule.
    EXPECT_TRUE(s.validate_accounting()) << "seed " << seed;
  }
}

// All four memory-layout/allocator combinations from the cache-conscious
// memory layer must survive schedule fuzzing identically: layout must not
// change semantics, only placement.
template <typename Layout>
struct SkipListLayoutFuzz : ::testing::Test {};

using AllLayouts =
    ::testing::Types<lf::mem::ChainedTowers, lf::mem::PooledChainedTowers,
                     lf::mem::FlatTowers, lf::mem::FlatTowersHeap>;

class LayoutNames {
 public:
  template <typename Layout>
  static std::string GetName(int) {
    // Layout::kName contains '/', which gtest forbids in test names.
    std::string n = Layout::kName;
    for (char& c : n)
      if (c == '/') c = '_';
    return n;
  }
};

TYPED_TEST_SUITE(SkipListLayoutFuzz, AllLayouts, LayoutNames);

TYPED_TEST(SkipListLayoutFuzz, ExactCountsUnderYields) {
  for (std::uint64_t seed : {44u, 555u, 6666u}) {
    lf::FRSkipList<long, long, std::less<long>, lf::reclaim::EpochReclaimer,
                   24, TypeParam>
        s;
    std::atomic<long> net{0};
    fuzz_churn(s, seed, 6000, 64, net);
    EXPECT_EQ(s.size(), static_cast<std::size_t>(net.load()))
        << "seed " << seed;
    const auto rep = s.validate();
    EXPECT_TRUE(rep.ok) << "seed " << seed << ": " << rep.error;
  }
}

// The finger layer must be semantically invisible: a finger-disabled build
// of every finger-bearing structure holds the same exact-count guarantees
// under the same seeds (and its counters must stay at zero, proving the
// static FingerOff really compiles the layer out).
TEST(ScheduleFuzz, FingerOffVariantsExactCountsUnderYields) {
  const auto before = lf::stats::aggregate();
  {
    lf::FRList<long, long, std::less<long>, lf::reclaim::EpochReclaimer,
               lf::mem::PoolAlloc, lf::sync::FingerOff>
        list;
    std::atomic<long> net{0};
    fuzz_churn(list, 404, 6000, 64, net);
    EXPECT_EQ(list.size(), static_cast<std::size_t>(net.load()));
    EXPECT_TRUE(list.validate().ok);
  }
  {
    lf::FRSkipList<long, long, std::less<long>, lf::reclaim::EpochReclaimer,
                   24, lf::mem::FlatTowers, lf::sync::FingerOff>
        s;
    std::atomic<long> net{0};
    fuzz_churn(s, 505, 5000, 64, net);
    EXPECT_EQ(s.size(), static_cast<std::size_t>(net.load()));
    EXPECT_TRUE(s.validate().ok);
  }
  {
    lf::FRListRC<long, long, std::less<long>, lf::sync::FingerOff> list;
    std::atomic<long> net{0};
    fuzz_churn(list, 606, 5000, 64, net);
    EXPECT_EQ(list.size(), static_cast<std::size_t>(net.load()));
    EXPECT_TRUE(list.validate_counts());
  }
  {
    lf::FRSkipListRC<long, long, std::less<long>, 24, lf::sync::FingerOff> s;
    std::atomic<long> net{0};
    fuzz_churn(s, 707, 4000, 64, net);
    EXPECT_EQ(s.size(), static_cast<std::size_t>(net.load()));
    EXPECT_TRUE(s.validate_accounting());
  }
  const auto delta = lf::stats::aggregate() - before;
  EXPECT_EQ(delta.finger_hit, 0u);
  EXPECT_EQ(delta.finger_miss, 0u);
  EXPECT_EQ(delta.finger_skip, 0u);
}

// Hot-key churn is where fingers are live on almost every operation AND
// constantly invalidated by erases of the fingered nodes themselves: the
// validate / backlink-recover / head-fallback paths all run under yield
// perturbation. Exact counts must survive regardless.
TEST(ScheduleFuzz, FingerHotKeyChurnAllStructures) {
  const auto before = lf::stats::aggregate();
  {
    lf::FRList<long, long> list;
    std::atomic<long> net{0};
    fuzz_churn(list, 808, 8000, 8, net);
    EXPECT_EQ(list.size(), static_cast<std::size_t>(net.load()));
    EXPECT_TRUE(list.validate().ok);
  }
  {
    lf::FRSkipList<long, long> s;
    std::atomic<long> net{0};
    fuzz_churn(s, 909, 6000, 8, net);
    EXPECT_EQ(s.size(), static_cast<std::size_t>(net.load()));
    EXPECT_TRUE(s.validate().ok);
  }
  {
    lf::FRListRC<long, long> list;
    std::atomic<long> net{0};
    fuzz_churn(list, 1111, 5000, 8, net);
    EXPECT_EQ(list.size(), static_cast<std::size_t>(net.load()));
    EXPECT_TRUE(list.validate_counts());
  }
  {
    lf::FRSkipListRC<long, long> s;
    std::atomic<long> net{0};
    fuzz_churn(s, 1212, 4000, 8, net);
    EXPECT_EQ(s.size(), static_cast<std::size_t>(net.load()));
    EXPECT_TRUE(s.validate_accounting());
  }
  const auto delta = lf::stats::aggregate() - before;
  // With 8 hot keys and thousands of ops per thread, fingers must be doing
  // real work: hits dominate overall, and misses (first op per thread per
  // structure, erased fingers) exist too.
  EXPECT_GT(delta.finger_hit, delta.finger_miss);
  EXPECT_GT(delta.finger_miss, 0u);
}

TEST(ScheduleFuzz, HotTwoKeyDuel) {
  // The tightest possible conflict: four threads fight over TWO adjacent
  // keys with constant insert/erase, maximizing flag/mark/backlink
  // interactions on the same pair of nodes.
  lf::FRList<long, long> list;
  std::atomic<long> net{0};
  fuzz_churn(list, 31337, 12000, 2, net);
  EXPECT_EQ(list.size(), static_cast<std::size_t>(net.load()));
  EXPECT_TRUE(list.validate().ok);
}

TEST(ScheduleFuzz, HotTwoKeyDuelSkipList) {
  lf::FRSkipList<long, long> s;
  std::atomic<long> net{0};
  fuzz_churn(s, 31338, 9000, 2, net);
  EXPECT_EQ(s.size(), static_cast<std::size_t>(net.load()));
  EXPECT_TRUE(s.validate().ok);
}

}  // namespace
