// Fault-injection suite (built only with -DLF_CHAOS=ON).
//
// Three families of tests:
//
//   * DETERMINISTIC HELPING — forced CAS failures at named sites make the
//     flag-helping, mark-helping and backlink-recovery paths run on
//     demand, asserted through the paper's step counters instead of
//     hoping a racy schedule produces them.
//
//   * CRASH MATRIX — for every injection site in FRList and FRSkipList,
//     park a victim thread at that site mid-operation and verify the
//     empirical lock-freedom claim: the surviving threads complete their
//     whole workload, the structure stays coherent while the victim is
//     parked, and after the victim is released exact-count semantics and
//     all invariants hold.
//
//   * ALLOCATION FAILURE — a pool allocation (node, tower root, tower
//     upper level, or fresh segment) that throws must surface as a clean
//     error with nothing half-linked and nothing leaked.
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <chrono>
#include <cstdio>
#include <new>
#include <thread>
#include <vector>

#include "lf/chaos/chaos.h"
#include "lf/core/fr_list.h"
#include "lf/core/fr_skiplist.h"
#include "lf/harness/watchdog.h"
#include "lf/instrument/counters.h"
#include "lf/mem/pool.h"
#include "lf/mem/tower.h"
#include "lf/reclaim/epoch.h"
#include "lf/reclaim/hazard.h"
#include "lf/reclaim/leaky.h"
#include "lf/util/random.h"

static_assert(lf::chaos::kCompiledIn,
              "chaos_test requires a -DLF_CHAOS=ON build");

namespace {

namespace chaos = lf::chaos;
using namespace std::chrono_literals;
using Site = chaos::Site;

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { chaos::reset(); }
  void TearDown() override { chaos::reset(); }
};

// ---- Deterministic helping: FRList --------------------------------------

TEST_F(ChaosTest, ListForcedInsertCasRetriesUntilDisarmed) {
  lf::FRList<long, long> list;
  chaos::arm_cas_failures(Site::kListInsertCas, 3);
  const auto before = lf::stats::aggregate();
  EXPECT_TRUE(list.insert(7, 7));
  const auto delta = lf::stats::aggregate() - before;
  EXPECT_EQ(chaos::forced_cas_failures(Site::kListInsertCas), 3u);
  // 3 forced failures + the real one that lands.
  EXPECT_EQ(chaos::site_hits(Site::kListInsertCas), 4u);
  EXPECT_EQ(delta.insert_cas, 1u);  // exactly one successful insertion C&S
  EXPECT_TRUE(list.contains(7));
  EXPECT_TRUE(list.validate().ok);
}

TEST_F(ChaosTest, ListForcedUnlinkRunsMarkHelpingViaSearch) {
  // Force the deleter's own unlink C&S to fail: the erase still succeeds
  // (marking is the linearization point) but leaves the node marked with
  // its predecessor flagged. The next search must run HelpMarked — the
  // mark-helping path — and physically delete it.
  lf::FRList<long, long> list;
  for (long k : {1, 2, 3}) ASSERT_TRUE(list.insert(k, k));
  chaos::arm_cas_failures(Site::kListUnlinkCas, 1);
  const auto before = lf::stats::aggregate();
  EXPECT_TRUE(list.erase(2));
  auto delta = lf::stats::aggregate() - before;
  EXPECT_EQ(delta.pdelete_cas, 0u);  // physical deletion was forced to fail
  EXPECT_EQ(chaos::forced_cas_failures(Site::kListUnlinkCas), 1u);
  // The key is logically gone even though the node is still linked.
  EXPECT_FALSE(list.contains(2));
  // That contains() ran into the marked node and helped: physical deletion
  // completed by the mark-helping path, not by the deleter.
  delta = lf::stats::aggregate() - before;
  EXPECT_GE(delta.help_marked, 1u);
  EXPECT_EQ(delta.pdelete_cas, 1u);
  EXPECT_GE(chaos::site_hits(Site::kListHelpMarked), 1u);
  EXPECT_TRUE(list.validate().ok);
  EXPECT_EQ(list.size(), 2u);
}

TEST_F(ChaosTest, ListStalledFlagRunsFlagHelpingDeterministically) {
  // Flag-helping path: a deleter stalls right after placing the flag
  // (erase_begin); an insert that lands on the flagged predecessor must
  // help the whole deletion to completion before inserting.
  lf::FRList<long, long> list;
  for (long k : {10, 20, 30}) ASSERT_TRUE(list.insert(k, k));
  typename lf::FRList<long, long>::StalledErase st;
  ASSERT_TRUE(list.erase_begin(20, st));  // flag placed, then "stall"
  const auto before = lf::stats::aggregate();
  EXPECT_TRUE(list.insert(15, 15));  // prev = node 10, which is flagged
  const auto delta = lf::stats::aggregate() - before;
  EXPECT_GE(delta.help_flagged, 1u);
  EXPECT_GE(delta.mark_cas + delta.pdelete_cas, 1u);  // helper finished it
  EXPECT_GE(chaos::site_hits(Site::kListHelpFlagged), 1u);
  EXPECT_FALSE(list.contains(20));  // helper completed the deletion
  EXPECT_TRUE(list.contains(15));
  EXPECT_TRUE(list.erase_finish(st));  // stalled deleter still owns the win
  EXPECT_TRUE(list.validate().ok);
}

TEST_F(ChaosTest, ListForcedFlagAndMarkCasRetry) {
  lf::FRList<long, long> list;
  for (long k : {1, 2}) ASSERT_TRUE(list.insert(k, k));
  chaos::arm_cas_failures(Site::kListFlagCas, 2);
  chaos::arm_cas_failures(Site::kListMarkCas, 2);
  EXPECT_TRUE(list.erase(1));
  EXPECT_EQ(chaos::forced_cas_failures(Site::kListFlagCas), 2u);
  EXPECT_EQ(chaos::forced_cas_failures(Site::kListMarkCas), 2u);
  EXPECT_EQ(chaos::site_hits(Site::kListFlagCas), 3u);
  EXPECT_FALSE(list.contains(1));
  EXPECT_TRUE(list.validate().ok);
}

TEST_F(ChaosTest, ListBacklinkRecoveryDeterministic) {
  // The paper's recovery path, on demand: locate an insert position, have
  // the predecessor deleted, then complete the insert. The inserter's C&S
  // fails on the marked predecessor and must walk its backlink instead of
  // restarting. Leaky reclamation keeps the deleted node valid across the
  // two phases.
  using List = lf::FRList<long, long, std::less<long>,
                          lf::reclaim::LeakyReclaimer>;
  List list;
  ASSERT_TRUE(list.insert(10, 10));
  ASSERT_TRUE(list.insert(20, 20));
  typename List::InsertCursor cur;
  ASSERT_TRUE(list.insert_locate(15, 15, cur));  // prev = node 10
  ASSERT_TRUE(list.erase(10));                   // prev is now marked
  const auto before = lf::stats::aggregate();
  const std::uint64_t backlink_hits_before =
      chaos::site_hits(Site::kListBacklinkStep);
  EXPECT_TRUE(list.insert_complete(cur));
  const auto delta = lf::stats::aggregate() - before;
  EXPECT_GE(delta.backlink_traversal, 1u);
  EXPECT_GE(chaos::site_hits(Site::kListBacklinkStep),
            backlink_hits_before + 1);
  EXPECT_TRUE(list.contains(15));
  EXPECT_FALSE(list.contains(10));
  EXPECT_TRUE(list.validate().ok);
}

// ---- Deterministic helping: FRSkipList -----------------------------------

TEST_F(ChaosTest, SkipForcedInsertCasRetriesUntilDisarmed) {
  lf::FRSkipList<long, long> s;
  chaos::arm_cas_failures(Site::kSkipInsertCas, 2);
  EXPECT_TRUE(s.insert(5, 5));
  EXPECT_EQ(chaos::forced_cas_failures(Site::kSkipInsertCas), 2u);
  EXPECT_TRUE(s.contains(5));
  EXPECT_TRUE(s.validate().ok);
}

TEST_F(ChaosTest, SkipForcedUnlinkRunsSuperfluousHelpingViaSearch) {
  lf::FRSkipList<long, long> s;
  for (long k : {1, 2, 3}) ASSERT_TRUE(s.insert(k, k));
  chaos::arm_cas_failures(Site::kSkipUnlinkCas, 1);
  const auto before = lf::stats::aggregate();
  EXPECT_TRUE(s.erase(2));
  EXPECT_EQ(chaos::forced_cas_failures(Site::kSkipUnlinkCas), 1u);
  EXPECT_FALSE(s.contains(2));  // superfluous tower helped out of the way
  const auto delta = lf::stats::aggregate() - before;
  EXPECT_GE(delta.help_marked, 1u);
  EXPECT_GE(delta.pdelete_cas, 1u);
  EXPECT_TRUE(s.validate().ok);
  EXPECT_EQ(s.size(), 2u);
}

TEST_F(ChaosTest, SkipForcedFlagAndMarkCasRetry) {
  lf::FRSkipList<long, long> s;
  for (long k : {1, 2}) ASSERT_TRUE(s.insert(k, k));
  chaos::arm_cas_failures(Site::kSkipFlagCas, 2);
  chaos::arm_cas_failures(Site::kSkipMarkCas, 2);
  EXPECT_TRUE(s.erase(1));
  EXPECT_EQ(chaos::forced_cas_failures(Site::kSkipFlagCas), 2u);
  EXPECT_EQ(chaos::forced_cas_failures(Site::kSkipMarkCas), 2u);
  EXPECT_FALSE(s.contains(1));
  EXPECT_TRUE(s.validate().ok);
}

// ---- Crash-thread matrix --------------------------------------------------
//
// Empirical lock-freedom: park a victim at the given site mid-operation;
// survivors must finish their entire workloads regardless. Exact-count
// semantics are checked in two stages: while the victim is parked its one
// in-flight operation may or may not have linearized (|size - net| <= 1);
// after release and join, counts must match exactly and every invariant
// must hold.
template <typename Set>
void run_crash_site(Site site) {
  SCOPED_TRACE(chaos::site_name(site));
  chaos::reset();
  Set set;
  std::atomic<long> net{0};
  for (long k = 0; k < 16; k += 2) {
    if (set.insert(k, k)) net.fetch_add(1);
  }

  constexpr int kWorkers = 4;
  constexpr int kOps = 3000;
  chaos::arm_crash(site, 1);

  lf::harness::Watchdog::Options wopts;
  wopts.stall_timeout = 60s;  // survivors stalling = lock-freedom broken
  wopts.poll_interval = 100ms;
  lf::harness::Watchdog dog(kWorkers, wopts);

  std::atomic<bool> victim_done{false};
  std::barrier start(kWorkers);
  std::vector<std::thread> workers;
  for (int t = 0; t < kWorkers; ++t) {
    workers.emplace_back([&, t] {
      chaos::set_thread_tag(t);
      chaos::set_thread_role(t == 0 ? chaos::Role::kVictim
                                    : chaos::Role::kSurvivor);
      lf::Xoshiro256 rng(0xc0ffee + static_cast<std::uint64_t>(t) * 7919);
      start.arrive_and_wait();
      for (int i = 0; i < kOps; ++i) {
        const long k = static_cast<long>(rng.below(16));
        if (rng.below(2) == 0) {
          // net is updated immediately after each op so the main thread
          // can bound the count drift while the victim sits parked.
          if (set.insert(k, k)) net.fetch_add(1);
        } else {
          if (set.erase(k)) net.fetch_sub(1);
        }
        dog.beat(t);
      }
      dog.mark_done(t);
      chaos::set_thread_role(chaos::Role::kDefault);
      if (t == 0) victim_done.store(true, std::memory_order_release);
    });
  }

  // Wait until the victim either parks at the armed site or finishes its
  // workload without ever hitting it (possible for rarely-taken sites).
  while (!chaos::parked() && !victim_done.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(2ms);
  }
  const bool parked = chaos::parked();
  if (parked) {
    EXPECT_EQ(chaos::parked_tag(), 0);
    dog.mark_parked(0);
  }

  // Lock-freedom: survivors complete their full workloads with the victim
  // frozen mid-operation (the watchdog aborts the run if they stall).
  for (int t = 1; t < kWorkers; ++t) workers[static_cast<std::size_t>(t)].join();

  if (parked) {
    // Structure coherence with a thread frozen mid-protocol: traversal
    // terminates and the count drifts by at most the victim's one
    // in-flight operation. (Full validation must wait — a half-finished
    // deletion legitimately leaves a marked node linked.)
    const long sz = static_cast<long>(set.size());
    const long drift = sz - net.load();
    EXPECT_LE(drift <= 0 ? -drift : drift, 1) << "size " << sz;
    chaos::release_parked();
  }
  workers[0].join();

  // Quiescent again: exact counts and every invariant.
  EXPECT_EQ(set.size(), static_cast<std::size_t>(net.load()));
  const auto rep = set.validate();
  EXPECT_TRUE(rep.ok) << rep.error;
  EXPECT_FALSE(dog.stalled());
  dog.stop();
}

TEST_F(ChaosTest, CrashMatrixFRList) {
  for (Site site : {Site::kListSearchStep, Site::kListInsertCas,
                    Site::kListFlagCas, Site::kListMarkCas,
                    Site::kListUnlinkCas, Site::kListBacklinkStep,
                    Site::kListHelpFlagged, Site::kListHelpMarked,
                    Site::kListFingerValidate, Site::kListFingerFallback,
                    Site::kListFingerReplace}) {
    run_crash_site<lf::FRList<long, long>>(site);
  }
}

TEST_F(ChaosTest, CrashMatrixFRSkipList) {
  for (Site site : {Site::kSkipSearchStep, Site::kSkipInsertCas,
                    Site::kSkipFlagCas, Site::kSkipMarkCas,
                    Site::kSkipUnlinkCas, Site::kSkipBacklinkStep,
                    Site::kSkipHelpFlagged, Site::kSkipHelpMarked,
                    Site::kSkipTowerBuild, Site::kSkipFingerValidate,
                    Site::kSkipFingerFallback, Site::kSkipFingerReplace}) {
    run_crash_site<lf::FRSkipList<long, long>>(site);
  }
}

// Crash inside the reclaimers' entry points: survivors keep operating (the
// epoch stops advancing, which defers reclamation but never blocks).
TEST_F(ChaosTest, CrashInEpochRetireDoesNotBlockSurvivors) {
  run_crash_site<lf::FRList<long, long>>(Site::kEpochRetire);
}

// Hazard-finger rows: publish / re-acquire / hop are new crash edges in the
// publish-then-revalidate protocol. None of these sites fires while the
// domain's registry lock is held, so a victim parked there can never block
// a survivor's scan — parking it mid-publication (slot written, seqlock
// possibly odd) at worst makes scanners skip that record's chain walk,
// which only defers reclamation.
TEST_F(ChaosTest, CrashMatrixFRListHazardFinger) {
  using List =
      lf::FRList<long, long, std::less<long>, lf::reclaim::HazardReclaimer>;
  for (Site site : {Site::kListFingerValidate, Site::kListFingerFallback,
                    Site::kListFingerPublish, Site::kListFingerReplace,
                    Site::kHazardFingerReacquire, Site::kHazardFingerHop}) {
    run_crash_site<List>(site);
  }
}

TEST_F(ChaosTest, CrashMatrixFRSkipListHazardFinger) {
  using Skip = lf::FRSkipList<long, long, std::less<long>,
                              lf::reclaim::HazardReclaimer>;
  for (Site site : {Site::kSkipFingerValidate, Site::kSkipFingerFallback,
                    Site::kSkipFingerPublish, Site::kSkipFingerReplace}) {
    run_crash_site<Skip>(site);
  }
}

// ---- Stalled-thread resilience rows (DESIGN.md §11) -----------------------
//
// The rows above demonstrate lock-freedom of the OPERATIONS with a victim
// frozen mid-protocol; reclamation, however, silently stops (the parked pin
// blocks the epoch forever). These rows assert the resilience layer lifts
// that: the stalled pin is neutralized so the epoch resumes, the enabled
// frees divert into the bounded quarantine (never freed early — ASan checks
// the resumed victim's traversal), and orphan adoption recovers the
// victim's resources. Run under -DLF_SANITIZE_ADDRESS=ON in CI.

TEST_F(ChaosTest, PinnedVictimNeutralizedAndReclamationResumes) {
  using lf::reclaim::EpochDomain;
  using List =
      lf::FRList<long, long, std::less<long>, lf::reclaim::EpochReclaimer>;
  EpochDomain domain;
  EpochDomain::ResilienceOptions ro;
  ro.neutralize = true;
  ro.blame_threshold = 4;
  domain.set_resilience(ro);
  List set{lf::reclaim::EpochReclaimer(domain)};

  std::atomic<long> net{0};
  for (long k = 0; k < 16; k += 2) {
    if (set.insert(k, k)) net.fetch_add(1);
  }
  constexpr int kWorkers = 4;
  constexpr int kOps = 3000;
  // The victim parks inside its first search: pinned mid-traversal, holding
  // live node references — the worst case for neutralization.
  chaos::arm_crash(Site::kListSearchStep, 1);

  lf::harness::Watchdog::Options wopts;
  wopts.stall_timeout = 60s;
  wopts.poll_interval = 100ms;
  lf::harness::Watchdog dog(kWorkers, wopts);
  std::barrier start(kWorkers);
  std::vector<std::thread> workers;
  for (int t = 0; t < kWorkers; ++t) {
    workers.emplace_back([&, t] {
      chaos::set_thread_tag(t);
      chaos::set_thread_role(t == 0 ? chaos::Role::kVictim
                                    : chaos::Role::kSurvivor);
      lf::Xoshiro256 rng(0xfade + static_cast<std::uint64_t>(t) * 7919);
      start.arrive_and_wait();
      for (int i = 0; i < kOps; ++i) {
        const long k = static_cast<long>(rng.below(16));
        if (rng.below(2) == 0) {
          if (set.insert(k, k)) net.fetch_add(1);
        } else {
          if (set.erase(k)) net.fetch_sub(1);
        }
        dog.beat(t);
      }
      dog.mark_done(t);
      chaos::set_thread_role(chaos::Role::kDefault);
    });
  }
  ASSERT_TRUE(chaos::wait_parked(30s));
  dog.mark_parked(0);
  for (int t = 1; t < kWorkers; ++t)
    workers[static_cast<std::size_t>(t)].join();

  // Survivor churn (plus a main-thread top-up) drives the advancer past the
  // blame threshold: the parked pin is ejected and the epoch resumes —
  // within the documented grace bound of advancer activity, not wall time.
  const std::uint64_t e_park = domain.epoch();
  lf::Xoshiro256 rng(0xabcdef);
  const auto deadline = std::chrono::steady_clock::now() + 60s;
  while ((domain.ejected_count() == 0 || domain.epoch() < e_park + 2 ||
          domain.quarantine_depth() == 0) &&
         std::chrono::steady_clock::now() < deadline) {
    const long k = static_cast<long>(rng.below(16));
    if (rng.below(2) == 0) {
      if (set.insert(k, k)) net.fetch_add(1);
    } else {
      if (set.erase(k)) net.fetch_sub(1);
    }
  }
  EXPECT_EQ(domain.ejected_count(), 1u);
  EXPECT_GE(domain.epoch(), e_park + 2);  // no longer blocked by the pin
  // Graceful degradation: frees enabled by the ejection diverted into the
  // quarantine (the parked victim may still hold them) and stay bounded.
  EXPECT_GT(domain.quarantine_depth(), 0u);
  EXPECT_LE(domain.quarantine_depth(), ro.quarantine_soft_cap);

  // The victim resumes its traversal over nodes whose grace period elapsed
  // mid-park: only the quarantine makes that safe, and ASan verifies it.
  chaos::release_parked();
  workers[0].join();
  // Its outermost unpin acknowledged the ejection; the quarantine drains.
  EXPECT_EQ(domain.ejected_count(), 0u);
  domain.drain();
  EXPECT_EQ(domain.quarantine_depth(), 0u);
  EXPECT_EQ(set.size(), static_cast<std::size_t>(net.load()));
  const auto rep = set.validate();
  EXPECT_TRUE(rep.ok) << rep.error;
  EXPECT_FALSE(dog.stalled());
  dog.stop();
}

TEST_F(ChaosTest, VictimParkedInRetireIsAdoptedAndBacklogDrains) {
  using lf::reclaim::EpochDomain;
  using List =
      lf::FRList<long, long, std::less<long>, lf::reclaim::EpochReclaimer>;
  EpochDomain domain;
  List set{lf::reclaim::EpochReclaimer(domain)};

  std::atomic<long> net{0};
  for (long k = 0; k < 16; k += 2) {
    if (set.insert(k, k)) net.fetch_add(1);
  }
  constexpr int kWorkers = 4;
  constexpr int kOps = 3000;
  // Park the victim entering its 12th retire: its limbo lists hold ~11
  // nodes, and the park site precedes the internal guard, so the victim
  // sits OUTSIDE any guarded region — the resumable-adoption contract.
  chaos::arm_crash(Site::kEpochRetire, 12);

  lf::harness::Watchdog::Options wopts;
  wopts.stall_timeout = 60s;
  wopts.poll_interval = 100ms;
  lf::harness::Watchdog dog(kWorkers, wopts);
  std::barrier start(kWorkers);
  std::vector<std::thread> workers;
  for (int t = 0; t < kWorkers; ++t) {
    workers.emplace_back([&, t] {
      chaos::set_thread_tag(t);
      chaos::set_thread_role(t == 0 ? chaos::Role::kVictim
                                    : chaos::Role::kSurvivor);
      lf::Xoshiro256 rng(0xbeef + static_cast<std::uint64_t>(t) * 7919);
      start.arrive_and_wait();
      for (int i = 0; i < kOps; ++i) {
        const long k = static_cast<long>(rng.below(16));
        if (rng.below(2) == 0) {
          if (set.insert(k, k)) net.fetch_add(1);
        } else {
          if (set.erase(k)) net.fetch_sub(1);
        }
        dog.beat(t);
      }
      dog.mark_done(t);
      chaos::set_thread_role(chaos::Role::kDefault);
    });
  }
  const std::thread::id victim_id = workers[0].get_id();
  ASSERT_TRUE(chaos::wait_parked(30s));
  dog.mark_parked(0);
  for (int t = 1; t < kWorkers; ++t)
    workers[static_cast<std::size_t>(t)].join();

  // Adoption finds the victim's slot. How many limbo nodes it strands is
  // schedule-dependent (concurrent advances may have disposed them all
  // before the park) — the orphan_adopt count is asserted in the
  // deterministic unit test; here the outcome is what matters:
  EXPECT_TRUE(domain.adopt_stalled(victim_id));
  // With the victim's garbage orphaned (and no one pinned), the whole
  // backlog drains without the victim's participation.
  domain.drain();
  EXPECT_EQ(domain.retired_count(), 0u);

  // The victim resumes INSIDE retire (files its node normally) and runs
  // its remaining workload on the slot adoption left registered.
  chaos::release_parked();
  workers[0].join();
  domain.drain();
  EXPECT_EQ(domain.retired_count(), 0u);
  EXPECT_EQ(set.size(), static_cast<std::size_t>(net.load()));
  const auto rep = set.validate();
  EXPECT_TRUE(rep.ok) << rep.error;
  EXPECT_FALSE(dog.stalled());
  dog.stop();
}

TEST_F(ChaosTest, HazardFingerVictimAdoptedThenFailsClosedOnResume) {
  // Combined epoch + hazard resilience: the victim parks entering
  // reacquire_finger — epoch-pinned AND holding published finger hazard
  // pointers. The epoch side neutralizes the pin (quarantine guards the
  // frees); the hazard side adopts the fingers, so the victim's resumed
  // reacquire finds its slots nulled and must FAIL CLOSED into a fallback
  // search with a fresh publish. ASan checks both halves.
  using lf::reclaim::EpochDomain;
  using lf::reclaim::HazardDomain;
  using List =
      lf::FRList<long, long, std::less<long>, lf::reclaim::HazardReclaimer>;
  EpochDomain epoch_domain;
  HazardDomain hazard_domain;
  EpochDomain::ResilienceOptions ro;
  ro.neutralize = true;
  ro.blame_threshold = 4;
  epoch_domain.set_resilience(ro);
  List set{lf::reclaim::HazardReclaimer(epoch_domain, hazard_domain)};

  std::atomic<long> net{0};
  for (long k = 0; k < 16; k += 2) {
    if (set.insert(k, k)) net.fetch_add(1);
  }
  constexpr int kWorkers = 4;
  constexpr int kOps = 3000;
  chaos::arm_crash(Site::kHazardFingerReacquire, 1);

  lf::harness::Watchdog::Options wopts;
  wopts.stall_timeout = 60s;
  wopts.poll_interval = 100ms;
  lf::harness::Watchdog dog(kWorkers, wopts);
  std::barrier start(kWorkers);
  std::atomic<bool> victim_done{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < kWorkers; ++t) {
    workers.emplace_back([&, t] {
      chaos::set_thread_tag(t);
      chaos::set_thread_role(t == 0 ? chaos::Role::kVictim
                                    : chaos::Role::kSurvivor);
      lf::Xoshiro256 rng(0xdead + static_cast<std::uint64_t>(t) * 7919);
      start.arrive_and_wait();
      for (int i = 0; i < kOps; ++i) {
        const long k = static_cast<long>(rng.below(16));
        if (rng.below(2) == 0) {
          if (set.insert(k, k)) net.fetch_add(1);
        } else {
          if (set.erase(k)) net.fetch_sub(1);
        }
        dog.beat(t);
      }
      dog.mark_done(t);
      chaos::set_thread_role(chaos::Role::kDefault);
      if (t == 0) victim_done.store(true, std::memory_order_release);
    });
  }
  const std::thread::id victim_id = workers[0].get_id();
  // Finger reuse needs a prior publish on the same slot, so the site can in
  // principle go unvisited; tolerate that like the finger matrix rows do.
  while (!chaos::parked() && !victim_done.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(2ms);
  }
  const bool parked = chaos::parked();
  if (parked) dog.mark_parked(0);
  for (int t = 1; t < kWorkers; ++t)
    workers[static_cast<std::size_t>(t)].join();

  if (parked) {
    // Drive the advancer until the parked epoch pin is ejected.
    lf::Xoshiro256 rng(0x5eed);
    const auto deadline = std::chrono::steady_clock::now() + 60s;
    while (epoch_domain.ejected_count() == 0 &&
           std::chrono::steady_clock::now() < deadline) {
      const long k = static_cast<long>(rng.below(16));
      if (rng.below(2) == 0) {
        if (set.insert(k, k)) net.fetch_add(1);
      } else {
        if (set.erase(k)) net.fetch_sub(1);
      }
    }
    EXPECT_EQ(epoch_domain.ejected_count(), 1u);
    // Scavenge the parked thread's retained fingers and retired list.
    EXPECT_TRUE(hazard_domain.adopt_stalled(victim_id));
    chaos::release_parked();
  }
  workers[0].join();

  EXPECT_EQ(epoch_domain.ejected_count(), 0u);
  epoch_domain.drain();
  hazard_domain.scan();
  EXPECT_EQ(epoch_domain.quarantine_depth(), 0u);
  EXPECT_EQ(set.size(), static_cast<std::size_t>(net.load()));
  const auto rep = set.validate();
  EXPECT_TRUE(rep.ok) << rep.error;
  EXPECT_FALSE(dog.stalled());
  dog.stop();
}

// ---- Allocation-failure injection ----------------------------------------

TEST_F(ChaosTest, ListInsertSurfacesAllocFailureCleanly) {
  using List = lf::FRList<long, long>;
  List list;
  ASSERT_TRUE(list.insert(1, 1));
  chaos::arm_alloc_failure(1);  // next pooled allocation throws
  EXPECT_EQ(list.insert_checked(2, 2), List::InsertStatus::kNoMemory);
  EXPECT_EQ(chaos::alloc_failures_injected(), 1u);
  // Nothing half-linked: the structure is intact and the key insertable.
  EXPECT_FALSE(list.contains(2));
  EXPECT_TRUE(list.validate().ok);
  EXPECT_EQ(list.insert_checked(2, 2), List::InsertStatus::kInserted);
  EXPECT_EQ(list.insert_checked(2, 2), List::InsertStatus::kDuplicate);
  EXPECT_EQ(list.size(), 2u);
}

TEST_F(ChaosTest, SkipRootAllocFailureSurfacesCleanly) {
  using Skip = lf::FRSkipList<long, long>;
  Skip s;
  ASSERT_TRUE(s.insert(1, 1));
  chaos::arm_alloc_failure(1);
  EXPECT_EQ(s.insert_checked(2, 2), Skip::InsertStatus::kNoMemory);
  EXPECT_FALSE(s.contains(2));
  EXPECT_TRUE(s.validate().ok);
  EXPECT_EQ(s.insert_checked(2, 2), Skip::InsertStatus::kInserted);
  EXPECT_EQ(s.size(), 2u);
}

TEST_F(ChaosTest, SkipUpperLevelAllocFailureTruncatesTower) {
  // Chained towers allocate per level, so the 2nd pooled allocation after
  // arming is the level-2 node of a height-3 tower: the root is already
  // linked, so the insert SUCCEEDS with a truncated (height-1) tower.
  using Skip = lf::FRSkipList<long, long, std::less<long>,
                              lf::reclaim::EpochReclaimer, 24,
                              lf::mem::PooledChainedTowers>;
  Skip s;
  chaos::arm_alloc_failure(2);
  EXPECT_EQ(s.insert_with_height(5, 5, 3), Skip::InsertStatus::kInserted);
  EXPECT_EQ(chaos::alloc_failures_injected(), 1u);
  EXPECT_TRUE(s.contains(5));
  EXPECT_TRUE(s.validate().ok);
  EXPECT_TRUE(s.erase(5));  // the truncated tower deletes normally
  EXPECT_TRUE(s.validate().ok);
  EXPECT_EQ(s.size(), 0u);
}

TEST_F(ChaosTest, SegmentCarveFailureSurfacesAsBadAlloc) {
  // With the next segment carve armed to fail, allocate max-class blocks
  // in a fresh thread until its cache AND the shared freelist (donations
  // from every previously exited thread) are drained; the carve that must
  // follow throws, and the pool is left consistent — the retry after
  // disarming carves a real segment and succeeds.
  chaos::arm_segment_failure(1);
  std::atomic<bool> threw{false};
  std::thread t([&] {
    std::vector<void*> blocks;
    try {
      // Bounded far above anything freelists + one bump region can hold.
      for (int i = 0; i < 200'000; ++i)
        blocks.push_back(lf::mem::pool_allocate(4096));
    } catch (const std::bad_alloc&) {
      threw.store(true);
      void* p = lf::mem::pool_allocate(4096);  // disarmed: must succeed
      EXPECT_NE(p, nullptr);
      lf::mem::pool_deallocate(p, 4096);
    }
    for (void* p : blocks) lf::mem::pool_deallocate(p, 4096);
  });
  t.join();
  EXPECT_TRUE(threw.load());
  EXPECT_EQ(chaos::alloc_failures_injected(), 1u);
}

// ---- PCT-style scheduling -------------------------------------------------

TEST_F(ChaosTest, ScheduledChurnKeepsExactCounts) {
  // Randomized-priority perturbation at every injection point; the
  // structure must hold exact-count semantics under the induced schedules
  // exactly as it does under plain yield fuzzing.
  chaos::enable_scheduling(/*seed=*/0xfeedface, /*yield_permille=*/60,
                           /*delay_us=*/30, /*reshuffle_period=*/512);
  lf::FRList<long, long> list;
  std::atomic<long> net{0};
  constexpr int kWorkers = 4;
  std::barrier start(kWorkers);
  std::vector<std::thread> workers;
  for (int t = 0; t < kWorkers; ++t) {
    workers.emplace_back([&, t] {
      chaos::set_thread_tag(t);
      lf::Xoshiro256 rng(0xabc + static_cast<std::uint64_t>(t) * 31);
      long local = 0;
      start.arrive_and_wait();
      for (int i = 0; i < 2000; ++i) {
        const long k = static_cast<long>(rng.below(32));
        switch (rng.below(3)) {
          case 0:
            if (list.insert(k, k)) ++local;
            break;
          case 1:
            if (list.erase(k)) --local;
            break;
          default:
            list.contains(k);
        }
      }
      net.fetch_add(local);
    });
  }
  for (auto& w : workers) w.join();
  chaos::disable_scheduling();
  EXPECT_EQ(list.size(), static_cast<std::size_t>(net.load()));
  EXPECT_TRUE(list.validate().ok);
  EXPECT_GT(chaos::site_hits(Site::kListInsertCas), 0u);
  EXPECT_GT(chaos::site_hits(Site::kListSearchStep), 0u);
}

// ---- Introspection --------------------------------------------------------

TEST_F(ChaosTest, ThreadReportsAndSiteNames) {
  for (int i = 0; i < chaos::kSiteCount; ++i) {
    const char* name = chaos::site_name(static_cast<Site>(i));
    ASSERT_NE(name, nullptr);
    EXPECT_STRNE(name, "<invalid-site>") << "site " << i;
  }
  EXPECT_STREQ(chaos::site_name(Site::kNumSites), "<invalid-site>");

  lf::FRList<long, long> list;
  chaos::set_thread_tag(42);
  list.insert(1, 1);
  const auto reports = chaos::thread_reports();
  bool found = false;
  for (const auto& r : reports) {
    if (r.tag == 42) {
      found = true;
      EXPECT_GT(r.points, 0u);
      EXPECT_FALSE(r.parked);
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
