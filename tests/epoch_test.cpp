// Unit and stress tests for epoch-based reclamation.
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <thread>
#include <vector>

#include "lf/reclaim/epoch.h"

namespace {

using lf::reclaim::EpochDomain;

struct Tracked {
  static std::atomic<int> live;
  Tracked() { live.fetch_add(1); }
  ~Tracked() { live.fetch_sub(1); }
};
std::atomic<int> Tracked::live{0};

TEST(EpochDomain, RetireThenDrainFrees) {
  EpochDomain domain;
  auto* obj = new Tracked;
  EXPECT_EQ(Tracked::live.load(), 1);
  domain.retire(obj);
  EXPECT_EQ(domain.retired_count(), 1u);
  domain.drain();
  EXPECT_EQ(Tracked::live.load(), 0);
  EXPECT_EQ(domain.retired_count(), 0u);
}

TEST(EpochDomain, ManyRetirementsAllFreed) {
  EpochDomain domain;
  for (int i = 0; i < 1000; ++i) domain.retire(new Tracked);
  domain.drain();
  EXPECT_EQ(Tracked::live.load(), 0);
  EXPECT_EQ(domain.retired_count(), 0u);
}

TEST(EpochDomain, PinnedReaderBlocksReclamation) {
  EpochDomain domain;
  std::barrier sync(2);
  std::atomic<bool> release{false};

  std::thread reader([&] {
    auto guard = domain.guard();
    sync.arrive_and_wait();  // pinned; let main retire
    while (!release.load()) std::this_thread::yield();
  });

  sync.arrive_and_wait();
  auto* obj = new Tracked;
  domain.retire(obj);
  // The reader's pin predates the retirement epoch reaching +2, so draining
  // now must NOT free the object.
  domain.drain();
  EXPECT_EQ(Tracked::live.load(), 1);
  EXPECT_EQ(domain.retired_count(), 1u);

  release.store(true);
  reader.join();
  domain.drain();
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST(EpochDomain, ReentrantGuards) {
  EpochDomain domain;
  {
    auto g1 = domain.guard();
    {
      auto g2 = domain.guard();
      auto g3 = domain.guard();
    }
    // Still pinned by g1: retirement cannot complete.
    domain.retire(new Tracked);
  }
  domain.drain();
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST(EpochDomain, ExitedThreadsGarbageIsAdopted) {
  EpochDomain domain;
  std::thread worker([&] {
    for (int i = 0; i < 100; ++i) domain.retire(new Tracked);
  });
  worker.join();
  // The worker's limbo lists were orphaned to the domain at thread exit;
  // drain (from this thread) must adopt and free them.
  domain.drain();
  EXPECT_EQ(Tracked::live.load(), 0);
  EXPECT_EQ(domain.retired_count(), 0u);
}

TEST(EpochDomain, EpochAdvancesUnderUse) {
  EpochDomain domain;
  const auto start = domain.epoch();
  for (int i = 0; i < 500; ++i) domain.retire(new Tracked);
  domain.drain();
  EXPECT_GT(domain.epoch(), start);
}

TEST(EpochDomain, DestructorFreesEverythingOutstanding) {
  {
    EpochDomain domain;
    for (int i = 0; i < 64; ++i) domain.retire(new Tracked);
    // No drain: the destructor must free the remainder.
  }
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST(EpochDomain, IndependentDomains) {
  EpochDomain a, b;
  auto ga = a.guard();  // pinning a must not block b
  b.retire(new Tracked);
  b.drain();
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST(EpochDomain, GlobalDomainUsable) {
  auto& g = EpochDomain::global();
  g.retire(new Tracked);
  g.drain();
  EXPECT_EQ(Tracked::live.load(), 0);
}

// Stress: writers continuously allocate/publish/unlink/retire while readers
// traverse under guards. Readers must never observe a destroyed object.
TEST(EpochDomainStress, ReadersNeverSeeFreedMemory) {
  struct Boxed {
    std::atomic<std::uint64_t> canary{0xfeedfacecafebeefULL};
    ~Boxed() { canary.store(0xdeaddeaddeaddeadULL); }
  };

  EpochDomain domain;
  std::atomic<Boxed*> shared{new Boxed};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        auto guard = domain.guard();
        Boxed* p = shared.load(std::memory_order_acquire);
        ASSERT_EQ(p->canary.load(std::memory_order_relaxed),
                  0xfeedfacecafebeefULL);
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::thread writer([&] {
    for (int i = 0; i < 3000; ++i) {
      auto* fresh = new Boxed;
      Boxed* old = shared.exchange(fresh, std::memory_order_acq_rel);
      domain.retire(old);
    }
    stop.store(true, std::memory_order_release);
  });

  writer.join();
  for (auto& r : readers) r.join();
  domain.retire(shared.load());
  domain.drain();
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(domain.retired_count(), 0u);
}

}  // namespace
