// Tests for FRListRC — the Valois reference-counting variant the paper's
// Section 5 suggests. Beyond dictionary semantics (also covered by the
// typed battery), these verify the reference-counting contract itself:
// nodes are recycled as soon as they are unreachable, memory stays bounded
// under churn, and counts at quiescence are exactly the incoming links.
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <map>
#include <thread>
#include <vector>

#include "lf/core/fr_list_rc.h"
#include "lf/util/random.h"

namespace {

using RCList = lf::FRListRC<long, long>;

TEST(FRListRC, BasicSemantics) {
  RCList list;
  EXPECT_TRUE(list.insert(2, 20));
  EXPECT_TRUE(list.insert(1, 10));
  EXPECT_FALSE(list.insert(2, 21));
  EXPECT_EQ(*list.find(2), 20);
  EXPECT_TRUE(list.erase(2));
  EXPECT_FALSE(list.erase(2));
  EXPECT_FALSE(list.contains(2));
  EXPECT_EQ(list.size(), 1u);
}

TEST(FRListRC, DeletedNodesAreRecycledImmediately) {
  RCList list;
  for (long k = 0; k < 100; ++k) list.insert(k, k);
  EXPECT_EQ(list.free_count(), 0u);
  for (long k = 0; k < 100; ++k) ASSERT_TRUE(list.erase(k));
  // No grace periods, no epochs: at quiescence every deleted node is
  // already back in the free list.
  EXPECT_EQ(list.free_count(), 100u);
}

TEST(FRListRC, RecycledNodesAreReused) {
  RCList list;
  for (long k = 0; k < 50; ++k) list.insert(k, k);
  const std::size_t arena_after_insert = list.arena_count();
  for (int round = 0; round < 20; ++round) {
    for (long k = 0; k < 50; ++k) ASSERT_TRUE(list.erase(k));
    for (long k = 0; k < 50; ++k) ASSERT_TRUE(list.insert(k, k + round));
  }
  // 20 churn rounds must not have allocated fresh nodes: memory is bounded
  // by the high-water mark, the property reference counting buys.
  EXPECT_EQ(list.arena_count(), arena_after_insert);
  for (long k = 0; k < 50; ++k) EXPECT_EQ(*list.find(k), k + 19);
}

TEST(FRListRC, QuiescentCountsEqualIncomingLinks) {
  RCList list;
  lf::Xoshiro256 rng(5);
  for (int i = 0; i < 2000; ++i) {
    const long k = static_cast<long>(rng.below(200));
    if (rng.below(2) == 0) {
      list.insert(k, k);
    } else {
      list.erase(k);
    }
  }
  EXPECT_TRUE(list.validate_counts());
}

TEST(FRListRC, DifferentialAgainstStdMap) {
  RCList list;
  std::map<long, long> model;
  lf::Xoshiro256 rng(77);
  for (int i = 0; i < 15000; ++i) {
    const long k = static_cast<long>(rng.below(150));
    switch (rng.below(3)) {
      case 0:
        ASSERT_EQ(list.insert(k, k * 2), model.emplace(k, k * 2).second) << i;
        break;
      case 1:
        ASSERT_EQ(list.erase(k), model.erase(k) > 0) << i;
        break;
      default: {
        const auto a = list.find(k);
        ASSERT_EQ(a.has_value(), model.contains(k)) << i;
        if (a.has_value()) { ASSERT_EQ(*a, model.at(k)); }
      }
    }
  }
  EXPECT_EQ(list.size(), model.size());
  EXPECT_TRUE(list.validate_counts());
}

TEST(FRListRC, ConcurrentDisjointInserts) {
  RCList list;
  constexpr int kThreads = 4;
  constexpr long kPerThread = 300;
  std::barrier start(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      start.arrive_and_wait();
      for (long i = 0; i < kPerThread; ++i)
        ASSERT_TRUE(list.insert(t * kPerThread + i, i));
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(list.size(), static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_TRUE(list.validate_counts());
}

TEST(FRListRC, ConcurrentChurnKeepsCountsConsistent) {
  RCList list;
  constexpr int kThreads = 4;
  std::barrier start(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      lf::Xoshiro256 rng(400 + t);
      start.arrive_and_wait();
      for (int i = 0; i < 12000; ++i) {
        const long k = static_cast<long>(rng.below(128));
        switch (rng.below(3)) {
          case 0: list.insert(k, k); break;
          case 1: list.erase(k); break;
          default: list.contains(k);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_TRUE(list.validate_counts());
  // Full accounting at quiescence: every interior node ever allocated is
  // either linked (live) or back in the free list — none stranded with a
  // nonzero count. (The arena high-water mark itself can exceed the live
  // set: a preempted reader transitively pins the chain of deleted nodes
  // reachable from the node it holds, a known property of reference
  // counting; the chains all cascade back to the free list once released.)
  EXPECT_EQ(list.arena_count(), list.free_count() + list.size() + 2);
  for (long k = 0; k < 128; ++k)
    EXPECT_EQ(list.contains(k), list.find(k).has_value());
}

TEST(FRListRC, ReadersSeeOnlySaneValuesDuringChurn) {
  RCList list;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    lf::Xoshiro256 rng(9);
    while (!stop.load(std::memory_order_acquire)) {
      const long k = static_cast<long>(rng.below(64));
      list.insert(k, k * 13);
      list.erase(static_cast<long>(rng.below(64)));
    }
  });
  std::thread reader([&] {
    lf::Xoshiro256 rng(10);
    for (int i = 0; i < 30000; ++i) {
      const long k = static_cast<long>(rng.below(64));
      const auto v = list.find(k);
      if (v.has_value()) { ASSERT_EQ(*v, k * 13); }
    }
    stop.store(true, std::memory_order_release);
  });
  reader.join();
  writer.join();
  EXPECT_TRUE(list.validate_counts());
}

}  // namespace
