// Concurrent integration tests for FRSkipList.
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <thread>
#include <vector>

#include "lf/core/fr_skiplist.h"
#include "lf/reclaim/epoch.h"
#include "lf/util/random.h"

namespace {

using IntSkip = lf::FRSkipList<long, long>;

constexpr int kThreads = 4;

TEST(FRSkipListConcurrent, DisjointRangeInserts) {
  IntSkip s;
  constexpr long kPerThread = 400;
  std::barrier start(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      start.arrive_and_wait();
      for (long i = 0; i < kPerThread; ++i) {
        const long k = t * kPerThread + i;
        ASSERT_TRUE(s.insert(k, k * 2));
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(s.size(), static_cast<std::size_t>(kThreads * kPerThread));
  for (long k = 0; k < kThreads * kPerThread; ++k)
    ASSERT_EQ(*s.find(k), k * 2) << k;
  const auto rep = s.validate();
  EXPECT_TRUE(rep.ok) << rep.error;
}

TEST(FRSkipListConcurrent, ExactlyOneWinnerPerContestedKey) {
  IntSkip s;
  constexpr long kKeys = 150;
  std::atomic<long> wins{0};
  std::barrier start(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      start.arrive_and_wait();
      long local = 0;
      for (long k = 0; k < kKeys; ++k)
        if (s.insert(k, k)) ++local;
      wins.fetch_add(local);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(wins.load(), kKeys);
  EXPECT_EQ(s.size(), static_cast<std::size_t>(kKeys));
  EXPECT_TRUE(s.validate().ok);
}

TEST(FRSkipListConcurrent, ExactlyOneEraserPerKey) {
  IntSkip s;
  constexpr long kKeys = 150;
  for (long k = 0; k < kKeys; ++k) s.insert(k, k);
  std::atomic<long> wins{0};
  std::barrier start(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      start.arrive_and_wait();
      long local = 0;
      for (long k = 0; k < kKeys; ++k)
        if (s.erase(k)) ++local;
      wins.fetch_add(local);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(wins.load(), kKeys);
  EXPECT_TRUE(s.empty());
  const auto rep = s.validate();
  EXPECT_TRUE(rep.ok) << rep.error;  // no superfluous nodes anywhere
}

TEST(FRSkipListConcurrent, InsertEraseRaceOnSameKeys) {
  // Inserters and erasers fight over a tiny hot key range: this is the
  // scenario that interrupts tower construction (root marked while the
  // tower is still being built), the trickiest path in Section 4.
  IntSkip s;
  std::atomic<bool> stop{false};
  std::barrier start(kThreads + 1);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      lf::Xoshiro256 rng(500 + t);
      start.arrive_and_wait();
      while (!stop.load(std::memory_order_acquire)) {
        const long k = static_cast<long>(rng.below(8));  // extremely hot
        if (rng.below(2) == 0) {
          s.insert(k, k);
        } else {
          s.erase(k);
        }
      }
    });
  }
  start.arrive_and_wait();
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  stop.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  const auto rep = s.validate();
  EXPECT_TRUE(rep.ok) << rep.error;
  EXPECT_LE(s.size(), 8u);
}

TEST(FRSkipListConcurrent, MixedChurnKeepsInvariants) {
  IntSkip s;
  std::atomic<bool> stop{false};
  std::barrier start(kThreads + 1);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      lf::Xoshiro256 rng(900 + t);
      start.arrive_and_wait();
      while (!stop.load(std::memory_order_acquire)) {
        const long k = static_cast<long>(rng.below(512));
        switch (rng.below(3)) {
          case 0: s.insert(k, k); break;
          case 1: s.erase(k); break;
          default: s.contains(k);
        }
      }
    });
  }
  start.arrive_and_wait();
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  stop.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  const auto rep = s.validate();
  EXPECT_TRUE(rep.ok) << rep.error;
  // Census sanity: towers counted once, incomplete towers only from
  // interrupted builds (allowed), every linked root unmarked.
  const auto census = s.census();
  EXPECT_EQ(census.towers, s.size());
}

TEST(FRSkipListConcurrent, EpochReclamationFreesTowers) {
  lf::reclaim::EpochDomain domain;
  {
    lf::FRSkipList<long, long> s{lf::reclaim::EpochReclaimer(domain)};
    std::barrier start(kThreads);
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        lf::Xoshiro256 rng(77 + t);
        start.arrive_and_wait();
        for (int i = 0; i < 15000; ++i) {
          const long k = static_cast<long>(rng.below(64));
          if (rng.below(2) == 0) {
            s.insert(k, k);
          } else {
            s.erase(k);
          }
        }
      });
    }
    for (auto& w : workers) w.join();
    const auto rep = s.validate();
    ASSERT_TRUE(rep.ok) << rep.error;
    domain.drain();
    EXPECT_EQ(domain.retired_count(), 0u);
  }
}

TEST(FRSkipListConcurrent, ReadersSeeOnlySaneValues) {
  IntSkip s;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    lf::Xoshiro256 rng(31);
    while (!stop.load(std::memory_order_acquire)) {
      const long k = static_cast<long>(rng.below(64));
      s.insert(k, k * 11);
      s.erase(static_cast<long>(rng.below(64)));
    }
  });
  std::thread reader([&] {
    lf::Xoshiro256 rng(32);
    for (int i = 0; i < 40000; ++i) {
      const long k = static_cast<long>(rng.below(64));
      const auto v = s.find(k);
      if (v.has_value()) { ASSERT_EQ(*v, k * 11); }
    }
    stop.store(true, std::memory_order_release);
  });
  reader.join();
  writer.join();
  EXPECT_TRUE(s.validate().ok);
}

TEST(FRSkipListConcurrent, SearchesDuringHeavyDeletion) {
  // Searches must help remove superfluous towers without ever reporting a
  // key that was never inserted.
  IntSkip s;
  for (long k = 0; k < 2000; k += 2) s.insert(k, k);  // only even keys
  std::atomic<bool> stop{false};
  std::thread deleter([&] {
    for (long k = 0; k < 2000; k += 2) s.erase(k);
    stop.store(true, std::memory_order_release);
  });
  std::thread searcher([&] {
    lf::Xoshiro256 rng(8);
    while (!stop.load(std::memory_order_acquire)) {
      const long k = static_cast<long>(rng.below(2000));
      const auto v = s.find(k);
      if (k % 2 == 1) { ASSERT_FALSE(v.has_value()); }  // odd: never existed
      if (v.has_value()) { ASSERT_EQ(*v, k); }
    }
  });
  deleter.join();
  searcher.join();
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(s.validate().ok);
}

}  // namespace
