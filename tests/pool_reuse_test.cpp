// Node/tower reuse under the pooled allocators must be ABA-safe: a block
// returns to a freelist only via the reclaimer's deferred deleter, i.e.
// after the grace period, so no thread can carry a CAS expectation about a
// node across its reuse. These tests churn a tiny key range from several
// threads — the workload that maximizes recycling of just-freed blocks into
// concurrent inserts of the same keys — and validate the structures both
// structurally (validate()) and behaviorally (linearizability checker).
#include <gtest/gtest.h>

#include <barrier>
#include <cstdint>
#include <thread>
#include <vector>

#include "lf/chk/linearizability.h"
#include "lf/core/fr_list.h"
#include "lf/core/fr_skiplist.h"
#include "lf/mem/pool.h"
#include "lf/mem/tower.h"
#include "lf/reclaim/epoch.h"
#include "lf/util/random.h"

namespace {

using lf::chk::check_linearizable;
using lf::chk::HistoryRecorder;
using lf::chk::OpKind;
using lf::mem::PoolTotals;
using lf::mem::pool_totals;
using lf::reclaim::EpochDomain;
using lf::reclaim::EpochReclaimer;

using FlatPooledSkipList =
    lf::FRSkipList<long, long, std::less<long>, EpochReclaimer, 24,
                   lf::mem::FlatTowers>;
using ChainedPooledSkipList =
    lf::FRSkipList<long, long, std::less<long>, EpochReclaimer, 24,
                   lf::mem::PooledChainedTowers>;
using PooledList = lf::FRList<long, long>;  // PoolAlloc is the default

// Multi-threaded churn on a small key range with an isolated epoch domain:
// every block cycles allocate -> link -> unlink -> retire -> recycle many
// times. Afterwards the structure must validate and the domain must drain
// to zero (every deleter ran; nothing leaked or double-freed).
template <typename Set>
void churn_and_validate() {
  EpochDomain domain;
  const PoolTotals before = pool_totals();
  {
    Set set{EpochReclaimer(domain)};
    constexpr int kThreads = 4;
    constexpr int kOpsPerThread = 60000;
    constexpr long kKeySpace = 32;  // tiny: constant recycle pressure
    std::barrier start(kThreads);
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        lf::Xoshiro256 rng(0xabcdef0 + static_cast<std::uint64_t>(t));
        start.arrive_and_wait();
        for (int i = 0; i < kOpsPerThread; ++i) {
          const long k = static_cast<long>(rng.below(kKeySpace));
          switch (rng.below(4)) {
            case 0:
            case 1:
              set.insert(k, k);
              break;
            case 2:
              set.erase(k);
              break;
            default:
              set.contains(k);
              break;
          }
        }
      });
    }
    for (auto& w : workers) w.join();
    const auto rep = set.validate();
    EXPECT_TRUE(rep.ok) << rep.error;
    domain.drain();
    EXPECT_EQ(domain.retired_count(), 0u);
  }
  // The churn must have actually exercised the recycle path, or this test
  // proves nothing about reuse.
  const PoolTotals d = pool_totals() - before;
  EXPECT_GT(d.recycled_blocks, 1000u);
  EXPECT_EQ(d.oversize, 0u);  // every tower fits a pooled size class
  EXPECT_EQ(d.freed_blocks, d.fresh_blocks + d.recycled_blocks)
      << "allocate/free imbalance: something leaked or double-freed";
}

TEST(PoolReuse, FlatSkipListChurn) {
  churn_and_validate<FlatPooledSkipList>();
}

TEST(PoolReuse, ChainedPooledSkipListChurn) {
  churn_and_validate<ChainedPooledSkipList>();
}

TEST(PoolReuse, PooledListChurn) { churn_and_validate<PooledList>(); }

// Behavioral check: histories recorded against the pooled structures under
// real concurrency must be linearizable. An ABA on a recycled block shows
// up here as an impossible operation outcome.
template <typename Set>
void record_and_check(std::uint64_t seed) {
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 400;
  constexpr int kBurst = 16;  // quiescent cut every kBurst ops keeps each
                              // concurrent window inside the solver's limit
  constexpr std::uint32_t kKeySpace = 6;

  Set set;
  HistoryRecorder rec(kThreads);
  std::barrier start(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      lf::Xoshiro256 rng(seed + static_cast<std::uint64_t>(t) * 977);
      start.arrive_and_wait();
      for (int i = 0; i < kOpsPerThread; ++i) {
        if (i % kBurst == 0) start.arrive_and_wait();
        const auto k = static_cast<std::uint32_t>(rng.below(kKeySpace));
        const auto kind = static_cast<OpKind>(rng.below(3));
        const auto t0 = rec.begin();
        bool result = false;
        switch (kind) {
          case OpKind::kInsert:
            result = set.insert(static_cast<long>(k), k);
            break;
          case OpKind::kErase:
            result = set.erase(static_cast<long>(k));
            break;
          case OpKind::kContains:
            result = set.contains(static_cast<long>(k));
            break;
        }
        rec.end(t, kind, k, result, t0);
      }
    });
  }
  for (auto& w : workers) w.join();

  const auto res = check_linearizable(rec.finish(), kKeySpace);
  EXPECT_TRUE(res.linearizable)
      << "non-linearizable history! seed=" << seed
      << " events=" << res.events << " chunk=" << res.largest_chunk;
  EXPECT_EQ(res.skipped_chunks, 0u) << "window too wide to fully check";
}

TEST(PoolReuse, FlatSkipListLinearizable) {
  for (std::uint64_t seed : {11u, 222u, 3333u})
    record_and_check<FlatPooledSkipList>(seed);
}

TEST(PoolReuse, PooledListLinearizable) {
  for (std::uint64_t seed : {44u, 555u, 6666u})
    record_and_check<PooledList>(seed);
}

}  // namespace
