// Deterministic tests of the helping machinery (Section 3.3): a deleter
// that performs only the FLAG step and then stalls forever must never
// block any other operation — everyone who runs into the flag completes
// the deletion themselves. These are the lock-freedom paths that random
// schedules on a single-core host essentially never exercise.
#include <gtest/gtest.h>

#include "lf/core/fr_list.h"
#include "lf/instrument/counters.h"
#include "lf/reclaim/leaky.h"

namespace {

// Leaky reclaimer: stalled-deletion state must stay inspectable.
using List =
    lf::FRList<long, long, std::less<long>, lf::reclaim::LeakyReclaimer>;

TEST(FRListHelping, EraseBeginLeavesPredecessorFlagged) {
  List list;
  for (long k = 1; k <= 5; ++k) list.insert(k, k);
  List::StalledErase st;
  ASSERT_TRUE(list.erase_begin(3, st));
  EXPECT_TRUE(st.flagged);
  ASSERT_EQ(st.prev->key, 2);
  ASSERT_EQ(st.del->key, 3);
  // First deletion step only: predecessor flagged, victim NOT yet marked.
  EXPECT_TRUE(st.prev->succ.load().flag);
  EXPECT_FALSE(st.del->succ.load().mark);
  // The deletion has not linearized: the key is still in the set.
  EXPECT_TRUE(list.contains(3));
  // Searches do not complete flagged-only deletions (only marked ones).
  EXPECT_TRUE(list.contains(4));
  EXPECT_TRUE(st.prev->succ.load().flag);

  EXPECT_TRUE(list.erase_finish(st));  // the stalled op completes and owns it
  EXPECT_FALSE(list.contains(3));
  EXPECT_TRUE(list.validate().ok);
}

TEST(FRListHelping, InsertAfterFlaggedPredecessorHelps) {
  List list;
  for (long k = 1; k <= 5; ++k) list.insert(k, k);
  List::StalledErase st;
  ASSERT_TRUE(list.erase_begin(3, st));  // node 2 flagged, stalled

  // Inserting 3.5-ish (key 30, rescaled: use 3 < 30 < 4? keys are longs;
  // insert between 3 and 4 is impossible — insert key right after the
  // flagged region instead: a new key whose predecessor is the flagged
  // node 2 or the victim 3).
  const auto before = lf::stats::aggregate();
  EXPECT_TRUE(list.insert(6, 6));  // prev = 5: unaffected, sanity
  const auto mid = lf::stats::aggregate();
  (void)before;
  (void)mid;

  // Now force an insert whose located predecessor IS the victim: key 3
  // precedes 4, so inserting a key between 3 and 4 doesn't exist for
  // integers — instead delete 4 and 5 first so the victim is the last
  // node and append. Keep it simpler: insert a key that lands right after
  // the flagged node 2 by removing 3 logically first is the erase path;
  // the insert-helps path triggers when insert's C&S target (node 2) is
  // flagged:
  //   prev=2 (flagged) for key "2.5" — not representable with longs.
  // Use a fresh list with gaps instead.
  List gap;
  for (long k : {10L, 20L, 30L, 40L}) gap.insert(k, k);
  List::StalledErase st2;
  ASSERT_TRUE(gap.erase_begin(30, st2));  // node 20 flagged
  // Insert 25: located predecessor is node 20, which is flagged. The
  // insert must help complete 30's deletion, then succeed.
  const auto b2 = lf::stats::aggregate();
  EXPECT_TRUE(gap.insert(25, 25));
  const auto d2 = lf::stats::aggregate() - b2;
  EXPECT_GE(d2.help_flagged, 1u);  // the helping path ran
  EXPECT_FALSE(gap.contains(30));  // deletion completed by the helper
  EXPECT_TRUE(gap.contains(25));
  // The stalled deleter eventually resumes: idempotent, still owns success.
  EXPECT_TRUE(gap.erase_finish(st2));
  EXPECT_TRUE(gap.validate().ok);

  EXPECT_TRUE(list.erase_finish(st));
  EXPECT_TRUE(list.validate().ok);
}

TEST(FRListHelping, CompetingEraseHelpsButDoesNotStealSuccess) {
  List list;
  for (long k : {10L, 20L, 30L}) list.insert(k, k);
  List::StalledErase st;
  ASSERT_TRUE(list.erase_begin(20, st));
  ASSERT_TRUE(st.flagged);

  // A second erase of the same key finds the predecessor already flagged:
  // it must HELP the deletion to completion but report failure (the
  // stalled operation owns the success).
  EXPECT_FALSE(list.erase(20));
  EXPECT_FALSE(list.contains(20));  // physically gone: helping completed it
  EXPECT_FALSE(list.head()->succ.load().right->succ.load().flag);

  // The stalled deleter resumes and reports success exactly once.
  EXPECT_TRUE(list.erase_finish(st));
  EXPECT_TRUE(list.validate().ok);
}

TEST(FRListHelping, DeletingTheFlaggedPredecessorHelpsFirst) {
  // The flag rule: a flagged node cannot be marked. Deleting node 20 while
  // it is flagged for 30's (stalled) deletion forces TryMark's help path:
  // complete 30's deletion, then 20's own.
  List list;
  for (long k : {10L, 20L, 30L, 40L}) list.insert(k, k);
  List::StalledErase st;
  ASSERT_TRUE(list.erase_begin(30, st));  // 20 flagged

  EXPECT_TRUE(list.erase(20));   // must succeed despite the flag
  EXPECT_FALSE(list.contains(20));
  EXPECT_FALSE(list.contains(30));  // helped to completion on the way
  EXPECT_TRUE(list.erase_finish(st));
  EXPECT_EQ(list.size(), 2u);
  EXPECT_TRUE(list.validate().ok);
}

TEST(FRListHelping, InsertBeforeVictimUnaffectedByFlag) {
  // A flag freezes ONE successor field; inserts elsewhere must not help or
  // be delayed.
  List list;
  for (long k : {10L, 20L, 30L}) list.insert(k, k);
  List::StalledErase st;
  ASSERT_TRUE(list.erase_begin(30, st));  // 20 flagged
  const auto before = lf::stats::aggregate();
  EXPECT_TRUE(list.insert(15, 15));  // prev = 10: untouched region
  const auto delta = lf::stats::aggregate() - before;
  EXPECT_EQ(delta.help_flagged, 0u);
  EXPECT_EQ(delta.cas_failures(), 0u);
  EXPECT_TRUE(list.erase_finish(st));
  EXPECT_TRUE(list.validate().ok);
}

TEST(FRListHelping, EraseBeginReportsLostFlagRace) {
  // If the key is already being deleted (flag in place), a second
  // erase_begin returns prev != null but flagged == false.
  List list;
  for (long k : {10L, 20L}) list.insert(k, k);
  List::StalledErase first, second;
  ASSERT_TRUE(list.erase_begin(20, first));
  ASSERT_TRUE(first.flagged);
  ASSERT_TRUE(list.erase_begin(20, second));
  EXPECT_FALSE(second.flagged);  // the flag already belongs to `first`
  EXPECT_FALSE(list.erase_finish(second));  // helper: completes, no success
  EXPECT_TRUE(list.erase_finish(first));    // owner: reports the success
  EXPECT_FALSE(list.contains(20));
  EXPECT_TRUE(list.validate().ok);
}

TEST(FRListHelping, SearchDoesCompleteMarkedDeletions) {
  // Contrast with the flagged-only case: once the victim is MARKED, any
  // search passing by performs the physical deletion (SearchFrom line 5).
  List list;
  for (long k : {10L, 20L, 30L}) list.insert(k, k);
  List::StalledErase st;
  ASSERT_TRUE(list.erase_begin(20, st));
  // Manually advance the stalled deletion to the marked state the way a
  // partially-helped execution would: mark via a competing erase... which
  // would fully complete it. Instead verify via erase_finish + counters
  // that help_marked runs under searches over a marked node is covered in
  // whitebox tests; here assert finish-then-search finds a clean list.
  EXPECT_TRUE(list.erase_finish(st));
  const auto before = lf::stats::aggregate();
  EXPECT_FALSE(list.contains(20));
  const auto delta = lf::stats::aggregate() - before;
  EXPECT_EQ(delta.cas_attempt, 0u);  // nothing left to clean
  EXPECT_TRUE(list.validate().ok);
}

}  // namespace
