// Tests for FRSkipListRC — reference counting applied to the skip list, as
// the paper's Section 5 proposes. Covers dictionary semantics, the tower
// build/teardown paths under counting, recycling behaviour, and full
// quiescent accounting.
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <map>
#include <thread>
#include <vector>

#include "lf/core/fr_skiplist_rc.h"
#include "lf/util/random.h"

namespace {

using RCSkip = lf::FRSkipListRC<long, long>;

TEST(FRSkipListRC, BasicSemantics) {
  RCSkip s;
  EXPECT_TRUE(s.insert(5, 50));
  EXPECT_TRUE(s.insert(1, 10));
  EXPECT_FALSE(s.insert(5, 51));
  EXPECT_EQ(*s.find(5), 50);
  EXPECT_TRUE(s.erase(5));
  EXPECT_FALSE(s.erase(5));
  EXPECT_FALSE(s.contains(5));
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.validate_accounting());
}

TEST(FRSkipListRC, TowersFullyRecycledAfterErase) {
  RCSkip s;
  for (long k = 0; k < 500; ++k) s.insert(k, k);
  const std::size_t arena = s.arena_count();
  EXPECT_GT(arena, 500u);  // multi-level towers allocate per level
  for (long k = 0; k < 500; ++k) ASSERT_TRUE(s.erase(k));
  EXPECT_EQ(s.size(), 0u);
  // Every interior node of every tower is back in the free list: counts
  // released the whole down/tower_root web with no strays. (25 = 24 head
  // nodes + 1 tail sentinel at the default MaxLevel.)
  EXPECT_TRUE(s.validate_accounting());
  EXPECT_EQ(s.free_count(), arena - 25u);
  EXPECT_EQ(s.arena_count(), arena);
}

TEST(FRSkipListRC, ChurnReusesNodes) {
  RCSkip s;
  for (long k = 0; k < 100; ++k) s.insert(k, k);
  const std::size_t high_water = s.arena_count();
  for (int round = 0; round < 15; ++round) {
    for (long k = 0; k < 100; ++k) ASSERT_TRUE(s.erase(k));
    for (long k = 0; k < 100; ++k) ASSERT_TRUE(s.insert(k, k + round));
  }
  // Tower heights are random, so later towers may occasionally need a few
  // more nodes than the first generation — but reuse must dominate: the
  // arena cannot have grown by another generation's worth.
  EXPECT_LT(s.arena_count(), high_water + 100u);
  for (long k = 0; k < 100; ++k) EXPECT_EQ(*s.find(k), k + 14);
  EXPECT_TRUE(s.validate_accounting());
}

TEST(FRSkipListRC, DifferentialAgainstStdMap) {
  RCSkip s;
  std::map<long, long> model;
  lf::Xoshiro256 rng(123);
  for (int i = 0; i < 15000; ++i) {
    const long k = static_cast<long>(rng.below(150));
    switch (rng.below(3)) {
      case 0:
        ASSERT_EQ(s.insert(k, k * 4), model.emplace(k, k * 4).second) << i;
        break;
      case 1:
        ASSERT_EQ(s.erase(k), model.erase(k) > 0) << i;
        break;
      default: {
        const auto a = s.find(k);
        ASSERT_EQ(a.has_value(), model.contains(k)) << i;
        if (a.has_value()) { ASSERT_EQ(*a, model.at(k)); }
      }
    }
  }
  EXPECT_EQ(s.size(), model.size());
  EXPECT_TRUE(s.validate_accounting());
}

TEST(FRSkipListRC, ConcurrentDisjointInserts) {
  RCSkip s;
  constexpr int kThreads = 4;
  constexpr long kPerThread = 250;
  std::barrier start(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      start.arrive_and_wait();
      for (long i = 0; i < kPerThread; ++i)
        ASSERT_TRUE(s.insert(t * kPerThread + i, i));
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(s.size(), static_cast<std::size_t>(kThreads * kPerThread));
  for (long k = 0; k < kThreads * kPerThread; ++k)
    ASSERT_TRUE(s.contains(k)) << k;
  EXPECT_TRUE(s.validate_accounting());
}

TEST(FRSkipListRC, ConcurrentChurnAccountingHolds) {
  RCSkip s;
  constexpr int kThreads = 4;
  std::barrier start(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      lf::Xoshiro256 rng(700 + t);
      start.arrive_and_wait();
      for (int i = 0; i < 8000; ++i) {
        const long k = static_cast<long>(rng.below(64));
        switch (rng.below(3)) {
          case 0: s.insert(k, k); break;
          case 1: s.erase(k); break;
          default: s.contains(k);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_TRUE(s.validate_accounting());
  for (long k = 0; k < 64; ++k)
    EXPECT_EQ(s.contains(k), s.find(k).has_value());
}

TEST(FRSkipListRC, HotKeyDuelInterruptsTowers) {
  // Insert/erase duels on few keys force interrupted tower constructions;
  // accounting must still balance exactly.
  RCSkip s;
  constexpr int kThreads = 4;
  std::barrier start(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      lf::Xoshiro256 rng(900 + t);
      start.arrive_and_wait();
      for (int i = 0; i < 10000; ++i) {
        const long k = static_cast<long>(rng.below(4));
        if (rng.below(2) == 0) {
          s.insert(k, k);
        } else {
          s.erase(k);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_TRUE(s.validate_accounting());
  EXPECT_LE(s.size(), 4u);
}

TEST(FRSkipListRC, ReadersSeeOnlySaneValues) {
  RCSkip s;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    lf::Xoshiro256 rng(21);
    while (!stop.load(std::memory_order_acquire)) {
      const long k = static_cast<long>(rng.below(32));
      s.insert(k, k * 17);
      s.erase(static_cast<long>(rng.below(32)));
    }
  });
  std::thread reader([&] {
    lf::Xoshiro256 rng(22);
    for (int i = 0; i < 25000; ++i) {
      const long k = static_cast<long>(rng.below(32));
      const auto v = s.find(k);
      if (v.has_value()) { ASSERT_EQ(*v, k * 17); }
    }
    stop.store(true, std::memory_order_release);
  });
  reader.join();
  writer.join();
  EXPECT_TRUE(s.validate_accounting());
}

}  // namespace
