// White-box tests for FRSkipList: tower retirement accounting, per-level
// structure after deletions, the three-step protocol at every level, and
// the first() accessor the priority-queue adapter relies on.
#include <gtest/gtest.h>

#include "lf/core/fr_skiplist.h"
#include "lf/instrument/counters.h"
#include "lf/reclaim/epoch.h"

namespace {

using Skip = lf::FRSkipList<long, long>;

TEST(FRSkipListWhitebox, EraseRemovesKeyFromEveryLevel) {
  Skip s;
  for (long k = 0; k < 300; ++k) s.insert(k, k);
  ASSERT_TRUE(s.erase(150));
  // Walk every level: no node with key 150 may remain linked.
  for (int v = 1; v <= 23; ++v) {
    for (auto* p = s.head(v)->succ.load().right;
         p->kind != Skip::Node::Kind::kTail; p = p->succ.load().right) {
      ASSERT_NE(p->key, 150) << "level " << v;
    }
  }
}

TEST(FRSkipListWhitebox, TowersAreRetiredWholeAndFreed) {
  lf::reclaim::EpochDomain domain;
  {
    lf::FRSkipList<long, long> s{lf::reclaim::EpochReclaimer(domain)};
    const auto before = lf::stats::aggregate();
    for (long k = 0; k < 1000; ++k) s.insert(k, k);
    for (long k = 0; k < 1000; ++k) ASSERT_TRUE(s.erase(k));
    domain.drain();
    const auto delta = lf::stats::aggregate() - before;
    // Every node of every tower (>= one per key) must have been retired
    // and, after drain, freed. retired == freed means no node leaked and
    // none was double-retired (a double retire would crash in free).
    EXPECT_GE(delta.node_retired, 1000u);
    EXPECT_EQ(delta.node_retired, delta.node_freed);
    EXPECT_EQ(domain.retired_count(), 0u);
  }
}

TEST(FRSkipListWhitebox, DeletionRunsThreeStepsPerLevel) {
  Skip s;
  // Insert until we get a tower of height >= 2 and capture its key.
  long tall_key = -1;
  for (long k = 0; k < 200 && tall_key < 0; ++k) {
    s.insert(k, k);
    for (auto* p = s.head(2)->succ.load().right;
         p->kind != Skip::Node::Kind::kTail; p = p->succ.load().right) {
      if (p->key == k) tall_key = k;
    }
  }
  ASSERT_GE(tall_key, 0) << "no tall tower in 200 geometric draws?!";

  // Count the tower's height.
  int height = 1;
  for (int v = 2; v <= 23; ++v) {
    bool found = false;
    for (auto* p = s.head(v)->succ.load().right;
         p->kind != Skip::Node::Kind::kTail; p = p->succ.load().right) {
      if (p->key == tall_key) found = true;
    }
    if (found) height = v;
  }

  const auto before = lf::stats::aggregate();
  ASSERT_TRUE(s.erase(tall_key));
  const auto delta = lf::stats::aggregate() - before;
  // One flag+mark+unlink triple per level of the tower.
  EXPECT_EQ(delta.flag_cas, static_cast<std::uint64_t>(height));
  EXPECT_EQ(delta.mark_cas, static_cast<std::uint64_t>(height));
  EXPECT_EQ(delta.pdelete_cas, static_cast<std::uint64_t>(height));
}

TEST(FRSkipListWhitebox, FirstReturnsSmallestRegularKey) {
  Skip s;
  EXPECT_FALSE(s.first().has_value());
  s.insert(50, 500);
  s.insert(20, 200);
  s.insert(80, 800);
  auto front = s.first();
  ASSERT_TRUE(front.has_value());
  EXPECT_EQ(front->first, 20);
  EXPECT_EQ(front->second, 200);
  s.erase(20);
  EXPECT_EQ(s.first()->first, 50);
  s.erase(50);
  s.erase(80);
  EXPECT_FALSE(s.first().has_value());
}

TEST(FRSkipListWhitebox, ValidateCountsMatchCensus) {
  Skip s;
  for (long k = 0; k < 5000; ++k) s.insert(k * 3, k);
  const auto rep = s.validate();
  ASSERT_TRUE(rep.ok) << rep.error;
  const auto census = s.census();
  std::size_t nodes_from_census = 0;
  for (const auto& [h, cnt] : census.height_counts)
    nodes_from_census += static_cast<std::size_t>(h) * cnt;
  EXPECT_EQ(rep.node_count, nodes_from_census);
  EXPECT_EQ(census.towers, 5000u);
}

TEST(FRSkipListWhitebox, TopHintNeverExceedsTallestTower) {
  Skip s;
  for (long k = 0; k < 3000; ++k) s.insert(k, k);
  const auto census = s.census();
  int tallest = 0;
  for (const auto& [h, cnt] : census.height_counts) tallest = h;
  EXPECT_LE(s.top_level_hint(), tallest + 1);
  EXPECT_GE(s.top_level_hint(), tallest);
}

TEST(FRSkipListWhitebox, RangeQueriesVisitExactInterval) {
  Skip s;
  for (long k = 0; k < 100; ++k) s.insert(k * 2, k);  // evens 0..198
  std::vector<long> seen;
  s.for_each_range(10, 21, [&](long k, long) { seen.push_back(k); });
  EXPECT_EQ(seen, (std::vector<long>{10, 12, 14, 16, 18, 20}));
  EXPECT_EQ(s.count_range(10, 21), 6u);
  // Half-open: hi excluded, lo included when present.
  EXPECT_EQ(s.count_range(10, 20), 5u);
  EXPECT_EQ(s.count_range(11, 20), 4u);  // lo absent
  // Degenerate and out-of-range intervals.
  EXPECT_EQ(s.count_range(10, 10), 0u);
  EXPECT_EQ(s.count_range(500, 600), 0u);
  EXPECT_EQ(s.count_range(-10, 0), 0u);
  EXPECT_EQ(s.count_range(-10, 1), 1u);  // just key 0
  EXPECT_EQ(s.count_range(0, 1000), 100u);  // everything
}

TEST(FRSkipListWhitebox, RangeSkipsDeletedKeys) {
  Skip s;
  for (long k = 0; k < 50; ++k) s.insert(k, k);
  for (long k = 10; k < 20; ++k) s.erase(k);
  EXPECT_EQ(s.count_range(5, 25), 10u);  // 5..9 and 20..24
  std::vector<long> seen;
  s.for_each_range(8, 22, [&](long k, long) { seen.push_back(k); });
  EXPECT_EQ(seen, (std::vector<long>{8, 9, 20, 21}));
}

TEST(FRSkipListWhitebox, SearchHasNoSideEffectsOnCleanList) {
  Skip s;
  for (long k = 0; k < 100; ++k) s.insert(k, k);
  const auto before = lf::stats::aggregate();
  for (long k = 0; k < 100; ++k) s.contains(k);
  const auto delta = lf::stats::aggregate() - before;
  EXPECT_EQ(delta.cas_attempt, 0u);  // nothing to help or flag
  EXPECT_EQ(delta.help_flagged, 0u);
}

}  // namespace
