// White-box tests for FRSkipList: tower retirement accounting, per-level
// structure after deletions, the three-step protocol at every level, and
// the first() accessor the priority-queue adapter relies on.
//
// The whole suite is typed over the memory-layout policies (mem/tower.h):
// the algorithm must behave identically whether towers are flat blocks or
// pointer-chained nodes, pooled or heap-allocated.
#include <gtest/gtest.h>

#include "lf/core/fr_skiplist.h"
#include "lf/instrument/counters.h"
#include "lf/mem/tower.h"
#include "lf/reclaim/epoch.h"

namespace {

template <typename Layout>
struct FRSkipListWhitebox : ::testing::Test {
  using Skip = lf::FRSkipList<long, long, std::less<long>,
                              lf::reclaim::EpochReclaimer, 24, Layout>;
};

using Layouts =
    ::testing::Types<lf::mem::FlatTowers, lf::mem::FlatTowersHeap,
                     lf::mem::PooledChainedTowers, lf::mem::ChainedTowers>;
TYPED_TEST_SUITE(FRSkipListWhitebox, Layouts);

TYPED_TEST(FRSkipListWhitebox, EraseRemovesKeyFromEveryLevel) {
  using Skip = typename TestFixture::Skip;
  Skip s;
  for (long k = 0; k < 300; ++k) s.insert(k, k);
  ASSERT_TRUE(s.erase(150));
  // Walk every level: no node with key 150 may remain linked.
  for (int v = 1; v <= 23; ++v) {
    for (auto* p = s.head(v)->succ.load().right;
         p->kind != Skip::Node::Kind::kTail; p = p->succ.load().right) {
      ASSERT_NE(p->key, 150) << "level " << v;
    }
  }
}

TYPED_TEST(FRSkipListWhitebox, TowersAreRetiredWholeAndFreed) {
  using Skip = typename TestFixture::Skip;
  lf::reclaim::EpochDomain domain;
  {
    Skip s{lf::reclaim::EpochReclaimer(domain)};
    const auto before = lf::stats::aggregate();
    for (long k = 0; k < 1000; ++k) s.insert(k, k);
    for (long k = 0; k < 1000; ++k) ASSERT_TRUE(s.erase(k));
    domain.drain();
    const auto delta = lf::stats::aggregate() - before;
    // Every tower must have been retired (as one block under the flat
    // layout, node by node under the chained one) and, after drain, freed.
    // retired == freed means no retirement leaked and none was doubled (a
    // double retire would crash in free).
    EXPECT_GE(delta.node_retired, 1000u);
    EXPECT_EQ(delta.node_retired, delta.node_freed);
    EXPECT_EQ(domain.retired_count(), 0u);
  }
}

TYPED_TEST(FRSkipListWhitebox, DeletionRunsThreeStepsPerLevel) {
  using Skip = typename TestFixture::Skip;
  Skip s;
  // Insert until we get a tower of height >= 2 and capture its key.
  long tall_key = -1;
  for (long k = 0; k < 200 && tall_key < 0; ++k) {
    s.insert(k, k);
    for (auto* p = s.head(2)->succ.load().right;
         p->kind != Skip::Node::Kind::kTail; p = p->succ.load().right) {
      if (p->key == k) tall_key = k;
    }
  }
  ASSERT_GE(tall_key, 0) << "no tall tower in 200 geometric draws?!";

  // Count the tower's height.
  int height = 1;
  for (int v = 2; v <= 23; ++v) {
    bool found = false;
    for (auto* p = s.head(v)->succ.load().right;
         p->kind != Skip::Node::Kind::kTail; p = p->succ.load().right) {
      if (p->key == tall_key) found = true;
    }
    if (found) height = v;
  }

  const auto before = lf::stats::aggregate();
  ASSERT_TRUE(s.erase(tall_key));
  const auto delta = lf::stats::aggregate() - before;
  // One flag+mark+unlink triple per level of the tower.
  EXPECT_EQ(delta.flag_cas, static_cast<std::uint64_t>(height));
  EXPECT_EQ(delta.mark_cas, static_cast<std::uint64_t>(height));
  EXPECT_EQ(delta.pdelete_cas, static_cast<std::uint64_t>(height));
}

TYPED_TEST(FRSkipListWhitebox, FirstReturnsSmallestRegularKey) {
  using Skip = typename TestFixture::Skip;
  Skip s;
  EXPECT_FALSE(s.first().has_value());
  s.insert(50, 500);
  s.insert(20, 200);
  s.insert(80, 800);
  auto front = s.first();
  ASSERT_TRUE(front.has_value());
  EXPECT_EQ(front->first, 20);
  EXPECT_EQ(front->second, 200);
  s.erase(20);
  EXPECT_EQ(s.first()->first, 50);
  s.erase(50);
  s.erase(80);
  EXPECT_FALSE(s.first().has_value());
}

TYPED_TEST(FRSkipListWhitebox, ValidateCountsMatchCensus) {
  using Skip = typename TestFixture::Skip;
  Skip s;
  for (long k = 0; k < 5000; ++k) s.insert(k * 3, k);
  const auto rep = s.validate();
  ASSERT_TRUE(rep.ok) << rep.error;
  const auto census = s.census();
  std::size_t nodes_from_census = 0;
  for (const auto& [h, cnt] : census.height_counts)
    nodes_from_census += static_cast<std::size_t>(h) * cnt;
  EXPECT_EQ(rep.node_count, nodes_from_census);
  EXPECT_EQ(census.towers, 5000u);
}

TYPED_TEST(FRSkipListWhitebox, TopHintNeverExceedsTallestTower) {
  using Skip = typename TestFixture::Skip;
  Skip s;
  for (long k = 0; k < 3000; ++k) s.insert(k, k);
  const auto census = s.census();
  int tallest = 0;
  for (const auto& [h, cnt] : census.height_counts) tallest = h;
  EXPECT_LE(s.top_level_hint(), tallest + 1);
  EXPECT_GE(s.top_level_hint(), tallest);
}

TYPED_TEST(FRSkipListWhitebox, RangeQueriesVisitExactInterval) {
  using Skip = typename TestFixture::Skip;
  Skip s;
  for (long k = 0; k < 100; ++k) s.insert(k * 2, k);  // evens 0..198
  std::vector<long> seen;
  s.for_each_range(10, 21, [&](long k, long) { seen.push_back(k); });
  EXPECT_EQ(seen, (std::vector<long>{10, 12, 14, 16, 18, 20}));
  EXPECT_EQ(s.count_range(10, 21), 6u);
  // Half-open: hi excluded, lo included when present.
  EXPECT_EQ(s.count_range(10, 20), 5u);
  EXPECT_EQ(s.count_range(11, 20), 4u);  // lo absent
  // Degenerate and out-of-range intervals.
  EXPECT_EQ(s.count_range(10, 10), 0u);
  EXPECT_EQ(s.count_range(500, 600), 0u);
  EXPECT_EQ(s.count_range(-10, 0), 0u);
  EXPECT_EQ(s.count_range(-10, 1), 1u);  // just key 0
  EXPECT_EQ(s.count_range(0, 1000), 100u);  // everything
}

TYPED_TEST(FRSkipListWhitebox, RangeSkipsDeletedKeys) {
  using Skip = typename TestFixture::Skip;
  Skip s;
  for (long k = 0; k < 50; ++k) s.insert(k, k);
  for (long k = 10; k < 20; ++k) s.erase(k);
  EXPECT_EQ(s.count_range(5, 25), 10u);  // 5..9 and 20..24
  std::vector<long> seen;
  s.for_each_range(8, 22, [&](long k, long) { seen.push_back(k); });
  EXPECT_EQ(seen, (std::vector<long>{8, 9, 20, 21}));
}

TYPED_TEST(FRSkipListWhitebox, SearchHasNoSideEffectsOnCleanList) {
  using Skip = typename TestFixture::Skip;
  Skip s;
  for (long k = 0; k < 100; ++k) s.insert(k, k);
  const auto before = lf::stats::aggregate();
  for (long k = 0; k < 100; ++k) s.contains(k);
  const auto delta = lf::stats::aggregate() - before;
  EXPECT_EQ(delta.cas_attempt, 0u);  // nothing to help or flag
  EXPECT_EQ(delta.help_flagged, 0u);
}

// The flat layout packs the tower into one block: verify the advertised
// address arithmetic actually holds for linked towers (root at offset 0,
// level v at offset (v-1)*sizeof(Node)) — the property the cache-locality
// claims rest on.
TEST(FlatTowerLayout, UpperNodesLiveInsideTheRootBlock) {
  using Skip = lf::FRSkipList<long, long, std::less<long>,
                              lf::reclaim::EpochReclaimer, 24,
                              lf::mem::FlatTowers>;
  Skip s;
  for (long k = 0; k < 500; ++k) s.insert(k, k);
  std::size_t towers_checked = 0;
  for (int v = 2; v <= 23; ++v) {
    for (auto* p = s.head(v)->succ.load().right;
         p->kind != Skip::Node::Kind::kTail; p = p->succ.load().right) {
      const auto* root = p->tower_root;
      const auto off = reinterpret_cast<const char*>(p) -
                       reinterpret_cast<const char*>(root);
      EXPECT_EQ(off, static_cast<std::ptrdiff_t>(sizeof(typename Skip::Node)) *
                         (p->level - 1));
      EXPECT_LT(p->level, root->planned_height + 1);
      ++towers_checked;
    }
  }
  EXPECT_GT(towers_checked, 0u);
  // Roots come from the pool: 64-byte aligned, every time.
  for (auto* p = s.head(1)->succ.load().right;
       p->kind != Skip::Node::Kind::kTail; p = p->succ.load().right) {
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);
  }
}

}  // namespace
