// Tests for the linearizability checker itself, then live linearizability
// verification of the paper's structures under real concurrency.
#include <gtest/gtest.h>

#include <barrier>
#include <thread>
#include <vector>

#include "lf/chk/linearizability.h"
#include "lf/core/fr_list.h"
#include "lf/core/fr_list_noflag.h"
#include "lf/core/fr_skiplist.h"
#include "lf/util/random.h"

namespace {

using lf::chk::check_linearizable;
using lf::chk::Event;
using lf::chk::HistoryRecorder;
using lf::chk::OpKind;

Event ev(OpKind kind, std::uint32_t key, bool result, std::uint64_t invoke,
         std::uint64_t response) {
  return Event{kind, key, result, invoke, response};
}

// ---- checker unit tests ---------------------------------------------------

TEST(Checker, EmptyHistoryIsLinearizable) {
  EXPECT_TRUE(check_linearizable({}, 8).linearizable);
}

TEST(Checker, SequentialValidHistory) {
  std::vector<Event> h{
      ev(OpKind::kInsert, 1, true, 0, 1),
      ev(OpKind::kContains, 1, true, 2, 3),
      ev(OpKind::kErase, 1, true, 4, 5),
      ev(OpKind::kContains, 1, false, 6, 7),
      ev(OpKind::kErase, 1, false, 8, 9),
  };
  const auto res = check_linearizable(h, 8);
  EXPECT_TRUE(res.linearizable);
  EXPECT_EQ(res.chunks, 5u);
}

TEST(Checker, SequentialContradictionRejected) {
  // contains(1)=true before any insert: impossible.
  std::vector<Event> h{
      ev(OpKind::kContains, 1, true, 0, 1),
      ev(OpKind::kInsert, 1, true, 2, 3),
  };
  EXPECT_FALSE(check_linearizable(h, 8).linearizable);
}

TEST(Checker, DoubleSuccessfulEraseRejected) {
  std::vector<Event> h{
      ev(OpKind::kInsert, 2, true, 0, 1),
      ev(OpKind::kErase, 2, true, 2, 3),
      ev(OpKind::kErase, 2, true, 4, 5),
  };
  EXPECT_FALSE(check_linearizable(h, 8).linearizable);
}

TEST(Checker, OverlappingOpsAllowReordering) {
  // contains(3)=true overlaps the insert that makes it true: valid only
  // because the two overlap (insert may linearize first).
  std::vector<Event> h{
      ev(OpKind::kInsert, 3, true, 0, 5),
      ev(OpKind::kContains, 3, true, 1, 4),
  };
  EXPECT_TRUE(check_linearizable(h, 8).linearizable);
}

TEST(Checker, NonOverlappingOrderIsBinding) {
  // Same events but contains completes BEFORE insert begins: invalid.
  std::vector<Event> h{
      ev(OpKind::kContains, 3, true, 0, 1),
      ev(OpKind::kInsert, 3, true, 2, 3),
  };
  EXPECT_FALSE(check_linearizable(h, 8).linearizable);
}

TEST(Checker, ConcurrentDuplicateInsertsOneWinner) {
  std::vector<Event> h{
      ev(OpKind::kInsert, 4, true, 0, 10),
      ev(OpKind::kInsert, 4, false, 1, 9),
      ev(OpKind::kContains, 4, true, 12, 13),
  };
  EXPECT_TRUE(check_linearizable(h, 8).linearizable);
}

TEST(Checker, ConcurrentDuplicateInsertsBothWinningRejected) {
  std::vector<Event> h{
      ev(OpKind::kInsert, 4, true, 0, 10),
      ev(OpKind::kInsert, 4, true, 1, 9),
  };
  EXPECT_FALSE(check_linearizable(h, 8).linearizable);
}

TEST(Checker, InsertEraseRaceResolvable) {
  // insert(5) || erase(5)=true: erase must linearize after insert; fine.
  std::vector<Event> h{
      ev(OpKind::kInsert, 5, true, 0, 10),
      ev(OpKind::kErase, 5, true, 2, 8),
      ev(OpKind::kContains, 5, false, 12, 13),
  };
  EXPECT_TRUE(check_linearizable(h, 8).linearizable);
}

TEST(Checker, ChunkingSplitsAtQuiescence) {
  std::vector<Event> h{
      ev(OpKind::kInsert, 1, true, 0, 3),
      ev(OpKind::kInsert, 2, true, 1, 2),  // overlaps the first
      ev(OpKind::kErase, 1, true, 5, 6),   // quiescent gap before this
  };
  const auto res = check_linearizable(h, 8);
  EXPECT_TRUE(res.linearizable);
  EXPECT_EQ(res.chunks, 2u);
  EXPECT_EQ(res.largest_chunk, 2u);
}

TEST(Checker, RecorderMergesThreadLogs) {
  HistoryRecorder rec(2);
  const auto t0 = rec.begin();
  rec.end(0, OpKind::kInsert, 1, true, t0);
  const auto t1 = rec.begin();
  rec.end(1, OpKind::kContains, 1, true, t1);
  const auto h = rec.finish();
  ASSERT_EQ(h.size(), 2u);
  EXPECT_TRUE(check_linearizable(h, 4).linearizable);
}

// ---- live histories from the real structures ------------------------------

template <typename Set>
void record_and_check(std::uint64_t seed) {
  constexpr int kThreads = 3;
  constexpr int kOpsPerThread = 400;
  constexpr int kBurst = 16;  // barrier every kBurst ops: guarantees a
                              // quiescent cut, so every concurrent window
                              // fits the checker's 64-op solver even under
                              // heavy instrumentation (e.g. TSan builds)
  constexpr std::uint32_t kKeySpace = 6;  // tiny: maximizes real conflicts

  Set set;
  HistoryRecorder rec(kThreads);
  std::barrier start(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      lf::Xoshiro256 rng(seed + static_cast<std::uint64_t>(t) * 977);
      start.arrive_and_wait();
      for (int i = 0; i < kOpsPerThread; ++i) {
        if (i % kBurst == 0) start.arrive_and_wait();  // burst boundary
        const auto k = static_cast<std::uint32_t>(rng.below(kKeySpace));
        const auto kind = static_cast<OpKind>(rng.below(3));
        const auto t0 = rec.begin();
        bool result = false;
        switch (kind) {
          case OpKind::kInsert:
            result = set.insert(static_cast<long>(k), k);
            break;
          case OpKind::kErase:
            result = set.erase(static_cast<long>(k));
            break;
          case OpKind::kContains:
            result = set.contains(static_cast<long>(k));
            break;
        }
        rec.end(t, kind, k, result, t0);
      }
    });
  }
  for (auto& w : workers) w.join();

  const auto res = check_linearizable(rec.finish(), kKeySpace);
  EXPECT_TRUE(res.linearizable)
      << "non-linearizable history! seed=" << seed
      << " events=" << res.events << " chunk=" << res.largest_chunk;
  EXPECT_EQ(res.skipped_chunks, 0u) << "window too wide to fully check";
  EXPECT_EQ(res.events,
            static_cast<std::size_t>(kThreads) * kOpsPerThread);
}

TEST(LiveLinearizability, FRList) {
  for (std::uint64_t seed : {1u, 99u, 12345u})
    record_and_check<lf::FRList<long, long>>(seed);
}

TEST(LiveLinearizability, FRSkipList) {
  for (std::uint64_t seed : {2u, 88u, 54321u})
    record_and_check<lf::FRSkipList<long, long>>(seed);
}

TEST(LiveLinearizability, FRListNoFlag) {
  for (std::uint64_t seed : {3u, 77u, 31415u})
    record_and_check<lf::FRListNoFlag<long, long>>(seed);
}

}  // namespace
