// Sequential functional tests for FRList (paper Section 3 semantics).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "lf/core/fr_list.h"
#include "lf/reclaim/leaky.h"
#include "lf/util/random.h"

namespace {

using IntList = lf::FRList<long, long>;

TEST(FRListBasic, EmptyList) {
  IntList list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.size(), 0u);
  EXPECT_FALSE(list.contains(1));
  EXPECT_FALSE(list.find(1).has_value());
  EXPECT_FALSE(list.erase(1));
  EXPECT_TRUE(list.validate().ok);
}

TEST(FRListBasic, InsertFindErase) {
  IntList list;
  EXPECT_TRUE(list.insert(10, 100));
  EXPECT_TRUE(list.contains(10));
  ASSERT_TRUE(list.find(10).has_value());
  EXPECT_EQ(*list.find(10), 100);
  EXPECT_EQ(list.size(), 1u);
  EXPECT_TRUE(list.erase(10));
  EXPECT_FALSE(list.contains(10));
  EXPECT_TRUE(list.empty());
  EXPECT_TRUE(list.validate().ok);
}

TEST(FRListBasic, DuplicateInsertRejected) {
  IntList list;
  EXPECT_TRUE(list.insert(5, 1));
  EXPECT_FALSE(list.insert(5, 2));
  EXPECT_EQ(*list.find(5), 1);  // original value kept
}

TEST(FRListBasic, EraseAbsentKey) {
  IntList list;
  list.insert(1, 1);
  EXPECT_FALSE(list.erase(2));
  EXPECT_FALSE(list.erase(0));
  EXPECT_TRUE(list.contains(1));
}

TEST(FRListBasic, ReinsertAfterErase) {
  IntList list;
  EXPECT_TRUE(list.insert(7, 70));
  EXPECT_TRUE(list.erase(7));
  EXPECT_TRUE(list.insert(7, 71));
  EXPECT_EQ(*list.find(7), 71);
}

TEST(FRListBasic, KeysComeOutSorted) {
  IntList list;
  for (long k : {5L, 1L, 9L, 3L, 7L, 2L, 8L, 4L, 6L}) list.insert(k, k);
  const auto keys = list.keys();
  ASSERT_EQ(keys.size(), 9u);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_EQ(keys.front(), 1);
  EXPECT_EQ(keys.back(), 9);
}

TEST(FRListBasic, BoundaryKeys) {
  IntList list;
  EXPECT_TRUE(list.insert(std::numeric_limits<long>::min(), 1));
  EXPECT_TRUE(list.insert(std::numeric_limits<long>::max(), 2));
  EXPECT_TRUE(list.insert(0, 3));
  EXPECT_TRUE(list.contains(std::numeric_limits<long>::min()));
  EXPECT_TRUE(list.contains(std::numeric_limits<long>::max()));
  EXPECT_TRUE(list.erase(std::numeric_limits<long>::min()));
  EXPECT_TRUE(list.erase(std::numeric_limits<long>::max()));
  EXPECT_EQ(list.size(), 1u);
  EXPECT_TRUE(list.validate().ok);
}

TEST(FRListBasic, CustomComparatorDescending) {
  lf::FRList<int, int, std::greater<int>> list;
  for (int k : {1, 5, 3}) list.insert(k, k);
  const auto keys = list.keys();
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end(), std::greater<int>{}));
  EXPECT_TRUE(list.contains(5));
  EXPECT_TRUE(list.erase(3));
  EXPECT_FALSE(list.contains(3));
}

TEST(FRListBasic, StringKeysAndValues) {
  lf::FRList<std::string, std::string> list;
  EXPECT_TRUE(list.insert("banana", "yellow"));
  EXPECT_TRUE(list.insert("apple", "red"));
  EXPECT_TRUE(list.insert("cherry", "dark"));
  EXPECT_EQ(*list.find("apple"), "red");
  EXPECT_EQ(list.keys(), (std::vector<std::string>{"apple", "banana",
                                                   "cherry"}));
  EXPECT_TRUE(list.erase("banana"));
  EXPECT_FALSE(list.contains("banana"));
  EXPECT_TRUE(list.validate().ok);
}

TEST(FRListBasic, ForEachVisitsAllPairs) {
  IntList list;
  for (long k = 0; k < 20; ++k) list.insert(k, k * 10);
  std::map<long, long> seen;
  list.for_each([&](long k, long v) { seen[k] = v; });
  EXPECT_EQ(seen.size(), 20u);
  for (const auto& [k, v] : seen) EXPECT_EQ(v, k * 10);
}

TEST(FRListBasic, LeakyReclaimerVariant) {
  lf::FRList<long, long, std::less<long>, lf::reclaim::LeakyReclaimer> list;
  for (long k = 0; k < 50; ++k) EXPECT_TRUE(list.insert(k, k));
  for (long k = 0; k < 50; k += 2) EXPECT_TRUE(list.erase(k));
  EXPECT_EQ(list.size(), 25u);
  EXPECT_TRUE(list.validate().ok);
}

TEST(FRListBasic, DifferentialAgainstStdMap) {
  IntList list;
  std::map<long, long> model;
  lf::Xoshiro256 rng(2024);
  for (int i = 0; i < 20000; ++i) {
    const long k = static_cast<long>(rng.below(200));
    switch (rng.below(3)) {
      case 0: {
        const bool a = list.insert(k, k * 3);
        const bool b = model.emplace(k, k * 3).second;
        ASSERT_EQ(a, b) << "insert " << k << " at op " << i;
        break;
      }
      case 1: {
        const bool a = list.erase(k);
        const bool b = model.erase(k) > 0;
        ASSERT_EQ(a, b) << "erase " << k << " at op " << i;
        break;
      }
      default: {
        const auto a = list.find(k);
        const auto b = model.find(k);
        ASSERT_EQ(a.has_value(), b != model.end()) << "find " << k;
        if (a.has_value()) { ASSERT_EQ(*a, b->second); }
      }
    }
  }
  EXPECT_EQ(list.size(), model.size());
  const auto keys = list.keys();
  std::vector<long> expect;
  for (const auto& [k, v] : model) expect.push_back(k);
  EXPECT_EQ(keys, expect);
  EXPECT_TRUE(list.validate().ok);
}

TEST(FRListBasic, TwoPhaseInsertHooks) {
  lf::FRList<long, long, std::less<long>, lf::reclaim::LeakyReclaimer> list;
  list.insert(1, 1);
  list.insert(3, 3);

  decltype(list)::InsertCursor cur;
  ASSERT_TRUE(list.insert_locate(2, 20, cur));
  EXPECT_NE(cur.node, nullptr);
  EXPECT_TRUE(list.insert_complete(cur));
  EXPECT_TRUE(list.contains(2));
  EXPECT_EQ(cur.node, nullptr);

  // Duplicate detected at locate time: no allocation.
  decltype(list)::InsertCursor dup;
  EXPECT_FALSE(list.insert_locate(2, 99, dup));
  EXPECT_EQ(dup.node, nullptr);
}

TEST(FRListBasic, InsertTryOnceSucceedsWithoutInterference) {
  lf::FRList<long, long, std::less<long>, lf::reclaim::LeakyReclaimer> list;
  list.insert(10, 10);
  decltype(list)::InsertCursor cur;
  ASSERT_TRUE(list.insert_locate(20, 200, cur));
  EXPECT_EQ(list.insert_try_once(cur), decltype(list)::TryResult::kInserted);
  EXPECT_TRUE(list.contains(20));
}

TEST(FRListBasic, SizeCountsOnlyCurrentKeys) {
  IntList list;
  for (long k = 0; k < 100; ++k) list.insert(k, k);
  EXPECT_EQ(list.size(), 100u);
  for (long k = 0; k < 100; k += 3) list.erase(k);
  EXPECT_EQ(list.size(), 100u - 34u);
}

TEST(FRListBasic, ManySequentialOpsKeepInvariants) {
  IntList list;
  lf::Xoshiro256 rng(7);
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 500; ++i)
      list.insert(static_cast<long>(rng.below(1000)), 0);
    for (int i = 0; i < 500; ++i)
      list.erase(static_cast<long>(rng.below(1000)));
    const auto rep = list.validate();
    ASSERT_TRUE(rep.ok) << rep.error;
  }
}

}  // namespace
