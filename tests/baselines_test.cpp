// Baseline-specific tests: the behaviours that differentiate the baselines
// (restart counting, hazard-pointer reclamation, wait-free contains, the
// allocation registry) beyond the shared battery in set_typed_test.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <thread>
#include <vector>

#include "lf/baselines/coarse_list.h"
#include "lf/baselines/harris_list.h"
#include "lf/baselines/lazy_list.h"
#include "lf/baselines/michael_list.h"
#include "lf/baselines/restart_skiplist.h"
#include "lf/baselines/rwlock_skiplist.h"
#include "lf/core/fr_list_noflag.h"
#include "lf/instrument/counters.h"
#include "lf/reclaim/hazard.h"
#include "lf/reclaim/leaky.h"
#include "lf/util/random.h"

namespace {

constexpr int kThreads = 4;

template <typename Set>
void churn(Set& set, int per_thread_ops, std::uint64_t key_space) {
  std::barrier start(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      lf::Xoshiro256 rng(10 + t);
      start.arrive_and_wait();
      for (int i = 0; i < per_thread_ops; ++i) {
        const long k = static_cast<long>(rng.below(key_space));
        switch (rng.below(3)) {
          case 0: set.insert(k, k); break;
          case 1: set.erase(k); break;
          default: set.contains(k);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
}

// ---- Harris ----------------------------------------------------------

TEST(HarrisList, RestartOnInterferenceIsCounted) {
  lf::HarrisList<long, long, std::less<long>, lf::reclaim::LeakyReclaimer>
      list;
  for (long k = 1; k <= 5; ++k) list.insert(k, k);
  decltype(list)::InsertCursor cur;
  ASSERT_TRUE(list.insert_locate(6, 6, cur));
  ASSERT_TRUE(list.erase(5));  // mark the located predecessor's target
  const auto before = lf::stats::aggregate();
  EXPECT_EQ(list.insert_try_once(cur), decltype(list)::TryResult::kRetry);
  const auto delta = lf::stats::aggregate() - before;
  EXPECT_GE(delta.restart, 1u);
  // Harris's recovery re-walks the list from the head: the traversal cost
  // covers all preceding nodes, unlike FRList's local backlink recovery.
  EXPECT_GE(delta.curr_update, 4u);
  EXPECT_EQ(list.insert_try_once(cur),
            decltype(list)::TryResult::kInserted);
  EXPECT_TRUE(list.contains(6));
}

TEST(HarrisList, SearchUnlinksMarkedChains) {
  lf::HarrisList<long, long> list;
  for (long k = 0; k < 20; ++k) list.insert(k, k);
  for (long k = 5; k < 15; ++k) list.erase(k);
  EXPECT_EQ(list.size(), 10u);
  for (long k = 5; k < 15; ++k) EXPECT_FALSE(list.contains(k));
  for (long k = 0; k < 5; ++k) EXPECT_TRUE(list.contains(k));
}

TEST(HarrisList, ConcurrentChurnStaysConsistent) {
  lf::HarrisList<long, long> list;
  churn(list, 15000, 128);
  // After quiescence each key is either present or absent, consistently.
  for (long k = 0; k < 128; ++k) {
    const bool c = list.contains(k);
    EXPECT_EQ(c, list.find(k).has_value());
  }
  EXPECT_LE(list.size(), 128u);
}

// ---- Michael ----------------------------------------------------------

TEST(MichaelList, ConcurrentChurnStaysConsistent) {
  lf::MichaelList<long, long> list;
  churn(list, 15000, 128);
  for (long k = 0; k < 128; ++k)
    EXPECT_EQ(list.contains(k), list.find(k).has_value());
  EXPECT_LE(list.size(), 128u);
}

TEST(MichaelListHP, BasicSemantics) {
  lf::reclaim::HazardDomain domain;
  lf::MichaelListHP<long, long> list(domain);
  EXPECT_TRUE(list.insert(1, 10));
  EXPECT_TRUE(list.insert(2, 20));
  EXPECT_FALSE(list.insert(1, 11));
  EXPECT_EQ(*list.find(2), 20);
  EXPECT_TRUE(list.erase(1));
  EXPECT_FALSE(list.erase(1));
  EXPECT_FALSE(list.contains(1));
  EXPECT_EQ(list.size(), 1u);
}

TEST(MichaelListHP, NodesAreReclaimedThroughHazardDomain) {
  lf::reclaim::HazardDomain domain;
  {
    lf::MichaelListHP<long, long> list(domain);
    const auto before = lf::stats::aggregate();
    for (int round = 0; round < 200; ++round) {
      for (long k = 0; k < 30; ++k) list.insert(k, k);
      for (long k = 0; k < 30; ++k) list.erase(k);
    }
    domain.scan();
    const auto delta = lf::stats::aggregate() - before;
    EXPECT_EQ(delta.node_retired, 200u * 30u);
    EXPECT_GT(delta.node_freed, 0u);
    EXPECT_EQ(domain.retired_count(), 0u);
  }
}

TEST(MichaelListHP, ConcurrentChurnStaysConsistent) {
  lf::reclaim::HazardDomain domain;
  lf::MichaelListHP<long, long> list(domain);
  churn(list, 10000, 64);
  for (long k = 0; k < 64; ++k)
    EXPECT_EQ(list.contains(k), list.find(k).has_value());
}

// ---- FRListNoFlag (ablation) -------------------------------------------

TEST(FRListNoFlag, SequentialSemantics) {
  lf::FRListNoFlag<long, long> list;
  for (long k = 0; k < 100; ++k) EXPECT_TRUE(list.insert(k, k * 2));
  EXPECT_FALSE(list.insert(50, 0));
  for (long k = 0; k < 100; k += 2) EXPECT_TRUE(list.erase(k));
  EXPECT_EQ(list.size(), 50u);
  for (long k = 1; k < 100; k += 2) EXPECT_EQ(*list.find(k), k * 2);
}

TEST(FRListNoFlag, ConcurrentChurnStaysConsistent) {
  lf::FRListNoFlag<long, long> list;
  churn(list, 15000, 128);
  for (long k = 0; k < 128; ++k)
    EXPECT_EQ(list.contains(k), list.find(k).has_value());
}

TEST(FRListNoFlag, BacklinksStillEnableRecovery) {
  // Sequentially: erase a node, then verify inserts around it still work
  // (the recovery path is exercised under concurrency; here we check the
  // structure stays coherent).
  lf::FRListNoFlag<long, long> list;
  for (long k = 0; k < 10; ++k) list.insert(k, k);
  for (long k = 3; k < 7; ++k) list.erase(k);
  EXPECT_TRUE(list.insert(5, 55));
  EXPECT_EQ(*list.find(5), 55);
  EXPECT_EQ(list.size(), 7u);
}

// ---- Lazy list ---------------------------------------------------------

TEST(LazyList, WaitFreeContainsDuringWriterStall) {
  // contains() must not block even while a writer holds node locks: since
  // we cannot suspend a thread mid-operation portably, approximate by
  // checking contains() never takes locks (it compiles against const nodes
  // and completes during heavy write churn).
  lf::LazyList<long, long> list;
  for (long k = 0; k < 64; ++k) list.insert(k, k);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    lf::Xoshiro256 rng(5);
    while (!stop.load()) {
      const long k = static_cast<long>(rng.below(64));
      list.erase(k);
      list.insert(k, k);
    }
  });
  for (int i = 0; i < 30000; ++i) {
    const long k = i % 64;
    list.contains(k);  // must always return (liveness)
  }
  stop.store(true);
  writer.join();
  SUCCEED();
}

TEST(LazyList, ConcurrentChurnStaysConsistent) {
  lf::LazyList<long, long> list;
  churn(list, 10000, 128);
  for (long k = 0; k < 128; ++k)
    EXPECT_EQ(list.contains(k), list.find(k).has_value());
}

// ---- Coarse list ---------------------------------------------------------

TEST(CoarseList, ConcurrentChurnStaysConsistent) {
  lf::CoarseList<long, long> list;
  churn(list, 10000, 128);
  for (long k = 0; k < 128; ++k)
    EXPECT_EQ(list.contains(k), list.find(k).has_value());
}

// ---- Restart skip list ----------------------------------------------------

TEST(RestartSkipList, SequentialSemantics) {
  lf::RestartSkipList<long, long> s;
  for (long k = 0; k < 500; ++k) EXPECT_TRUE(s.insert(k, k * 3));
  EXPECT_FALSE(s.insert(100, 0));
  for (long k = 0; k < 500; ++k) EXPECT_EQ(*s.find(k), k * 3);
  for (long k = 0; k < 500; k += 2) EXPECT_TRUE(s.erase(k));
  EXPECT_FALSE(s.erase(0));
  EXPECT_EQ(s.size(), 250u);
  for (long k = 1; k < 500; k += 2) EXPECT_TRUE(s.contains(k));
  for (long k = 0; k < 500; k += 2) EXPECT_FALSE(s.contains(k));
}

TEST(RestartSkipList, ConcurrentChurnStaysConsistent) {
  lf::RestartSkipList<long, long> s;
  churn(s, 15000, 128);
  for (long k = 0; k < 128; ++k)
    EXPECT_EQ(s.contains(k), s.find(k).has_value());
  EXPECT_LE(s.size(), 128u);
}

TEST(RestartSkipList, ExactlyOneWinnerPerContestedKey) {
  lf::RestartSkipList<long, long> s;
  constexpr long kKeys = 100;
  std::atomic<long> wins{0};
  std::barrier start(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      start.arrive_and_wait();
      long local = 0;
      for (long k = 0; k < kKeys; ++k)
        if (s.insert(k, k)) ++local;
      wins.fetch_add(local);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(wins.load(), kKeys);
  EXPECT_EQ(s.size(), static_cast<std::size_t>(kKeys));
}

// ---- RW-locked skip list ---------------------------------------------------

TEST(RWLockSkipList, SequentialSemantics) {
  lf::RWLockSkipList<long, long> s;
  for (long k = 0; k < 500; ++k) EXPECT_TRUE(s.insert(k, k));
  EXPECT_FALSE(s.insert(0, 0));
  for (long k = 0; k < 500; k += 5) EXPECT_TRUE(s.erase(k));
  EXPECT_EQ(s.size(), 400u);
  EXPECT_FALSE(s.contains(5));
  EXPECT_TRUE(s.contains(6));
}

TEST(RWLockSkipList, ConcurrentChurnStaysConsistent) {
  lf::RWLockSkipList<long, long> s;
  churn(s, 8000, 128);
  for (long k = 0; k < 128; ++k)
    EXPECT_EQ(s.contains(k), s.find(k).has_value());
}

}  // namespace
