// Tests for the extension structures built on the paper's containers:
// the skip-list priority queue (the use case of the paper's reference
// [14]) and the hash map with FRList buckets (reference [8]'s design).
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <set>
#include <thread>
#include <unordered_map>
#include <vector>

#include "lf/extras/hash_map.h"
#include "lf/extras/priority_queue.h"
#include "lf/util/random.h"

namespace {

// ---- priority queue -------------------------------------------------------

TEST(PriorityQueue, PopsInPriorityOrder) {
  lf::extras::FRPriorityQueue<int, std::string> pq;
  EXPECT_TRUE(pq.push(30, "c"));
  EXPECT_TRUE(pq.push(10, "a"));
  EXPECT_TRUE(pq.push(20, "b"));
  auto a = pq.pop_min();
  auto b = pq.pop_min();
  auto c = pq.pop_min();
  ASSERT_TRUE(a && b && c);
  EXPECT_EQ(a->first, 10);
  EXPECT_EQ(a->second, "a");
  EXPECT_EQ(b->first, 20);
  EXPECT_EQ(c->first, 30);
  EXPECT_FALSE(pq.pop_min().has_value());
  EXPECT_TRUE(pq.empty());
}

TEST(PriorityQueue, DuplicatePriorityRejected) {
  lf::extras::FRPriorityQueue<int, int> pq;
  EXPECT_TRUE(pq.push(5, 1));
  EXPECT_FALSE(pq.push(5, 2));
  EXPECT_EQ(pq.size(), 1u);
  EXPECT_EQ(pq.pop_min()->second, 1);
}

TEST(PriorityQueue, PeekDoesNotRemove) {
  lf::extras::FRPriorityQueue<int, int> pq;
  pq.push(7, 70);
  EXPECT_EQ(pq.peek_min()->first, 7);
  EXPECT_EQ(pq.size(), 1u);
  EXPECT_EQ(pq.pop_min()->first, 7);
}

TEST(PriorityQueue, EmptyBehaviour) {
  lf::extras::FRPriorityQueue<long, long> pq;
  EXPECT_TRUE(pq.empty());
  EXPECT_FALSE(pq.peek_min().has_value());
  EXPECT_FALSE(pq.pop_min().has_value());
  EXPECT_EQ(pq.size(), 0u);
}

TEST(PriorityQueue, InterleavedPushPop) {
  lf::extras::FRPriorityQueue<int, int> pq;
  pq.push(5, 5);
  pq.push(1, 1);
  EXPECT_EQ(pq.pop_min()->first, 1);
  pq.push(3, 3);
  EXPECT_EQ(pq.pop_min()->first, 3);
  EXPECT_EQ(pq.pop_min()->first, 5);
  EXPECT_TRUE(pq.empty());
}

TEST(PriorityQueue, EveryEntryPoppedExactlyOnce) {
  // The core concurrent guarantee: N producers push disjoint priorities,
  // M consumers pop concurrently; each entry is delivered to exactly one
  // consumer, none lost, none duplicated.
  lf::extras::FRPriorityQueue<long, long> pq;
  constexpr int kProducers = 2, kConsumers = 3;
  constexpr long kPerProducer = 2000;
  constexpr long kTotal = kProducers * kPerProducer;

  std::atomic<long> produced{0};
  std::atomic<bool> done_producing{false};
  std::vector<std::vector<long>> received(kConsumers);

  std::barrier start(kProducers + kConsumers);
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      start.arrive_and_wait();
      for (long i = 0; i < kPerProducer; ++i) {
        const long key = p * kPerProducer + i;
        ASSERT_TRUE(pq.push(key, key * 2));
        produced.fetch_add(1);
      }
      if (produced.load() == kTotal) done_producing.store(true);
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&, c] {
      start.arrive_and_wait();
      for (;;) {
        auto item = pq.pop_min();
        if (item.has_value()) {
          ASSERT_EQ(item->second, item->first * 2);
          received[c].push_back(item->first);
        } else if (done_producing.load() && !pq.peek_min().has_value()) {
          break;
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  std::set<long> all;
  std::size_t total = 0;
  for (const auto& r : received) {
    total += r.size();
    all.insert(r.begin(), r.end());
  }
  EXPECT_EQ(total, static_cast<std::size_t>(kTotal));  // none lost/dup'ed
  EXPECT_EQ(all.size(), static_cast<std::size_t>(kTotal));
  EXPECT_TRUE(pq.empty());
}

TEST(PriorityQueue, SingleConsumerSeesSortedStream) {
  lf::extras::FRPriorityQueue<long, long> pq;
  lf::Xoshiro256 rng(3);
  std::set<long> keys;
  while (keys.size() < 500) {
    const long k = static_cast<long>(rng.below(1 << 20));
    if (pq.push(k, k)) keys.insert(k);
  }
  long prev = -1;
  while (auto item = pq.pop_min()) {
    EXPECT_GT(item->first, prev);
    prev = item->first;
  }
  EXPECT_TRUE(pq.empty());
}

// ---- hash map --------------------------------------------------------------

TEST(HashMap, BasicSemantics) {
  lf::extras::FRHashMap<long, long> map(64);
  EXPECT_TRUE(map.insert(1, 10));
  EXPECT_TRUE(map.insert(65, 650));  // likely same bucket as 1 pre-mix
  EXPECT_FALSE(map.insert(1, 11));
  EXPECT_EQ(*map.find(1), 10);
  EXPECT_EQ(*map.find(65), 650);
  EXPECT_TRUE(map.erase(1));
  EXPECT_FALSE(map.erase(1));
  EXPECT_FALSE(map.contains(1));
  EXPECT_TRUE(map.contains(65));
  EXPECT_EQ(map.size(), 1u);
}

TEST(HashMap, BucketCountRoundsToPowerOfTwo) {
  lf::extras::FRHashMap<int, int> map(100);
  EXPECT_EQ(map.bucket_count(), 128u);
  lf::extras::FRHashMap<int, int> one(1);
  EXPECT_EQ(one.bucket_count(), 1u);
  one.insert(5, 5);
  EXPECT_TRUE(one.contains(5));
}

TEST(HashMap, StringKeys) {
  lf::extras::FRHashMap<std::string, int> map(16);
  EXPECT_TRUE(map.insert("alpha", 1));
  EXPECT_TRUE(map.insert("beta", 2));
  EXPECT_EQ(*map.find("beta"), 2);
  EXPECT_FALSE(map.find("gamma").has_value());
  EXPECT_TRUE(map.erase("alpha"));
  EXPECT_EQ(map.size(), 1u);
}

TEST(HashMap, DifferentialAgainstUnorderedMap) {
  lf::extras::FRHashMap<long, long> map(32);  // few buckets: long chains
  std::unordered_map<long, long> model;
  lf::Xoshiro256 rng(17);
  for (int i = 0; i < 20000; ++i) {
    const long k = static_cast<long>(rng.below(500));
    switch (rng.below(3)) {
      case 0:
        ASSERT_EQ(map.insert(k, k * 9), model.emplace(k, k * 9).second) << i;
        break;
      case 1:
        ASSERT_EQ(map.erase(k), model.erase(k) > 0) << i;
        break;
      default: {
        const auto a = map.find(k);
        ASSERT_EQ(a.has_value(), model.contains(k)) << i;
        if (a.has_value()) { ASSERT_EQ(*a, model.at(k)); }
      }
    }
  }
  EXPECT_EQ(map.size(), model.size());
  std::size_t visited = 0;
  map.for_each([&](long k, long v) {
    ++visited;
    EXPECT_EQ(model.at(k), v);
  });
  EXPECT_EQ(visited, model.size());
}

TEST(HashMap, ConcurrentDisjointWriters) {
  lf::extras::FRHashMap<long, long> map(256);
  constexpr int kThreads = 4;
  constexpr long kPerThread = 1000;
  std::barrier start(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      start.arrive_and_wait();
      for (long i = 0; i < kPerThread; ++i)
        ASSERT_TRUE(map.insert(t * kPerThread + i, i));
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(map.size(), static_cast<std::size_t>(kThreads * kPerThread));
  for (long k = 0; k < kThreads * kPerThread; ++k)
    ASSERT_TRUE(map.contains(k)) << k;
}

TEST(HashMap, ConcurrentChurnConsistency) {
  lf::extras::FRHashMap<long, long> map(64);
  constexpr int kThreads = 4;
  std::barrier start(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      lf::Xoshiro256 rng(60 + t);
      start.arrive_and_wait();
      for (int i = 0; i < 15000; ++i) {
        const long k = static_cast<long>(rng.below(300));
        switch (rng.below(3)) {
          case 0: map.insert(k, k); break;
          case 1: map.erase(k); break;
          default: map.contains(k);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  for (long k = 0; k < 300; ++k)
    EXPECT_EQ(map.contains(k), map.find(k).has_value());
  EXPECT_LE(map.size(), 300u);
}

TEST(HashMap, ExactlyOneWinnerPerContestedKey) {
  lf::extras::FRHashMap<long, long> map(16);
  constexpr int kThreads = 4;
  constexpr long kKeys = 200;
  std::atomic<long> wins{0};
  std::barrier start(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      start.arrive_and_wait();
      long local = 0;
      for (long k = 0; k < kKeys; ++k)
        if (map.insert(k, k)) ++local;
      wins.fetch_add(local);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(wins.load(), kKeys);
  EXPECT_EQ(map.size(), static_cast<std::size_t>(kKeys));
}

}  // namespace
