// Unit tests for the utility substrate: PRNGs, histogram, alignment, timer.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "lf/sync/backoff.h"
#include "lf/util/align.h"
#include "lf/util/histogram.h"
#include "lf/util/random.h"
#include "lf/util/timer.h"

namespace {

TEST(Splitmix64, DeterministicAndDistinct) {
  std::uint64_t s1 = 42, s2 = 42;
  EXPECT_EQ(lf::splitmix64(s1), lf::splitmix64(s2));
  std::uint64_t s3 = 42;
  const auto a = lf::splitmix64(s3);
  const auto b = lf::splitmix64(s3);
  EXPECT_NE(a, b);  // state advances
}

TEST(Xoshiro256, DeterministicForSeed) {
  lf::Xoshiro256 a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
  bool any_diff = false;
  lf::Xoshiro256 a2(123);
  for (int i = 0; i < 100; ++i) any_diff |= (a2() != c());
  EXPECT_TRUE(any_diff);
}

TEST(Xoshiro256, BelowStaysInRange) {
  lf::Xoshiro256 rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Xoshiro256, BelowCoversRange) {
  lf::Xoshiro256 rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);  // all residues hit
}

TEST(Xoshiro256, UniformInUnitInterval) {
  lf::Xoshiro256 rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Xoshiro256, TowerHeightIsGeometricHalf) {
  lf::Xoshiro256 rng(13);
  constexpr int kMax = 20;
  constexpr int kDraws = 200000;
  std::vector<int> counts(kMax + 1, 0);
  for (int i = 0; i < kDraws; ++i) {
    const int h = rng.tower_height(kMax);
    ASSERT_GE(h, 1);
    ASSERT_LE(h, kMax);
    ++counts[h];
  }
  // P(h = k) = 2^-k for k < kMax; check the first few within 5% relative.
  for (int k = 1; k <= 6; ++k) {
    const double expected = kDraws * std::pow(0.5, k);
    EXPECT_NEAR(counts[k], expected, expected * 0.05) << "height " << k;
  }
}

TEST(Xoshiro256, TowerHeightRespectsCap) {
  lf::Xoshiro256 rng(17);
  for (int i = 0; i < 10000; ++i) EXPECT_EQ(rng.tower_height(1), 1);
  for (int i = 0; i < 10000; ++i) EXPECT_LE(rng.tower_height(3), 3);
}

TEST(Zipf, InRangeAndSkewed) {
  lf::ZipfGenerator zipf(1000, 0.99, 5);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 100000; ++i) {
    const auto k = zipf();
    ASSERT_LT(k, 1000u);
    ++counts[k];
  }
  // Rank-0 must dominate: more draws than the entire tail half combined /4.
  int tail = 0;
  for (int i = 500; i < 1000; ++i) tail += counts[i];
  EXPECT_GT(counts[0], tail / 4);
  EXPECT_GT(counts[0], counts[100]);
}

TEST(Histogram, ExactSmallValues) {
  lf::Histogram h;
  for (std::uint64_t v : {0ULL, 1ULL, 1ULL, 2ULL, 63ULL}) h.record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.max(), 63u);
  EXPECT_DOUBLE_EQ(h.mean(), (0.0 + 1 + 1 + 2 + 63) / 5);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(63), 1u);
}

TEST(Histogram, QuantilesOrdered) {
  lf::Histogram h;
  for (std::uint64_t v = 0; v < 100; ++v) h.record(v);
  EXPECT_LE(h.quantile(0.5), h.quantile(0.9));
  EXPECT_LE(h.quantile(0.9), h.quantile(0.99));
  EXPECT_EQ(h.quantile(0.0), 0u);
  // Median of 0..99 should land near 50 (exact buckets below 64).
  EXPECT_NEAR(static_cast<double>(h.quantile(0.5)), 50.0, 2.0);
}

TEST(Histogram, PowerBucketsForLargeValues) {
  lf::Histogram h;
  h.record(64);
  h.record(100);
  h.record(1 << 20);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.max(), static_cast<std::uint64_t>(1 << 20));
  EXPECT_EQ(h.count_at_least(64), 3u);
  EXPECT_EQ(h.count_at_least(128), 1u);
  // 64 and 100 share the [64,127] bucket.
  EXPECT_EQ(h.bucket_count(lf::Histogram::bucket_of(64)), 2u);
}

TEST(Histogram, MergeAddsCounts) {
  lf::Histogram a, b;
  a.record(5);
  a.record(7);
  b.record(7);
  b.record(1000);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.max(), 1000u);
  EXPECT_EQ(a.bucket_count(7), 2u);
}

TEST(Histogram, CountAtLeast) {
  lf::Histogram h;
  for (std::uint64_t v = 0; v < 10; ++v) h.record(v);
  EXPECT_EQ(h.count_at_least(0), 10u);
  EXPECT_EQ(h.count_at_least(5), 5u);
  EXPECT_EQ(h.count_at_least(10), 0u);
}

TEST(CacheAligned, NoFalseSharing) {
  static_assert(sizeof(lf::CacheAligned<int>) >= lf::kCacheLineSize);
  static_assert(alignof(lf::CacheAligned<int>) == lf::kCacheLineSize);
  lf::CacheAligned<int> arr[2];
  const auto a = reinterpret_cast<std::uintptr_t>(&arr[0].value);
  const auto b = reinterpret_cast<std::uintptr_t>(&arr[1].value);
  EXPECT_GE(b - a, lf::kCacheLineSize);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  lf::Stopwatch sw;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  EXPECT_GT(sw.elapsed_nanos(), 0u);
  EXPECT_GE(sw.elapsed_seconds(), 0.0);
  const double t1 = sw.elapsed_seconds();
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  EXPECT_GE(sw.elapsed_seconds(), t1);
}

TEST(Backoff, WindowStaysWithinCapAndGrows) {
  lf::sync::Backoff b(64);
  EXPECT_EQ(b.spins(), 1u);
  std::uint32_t max_seen = 0;
  for (int i = 0; i < 300; ++i) {
    b.pause();
    EXPECT_GE(b.spins(), 1u);
    EXPECT_LE(b.spins(), 64u);
    max_seen = std::max(max_seen, b.spins());
  }
  // The jitter window must actually open up under sustained contention.
  EXPECT_GT(max_seen, 1u);
}

TEST(Backoff, ResetRestartsTheWindow) {
  lf::sync::Backoff b(256);
  for (int i = 0; i < 50; ++i) b.pause();
  b.reset();
  EXPECT_EQ(b.spins(), 1u);
}

TEST(Backoff, JitterDecorrelatesInstances) {
  // Two contenders must not walk identical delay sequences — that lockstep
  // (every loser recomputing the same next delay) is exactly the failure
  // mode decorrelated jitter exists to break.
  lf::sync::Backoff a(1024);
  lf::sync::Backoff b(1024);
  bool diverged = false;
  for (int i = 0; i < 200 && !diverged; ++i) {
    a.pause();
    b.pause();
    diverged = a.spins() != b.spins();
  }
  EXPECT_TRUE(diverged);
}

}  // namespace
