// Sequential functional tests for FRSkipList (paper Section 4).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lf/core/fr_skiplist.h"
#include "lf/util/random.h"

namespace {

using IntSkip = lf::FRSkipList<long, long>;

TEST(FRSkipListBasic, EmptyList) {
  IntSkip s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_FALSE(s.contains(1));
  EXPECT_FALSE(s.erase(1));
  EXPECT_TRUE(s.validate().ok);
}

TEST(FRSkipListBasic, InsertFindErase) {
  IntSkip s;
  EXPECT_TRUE(s.insert(42, 420));
  EXPECT_TRUE(s.contains(42));
  EXPECT_EQ(*s.find(42), 420);
  EXPECT_TRUE(s.erase(42));
  EXPECT_FALSE(s.contains(42));
  EXPECT_TRUE(s.validate().ok);
}

TEST(FRSkipListBasic, DuplicateInsertRejected) {
  IntSkip s;
  EXPECT_TRUE(s.insert(5, 1));
  EXPECT_FALSE(s.insert(5, 2));
  EXPECT_EQ(*s.find(5), 1);
}

TEST(FRSkipListBasic, ReinsertAfterErase) {
  IntSkip s;
  for (int round = 0; round < 50; ++round) {
    EXPECT_TRUE(s.insert(7, round));
    EXPECT_EQ(*s.find(7), round);
    EXPECT_TRUE(s.erase(7));
    EXPECT_FALSE(s.contains(7));
  }
  EXPECT_TRUE(s.validate().ok);
}

TEST(FRSkipListBasic, KeysComeOutSorted) {
  IntSkip s;
  lf::Xoshiro256 rng(3);
  std::set<long> model;
  for (int i = 0; i < 2000; ++i) {
    const long k = static_cast<long>(rng.below(10000));
    s.insert(k, k);
    model.insert(k);
  }
  const auto keys = s.keys();
  EXPECT_EQ(keys.size(), model.size());
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST(FRSkipListBasic, EraseCleansWholeTower) {
  IntSkip s;
  for (long k = 0; k < 500; ++k) s.insert(k, k);
  // Deleting every key must leave no superfluous nodes on ANY level (the
  // validate() traversal covers all levels).
  for (long k = 0; k < 500; ++k) ASSERT_TRUE(s.erase(k));
  EXPECT_TRUE(s.empty());
  const auto rep = s.validate();
  EXPECT_TRUE(rep.ok) << rep.error;
  EXPECT_EQ(rep.node_count, 0u);
}

TEST(FRSkipListBasic, VerticalTowerStructure) {
  IntSkip s;
  for (long k = 0; k < 1000; ++k) s.insert(k, k * 2);
  const auto rep = s.validate();  // checks down/tower_root/level coherence
  ASSERT_TRUE(rep.ok) << rep.error;
  // With 1000 geometric towers, some must be taller than one level.
  EXPECT_GT(rep.node_count, 1000u);
  EXPECT_LT(rep.node_count, 3000u);  // E[height] = 2 - 2^-H; ~2000 expected
}

TEST(FRSkipListBasic, CensusMatchesGeometricExpectation) {
  IntSkip s;
  constexpr long kN = 20000;
  for (long k = 0; k < kN; ++k) s.insert(k, k);
  const auto census = s.census();
  EXPECT_EQ(census.towers, static_cast<std::size_t>(kN));
  EXPECT_EQ(census.incomplete, 0u);  // no interruptions when sequential
  EXPECT_EQ(census.full, static_cast<std::size_t>(kN));
  // Height-1 towers ~ half of all.
  const double h1 = static_cast<double>(census.height_counts.at(1));
  EXPECT_NEAR(h1 / kN, 0.5, 0.03);
  const double h2 = static_cast<double>(census.height_counts.at(2));
  EXPECT_NEAR(h2 / kN, 0.25, 0.03);
}

TEST(FRSkipListBasic, TopHintTracksTallTowers) {
  IntSkip s;
  EXPECT_EQ(s.top_level_hint(), 1);
  for (long k = 0; k < 5000; ++k) s.insert(k, k);
  EXPECT_GT(s.top_level_hint(), 5);  // ~log2(5000) expected
  EXPECT_LE(s.top_level_hint(), IntSkip::kMaxTowerHeight);
}

TEST(FRSkipListBasic, SmallMaxLevelConfiguration) {
  // MaxLevel = 2: towers are all height 1; the structure degrades to a
  // linked list and must still be fully functional.
  lf::FRSkipList<long, long, std::less<long>, lf::reclaim::EpochReclaimer, 2>
      s;
  for (long k = 0; k < 200; ++k) ASSERT_TRUE(s.insert(k, k));
  for (long k = 0; k < 200; ++k) ASSERT_TRUE(s.contains(k));
  for (long k = 0; k < 200; k += 2) ASSERT_TRUE(s.erase(k));
  EXPECT_EQ(s.size(), 100u);
  EXPECT_TRUE(s.validate().ok);
}

TEST(FRSkipListBasic, StringKeys) {
  lf::FRSkipList<std::string, int> s;
  EXPECT_TRUE(s.insert("mango", 1));
  EXPECT_TRUE(s.insert("kiwi", 2));
  EXPECT_TRUE(s.insert("apple", 3));
  EXPECT_EQ(s.keys(),
            (std::vector<std::string>{"apple", "kiwi", "mango"}));
  EXPECT_TRUE(s.erase("kiwi"));
  EXPECT_FALSE(s.contains("kiwi"));
  EXPECT_TRUE(s.validate().ok);
}

TEST(FRSkipListBasic, DifferentialAgainstStdMap) {
  IntSkip s;
  std::map<long, long> model;
  lf::Xoshiro256 rng(99);
  for (int i = 0; i < 30000; ++i) {
    const long k = static_cast<long>(rng.below(300));
    switch (rng.below(3)) {
      case 0: {
        ASSERT_EQ(s.insert(k, k * 5), model.emplace(k, k * 5).second)
            << "insert " << k << " at op " << i;
        break;
      }
      case 1: {
        ASSERT_EQ(s.erase(k), model.erase(k) > 0)
            << "erase " << k << " at op " << i;
        break;
      }
      default: {
        const auto a = s.find(k);
        const auto b = model.find(k);
        ASSERT_EQ(a.has_value(), b != model.end());
        if (a.has_value()) { ASSERT_EQ(*a, b->second); }
      }
    }
  }
  EXPECT_EQ(s.size(), model.size());
  std::vector<long> expect;
  for (const auto& [k, v] : model) expect.push_back(k);
  EXPECT_EQ(s.keys(), expect);
  EXPECT_TRUE(s.validate().ok);
}

TEST(FRSkipListBasic, ForEachSeesCurrentEntries) {
  IntSkip s;
  for (long k = 0; k < 50; ++k) s.insert(k, -k);
  s.erase(10);
  s.erase(20);
  std::map<long, long> seen;
  s.for_each([&](long k, long v) { seen[k] = v; });
  EXPECT_EQ(seen.size(), 48u);
  EXPECT_FALSE(seen.contains(10));
  EXPECT_FALSE(seen.contains(20));
  EXPECT_EQ(seen.at(30), -30);
}

TEST(FRSkipListBasic, SearchCostIsLogarithmic) {
  // Step-counter sanity for the O(log n) claim: average search cost in a
  // 65536-key list must be far below linear (and in the vicinity of
  // 2*log2(n) level-advances plus descent).
  IntSkip s;
  constexpr long kN = 1 << 16;
  for (long k = 0; k < kN; ++k) s.insert(k, k);
  lf::Xoshiro256 rng(5);
  const auto before = lf::stats::aggregate();
  constexpr int kSearches = 2000;
  for (int i = 0; i < kSearches; ++i)
    s.contains(static_cast<long>(rng.below(kN)));
  const auto delta = lf::stats::aggregate() - before;
  const double steps =
      static_cast<double>(delta.essential_steps()) / kSearches;
  EXPECT_LT(steps, 150.0);  // log-ish; linear would be ~32768
  EXPECT_GT(steps, 4.0);
}

}  // namespace
