// Property-based sweeps (parameterized gtest): invariants that must hold
// for every seed, key-space size, operation count and thread count — not
// just the single scenario a unit test pins down.
#include <gtest/gtest.h>

#include <algorithm>
#include <barrier>
#include <map>
#include <set>
#include <thread>
#include <tuple>
#include <vector>

#include "lf/core/fr_list.h"
#include "lf/core/fr_list_noflag.h"
#include "lf/core/fr_list_rc.h"
#include "lf/core/fr_skiplist.h"
#include "lf/extras/hash_map.h"
#include "lf/util/random.h"

namespace {

// ---- Property 1: differential equivalence with std::map under any seed ---

using DiffParams = std::tuple<std::uint64_t /*seed*/, std::uint64_t /*keys*/,
                              int /*ops*/>;

class DifferentialProperty : public ::testing::TestWithParam<DiffParams> {};

template <typename Set>
void run_differential(std::uint64_t seed, std::uint64_t key_space, int ops) {
  Set s;
  std::map<long, long> model;
  lf::Xoshiro256 rng(seed);
  for (int i = 0; i < ops; ++i) {
    const long k = static_cast<long>(rng.below(key_space));
    switch (rng.below(4)) {
      case 0:
      case 1:  // insert-heavy to keep the structure populated
        ASSERT_EQ(s.insert(k, k ^ 0x5a5a), model.emplace(k, k ^ 0x5a5a).second)
            << "seed=" << seed << " op=" << i;
        break;
      case 2:
        ASSERT_EQ(s.erase(k), model.erase(k) > 0)
            << "seed=" << seed << " op=" << i;
        break;
      default:
        ASSERT_EQ(s.contains(k), model.contains(k))
            << "seed=" << seed << " op=" << i;
    }
  }
  ASSERT_EQ(s.size(), model.size());
  const auto keys = s.keys();
  ASSERT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  std::vector<long> expect;
  for (const auto& [k, v] : model) expect.push_back(k);
  ASSERT_EQ(keys, expect);
}

TEST_P(DifferentialProperty, FRListMatchesStdMap) {
  const auto [seed, keys, ops] = GetParam();
  run_differential<lf::FRList<long, long>>(seed, keys, ops);
}

TEST_P(DifferentialProperty, FRSkipListMatchesStdMap) {
  const auto [seed, keys, ops] = GetParam();
  run_differential<lf::FRSkipList<long, long>>(seed, keys, ops);
}

TEST_P(DifferentialProperty, FRListRCMatchesStdMap) {
  const auto [seed, keys, ops] = GetParam();
  run_differential<lf::FRListRC<long, long>>(seed, keys, ops);
}

TEST_P(DifferentialProperty, HashMapMatchesStdMapUnordered) {
  const auto [seed, keys, ops] = GetParam();
  lf::extras::FRHashMap<long, long> s(64);
  std::map<long, long> model;
  lf::Xoshiro256 rng(seed);
  for (int i = 0; i < ops; ++i) {
    const long k = static_cast<long>(rng.below(keys));
    switch (rng.below(4)) {
      case 0:
      case 1:
        ASSERT_EQ(s.insert(k, k ^ 0x5a5a),
                  model.emplace(k, k ^ 0x5a5a).second)
            << "seed=" << seed << " op=" << i;
        break;
      case 2:
        ASSERT_EQ(s.erase(k), model.erase(k) > 0)
            << "seed=" << seed << " op=" << i;
        break;
      default:
        ASSERT_EQ(s.contains(k), model.contains(k))
            << "seed=" << seed << " op=" << i;
    }
  }
  ASSERT_EQ(s.size(), model.size());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DifferentialProperty,
    ::testing::Combine(::testing::Values(1u, 42u, 0xdeadu, 7777u),
                       ::testing::Values(16u, 256u, 4096u),
                       ::testing::Values(4000)));

// ---- Property 2: structural invariants after churn, any thread count -----

class ConcurrencyProperty : public ::testing::TestWithParam<int> {};

TEST_P(ConcurrencyProperty, FRListInvariantsAfterChurn) {
  const int threads = GetParam();
  lf::FRList<long, long> list;
  std::barrier start(threads);
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      lf::Xoshiro256 rng(2000u + static_cast<unsigned>(t));
      start.arrive_and_wait();
      for (int i = 0; i < 12000; ++i) {
        const long k = static_cast<long>(rng.below(200));
        if (rng.below(2) == 0) {
          list.insert(k, k);
        } else {
          list.erase(k);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  const auto rep = list.validate();
  ASSERT_TRUE(rep.ok) << "threads=" << threads << ": " << rep.error;
}

TEST_P(ConcurrencyProperty, FRSkipListInvariantsAfterChurn) {
  const int threads = GetParam();
  lf::FRSkipList<long, long> s;
  std::barrier start(threads);
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      lf::Xoshiro256 rng(3000u + static_cast<unsigned>(t));
      start.arrive_and_wait();
      for (int i = 0; i < 9000; ++i) {
        const long k = static_cast<long>(rng.below(200));
        if (rng.below(2) == 0) {
          s.insert(k, k);
        } else {
          s.erase(k);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  const auto rep = s.validate();
  ASSERT_TRUE(rep.ok) << "threads=" << threads << ": " << rep.error;
}

TEST_P(ConcurrencyProperty, DisjointWritersNeverInterfere) {
  const int threads = GetParam();
  lf::FRList<long, long> list;
  std::barrier start(threads);
  std::vector<std::thread> workers;
  constexpr long kRange = 250;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      start.arrive_and_wait();
      const long base = t * kRange;
      for (long i = 0; i < kRange; ++i)
        ASSERT_TRUE(list.insert(base + i, base + i));
      for (long i = 0; i < kRange; i += 2)
        ASSERT_TRUE(list.erase(base + i));
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(list.size(),
            static_cast<std::size_t>(threads) * (kRange / 2));
  for (int t = 0; t < threads; ++t) {
    for (long i = 1; i < kRange; i += 2)
      ASSERT_TRUE(list.contains(t * kRange + i));
  }
  EXPECT_TRUE(list.validate().ok);
}

INSTANTIATE_TEST_SUITE_P(Threads, ConcurrencyProperty,
                         ::testing::Values(1, 2, 3, 4, 6));

// ---- Property 3: skip-list tower heights stay geometric under any seed ---

class TowerHeightProperty
    : public ::testing::TestWithParam<std::uint64_t /*seed offset*/> {};

TEST_P(TowerHeightProperty, GeometricHeightsAndSaneCensus) {
  // Seed the insertions from a distinct thread each run by re-seeding the
  // RNG indirectly: key values and order vary with the parameter.
  const std::uint64_t offset = GetParam();
  lf::FRSkipList<long, long> s;
  lf::Xoshiro256 rng(offset);
  std::set<long> inserted;
  while (inserted.size() < 8000) {
    const long k = static_cast<long>(rng.below(1u << 20));
    if (s.insert(k, k)) inserted.insert(k);
  }
  const auto census = s.census();
  ASSERT_EQ(census.towers, inserted.size());
  ASSERT_EQ(census.incomplete, 0u);
  // Geometric sanity: height-1 fraction in [0.40, 0.60].
  const double h1 = static_cast<double>(census.height_counts.at(1)) /
                    static_cast<double>(census.towers);
  EXPECT_GT(h1, 0.40);
  EXPECT_LT(h1, 0.60);
  // Monotonically (weakly) decreasing tail.
  std::size_t prev = census.height_counts.at(1);
  for (int h = 2; h <= 4; ++h) {
    const auto it = census.height_counts.find(h);
    const std::size_t cnt = it == census.height_counts.end() ? 0 : it->second;
    EXPECT_LT(cnt, prev) << "height " << h;
    prev = cnt;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TowerHeightProperty,
                         ::testing::Values(11u, 222u, 3333u));

// ---- Property 4: ablation variant matches the reference semantics --------

class AblationProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AblationProperty, NoFlagListMatchesFRList) {
  const std::uint64_t seed = GetParam();
  lf::FRList<long, long> reference;
  lf::FRListNoFlag<long, long> ablated;
  lf::Xoshiro256 rng(seed);
  for (int i = 0; i < 5000; ++i) {
    const long k = static_cast<long>(rng.below(100));
    switch (rng.below(3)) {
      case 0:
        ASSERT_EQ(reference.insert(k, k), ablated.insert(k, k)) << i;
        break;
      case 1:
        ASSERT_EQ(reference.erase(k), ablated.erase(k)) << i;
        break;
      default:
        ASSERT_EQ(reference.contains(k), ablated.contains(k)) << i;
    }
  }
  ASSERT_EQ(reference.size(), ablated.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, AblationProperty,
                         ::testing::Values(5u, 50u, 500u, 5000u));

}  // namespace
