// The shared battery: every dictionary implementation in the repository —
// the paper's two structures, the ablation, and all five baselines — is run
// through one typed gtest suite, so semantic divergence between any pair of
// implementations fails loudly.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "lf/baselines/coarse_list.h"
#include "lf/baselines/harris_list.h"
#include "lf/baselines/lazy_list.h"
#include "lf/baselines/michael_list.h"
#include "lf/baselines/restart_skiplist.h"
#include "lf/baselines/rwlock_skiplist.h"
#include "lf/core/fr_list.h"
#include "lf/core/fr_list_noflag.h"
#include "lf/core/fr_list_rc.h"
#include "lf/core/fr_skiplist.h"
#include "lf/core/fr_skiplist_rc.h"
#include "lf/core/set_traits.h"
#include "lf/util/random.h"

namespace {

template <typename S>
class SetContract : public ::testing::Test {};

using Implementations = ::testing::Types<
    lf::FRList<long, long>,            // the paper's list
    lf::FRSkipList<long, long>,        // the paper's skip list
    lf::FRList<long, long, std::less<long>,
               lf::reclaim::HazardReclaimer>,      // hazard-finger policy
    lf::FRSkipList<long, long, std::less<long>,
                   lf::reclaim::HazardReclaimer>,  // hazard-finger policy
    lf::FRListNoFlag<long, long>,      // flag-bit ablation
    lf::FRListRC<long, long>,          // Valois refcounting (Section 5)
    lf::FRSkipListRC<long, long>,      // refcounted skip list (Section 5)
    lf::HarrisList<long, long>,        // Harris 2001
    lf::MichaelList<long, long>,       // Michael 2002
    lf::MichaelListHP<long, long>,     // Michael + hazard pointers
    lf::CoarseList<long, long>,        // global mutex
    lf::LazyList<long, long>,          // Heller et al. lazy list
    lf::RestartSkipList<long, long>,   // Fraser-style skip list
    lf::RWLockSkipList<long, long>>;   // Pugh behind a rwlock
TYPED_TEST_SUITE(SetContract, Implementations);

TYPED_TEST(SetContract, SatisfiesConcept) {
  static_assert(lf::concurrent_map_like<TypeParam>);
  SUCCEED();
}

TYPED_TEST(SetContract, StartsEmpty) {
  TypeParam s;
  EXPECT_EQ(s.size(), 0u);
  EXPECT_FALSE(s.contains(0));
  EXPECT_FALSE(s.find(0).has_value());
  EXPECT_FALSE(s.erase(0));
}

TYPED_TEST(SetContract, InsertMakesKeyVisible) {
  TypeParam s;
  EXPECT_TRUE(s.insert(17, 170));
  EXPECT_TRUE(s.contains(17));
  ASSERT_TRUE(s.find(17).has_value());
  EXPECT_EQ(*s.find(17), 170);
  EXPECT_EQ(s.size(), 1u);
}

TYPED_TEST(SetContract, DuplicateInsertFailsAndKeepsOriginal) {
  TypeParam s;
  EXPECT_TRUE(s.insert(5, 50));
  EXPECT_FALSE(s.insert(5, 51));
  EXPECT_EQ(*s.find(5), 50);
  EXPECT_EQ(s.size(), 1u);
}

TYPED_TEST(SetContract, EraseRemovesExactlyOnce) {
  TypeParam s;
  s.insert(9, 90);
  EXPECT_TRUE(s.erase(9));
  EXPECT_FALSE(s.erase(9));
  EXPECT_FALSE(s.contains(9));
  EXPECT_EQ(s.size(), 0u);
}

TYPED_TEST(SetContract, EraseAbsentFails) {
  TypeParam s;
  s.insert(1, 1);
  s.insert(3, 3);
  EXPECT_FALSE(s.erase(0));
  EXPECT_FALSE(s.erase(2));
  EXPECT_FALSE(s.erase(4));
  EXPECT_EQ(s.size(), 2u);
}

TYPED_TEST(SetContract, ReinsertionCycle) {
  TypeParam s;
  for (int round = 0; round < 20; ++round) {
    ASSERT_TRUE(s.insert(7, round));
    ASSERT_EQ(*s.find(7), round);
    ASSERT_TRUE(s.erase(7));
    ASSERT_FALSE(s.contains(7));
  }
}

TYPED_TEST(SetContract, BulkInsertAllVisible) {
  TypeParam s;
  std::vector<long> keys;
  for (long k = 0; k < 400; ++k) keys.push_back(k * 3 + 1);
  lf::Xoshiro256 rng(1);  // shuffled insertion order
  for (std::size_t i = keys.size(); i > 1; --i)
    std::swap(keys[i - 1], keys[rng.below(i)]);
  for (long k : keys) ASSERT_TRUE(s.insert(k, -k));
  EXPECT_EQ(s.size(), keys.size());
  for (long k : keys) {
    ASSERT_TRUE(s.contains(k));
    ASSERT_EQ(*s.find(k), -k);
  }
  EXPECT_FALSE(s.contains(0));
  EXPECT_FALSE(s.contains(2));
}

TYPED_TEST(SetContract, InterleavedInsertErase) {
  TypeParam s;
  for (long k = 0; k < 300; ++k) ASSERT_TRUE(s.insert(k, k));
  for (long k = 0; k < 300; k += 2) ASSERT_TRUE(s.erase(k));
  for (long k = 300; k < 450; ++k) ASSERT_TRUE(s.insert(k, k));
  for (long k = 0; k < 450; ++k) {
    const bool expect = (k < 300) ? (k % 2 == 1) : true;
    ASSERT_EQ(s.contains(k), expect) << k;
  }
  EXPECT_EQ(s.size(), 150u + 150u);
}

TYPED_TEST(SetContract, NegativeAndZeroKeys) {
  TypeParam s;
  EXPECT_TRUE(s.insert(-5, 1));
  EXPECT_TRUE(s.insert(0, 2));
  EXPECT_TRUE(s.insert(5, 3));
  EXPECT_TRUE(s.contains(-5));
  EXPECT_TRUE(s.contains(0));
  EXPECT_TRUE(s.erase(-5));
  EXPECT_FALSE(s.contains(-5));
  EXPECT_EQ(s.size(), 2u);
}

TYPED_TEST(SetContract, DifferentialRandomOps) {
  TypeParam s;
  std::map<long, long> model;
  lf::Xoshiro256 rng(0xbeef);
  for (int i = 0; i < 6000; ++i) {
    const long k = static_cast<long>(rng.below(120));
    switch (rng.below(3)) {
      case 0:
        ASSERT_EQ(s.insert(k, k + 1), model.emplace(k, k + 1).second)
            << "op " << i << " insert " << k;
        break;
      case 1:
        ASSERT_EQ(s.erase(k), model.erase(k) > 0)
            << "op " << i << " erase " << k;
        break;
      default: {
        const auto a = s.find(k);
        ASSERT_EQ(a.has_value(), model.contains(k))
            << "op " << i << " find " << k;
        if (a.has_value()) { ASSERT_EQ(*a, model.at(k)); }
      }
    }
  }
  EXPECT_EQ(s.size(), model.size());
}

}  // namespace
