// White-box tests: the succ-field codec, the three-step deletion protocol,
// backlink recovery, and the step-counter instrumentation — the parts of
// the paper's design that the black-box API cannot observe.
#include <gtest/gtest.h>

#include "lf/core/fr_list.h"
#include "lf/instrument/counters.h"
#include "lf/reclaim/leaky.h"
#include "lf/sync/succ_field.h"

namespace {

using LeakyList =
    lf::FRList<long, long, std::less<long>, lf::reclaim::LeakyReclaimer>;
using Node = LeakyList::Node;
using View = lf::sync::SuccView<Node>;

// ---- succ-field codec ---------------------------------------------------

TEST(SuccField, PackUnpackRoundTrip) {
  alignas(8) Node node(Node::Kind::kInterior, 1, 1);
  for (bool mark : {false, true}) {
    for (bool flag : {false, true}) {
      if (mark && flag) continue;  // INV5: cannot coexist
      const View v{&node, mark, flag};
      EXPECT_EQ(lf::sync::SuccField<Node>::unpack(
                    lf::sync::SuccField<Node>::pack(v)),
                v);
    }
  }
  // Null pointer round-trips too (tail's succ).
  const View null_v{nullptr, false, false};
  EXPECT_EQ(lf::sync::SuccField<Node>::unpack(
                lf::sync::SuccField<Node>::pack(null_v)),
            null_v);
}

TEST(SuccField, CasReturnsWitnessedValueOnFailure) {
  alignas(8) Node a(Node::Kind::kInterior, 1, 1);
  alignas(8) Node b(Node::Kind::kInterior, 2, 2);
  lf::sync::SuccField<Node> field(View{&a, false, false});
  // Wrong expectation: must fail and report the actual content.
  const View witnessed =
      field.cas(View{&b, false, false}, View{&b, true, false});
  EXPECT_EQ(witnessed, (View{&a, false, false}));
  EXPECT_EQ(field.load(), (View{&a, false, false}));
  // Right expectation: succeeds and returns the old value.
  const View old = field.cas(View{&a, false, false}, View{&b, false, true});
  EXPECT_EQ(old, (View{&a, false, false}));
  EXPECT_EQ(field.load(), (View{&b, false, true}));
}

TEST(SuccField, CasAttemptsAreCounted) {
  alignas(8) Node a(Node::Kind::kInterior, 1, 1);
  lf::sync::SuccField<Node> field(View{&a, false, false});
  const auto before = lf::stats::tls().read();
  field.cas(View{&a, false, false}, View{&a, true, false});   // success
  field.cas(View{&a, false, false}, View{&a, false, false});  // fails: marked
  const auto after = lf::stats::tls().read();
  EXPECT_EQ(after.cas_attempt - before.cas_attempt, 2u);
  EXPECT_EQ(after.cas_success - before.cas_success, 1u);
}

TEST(SuccField, MarkAndFlagBitsAreIndependentOfPointer) {
  EXPECT_EQ(lf::sync::SuccField<Node>::kMarkBit, 1u);
  EXPECT_EQ(lf::sync::SuccField<Node>::kFlagBit, 2u);
  static_assert(alignof(Node) >= 4, "two low bits must be free");
}

// ---- three-step deletion protocol ---------------------------------------

// With a leaky reclaimer, deleted nodes stay readable, so the protocol's
// after-effects (mark bit, backlink) are inspectable.
TEST(FRListWhitebox, DeletionMarksNodeAndSetsBacklink) {
  LeakyList list;
  list.insert(1, 1);
  list.insert(2, 2);
  list.insert(3, 3);

  // Hold direct pointers before deletion.
  Node* n1 = list.head()->succ.load().right;
  Node* n2 = n1->succ.load().right;
  ASSERT_EQ(n2->key, 2);

  ASSERT_TRUE(list.erase(2));

  // Paper Figure 2 outcome: n2 marked, n2.backlink == its predecessor n1,
  // n1 unflagged again, n1 now links past n2.
  EXPECT_TRUE(n2->succ.load().mark);
  EXPECT_FALSE(n2->succ.load().flag);
  EXPECT_EQ(n2->backlink.load(), n1);
  EXPECT_FALSE(n1->succ.load().flag);
  EXPECT_FALSE(n1->succ.load().mark);
  EXPECT_EQ(n1->succ.load().right->key, 3);
}

TEST(FRListWhitebox, MarkedSuccessorFieldIsFrozen) {
  LeakyList list;
  list.insert(1, 1);
  list.insert(2, 2);
  Node* n2 = list.head()->succ.load().right->succ.load().right;
  ASSERT_EQ(n2->key, 2);
  ASSERT_TRUE(list.erase(2));
  const View frozen = n2->succ.load();
  ASSERT_TRUE(frozen.mark);
  // No C&S can touch a marked field: all further inserts/erases around the
  // position must leave it byte-identical.
  list.insert(2, 22);
  list.erase(1);
  list.insert(0, 0);
  EXPECT_EQ(n2->succ.load(), frozen);
}

TEST(FRListWhitebox, DeletionCountsOneFlagOneMarkOneUnlink) {
  LeakyList list;
  for (long k = 0; k < 8; ++k) list.insert(k, k);
  const auto before = lf::stats::aggregate();
  ASSERT_TRUE(list.erase(4));
  const auto delta = lf::stats::aggregate() - before;
  EXPECT_EQ(delta.flag_cas, 1u);
  EXPECT_EQ(delta.mark_cas, 1u);
  EXPECT_EQ(delta.pdelete_cas, 1u);
  // Uncontended: at most the paper's three successful C&S per deletion.
  EXPECT_EQ(delta.cas_success, 3u);
}

TEST(FRListWhitebox, InsertCountsOneCas) {
  LeakyList list;
  for (long k = 0; k < 8; ++k) list.insert(k, k);
  const auto before = lf::stats::aggregate();
  ASSERT_TRUE(list.insert(100, 100));
  const auto delta = lf::stats::aggregate() - before;
  EXPECT_EQ(delta.insert_cas, 1u);
  EXPECT_EQ(delta.cas_success, 1u);
  EXPECT_EQ(delta.cas_failures(), 0u);
}

// ---- backlink recovery (the paper's key mechanism) ----------------------

TEST(FRListWhitebox, InsertRecoversThroughBacklinkAfterPredecessorDeleted) {
  LeakyList list;
  for (long k = 1; k <= 5; ++k) list.insert(k, k);

  // Phase 1: locate an insertion position for 6 (prev = node 5).
  LeakyList::InsertCursor cur;
  ASSERT_TRUE(list.insert_locate(6, 60, cur));
  ASSERT_EQ(cur.prev->key, 5);

  // Adversary: delete node 5 between locate and C&S.
  ASSERT_TRUE(list.erase(5));

  // Phase 2: the C&S fails on the marked node; recovery must walk the
  // backlink (NOT restart from head) and then complete.
  const auto before = lf::stats::aggregate();
  ASSERT_TRUE(list.insert_complete(cur));
  const auto delta = lf::stats::aggregate() - before;
  EXPECT_GE(delta.backlink_traversal, 1u);
  EXPECT_GE(delta.cas_failures(), 1u);
  // Recovery is local: the re-search must not re-traverse nodes 1..4.
  EXPECT_LE(delta.curr_update, 2u);
  EXPECT_TRUE(list.contains(6));
  EXPECT_TRUE(list.validate().ok);
}

TEST(FRListWhitebox, TryOnceReportsRetryAfterInterference) {
  LeakyList list;
  for (long k = 1; k <= 3; ++k) list.insert(k, k);
  LeakyList::InsertCursor cur;
  ASSERT_TRUE(list.insert_locate(9, 90, cur));
  ASSERT_TRUE(list.erase(3));  // kill the located predecessor
  // One iteration: C&S fails, recovery repositions, no insertion yet.
  EXPECT_EQ(list.insert_try_once(cur), LeakyList::TryResult::kRetry);
  EXPECT_FALSE(list.contains(9));
  EXPECT_EQ(cur.prev->key, 2);  // recovered to the live predecessor
  // Second iteration: clean C&S.
  EXPECT_EQ(list.insert_try_once(cur), LeakyList::TryResult::kInserted);
  EXPECT_TRUE(list.contains(9));
}

TEST(FRListWhitebox, TryOnceDetectsDuplicateAppearingDuringRetry) {
  LeakyList list;
  list.insert(1, 1);
  LeakyList::InsertCursor cur;
  ASSERT_TRUE(list.insert_locate(5, 50, cur));
  list.insert(5, 555);  // someone else inserts the same key first
  EXPECT_EQ(list.insert_try_once(cur), LeakyList::TryResult::kDuplicate);
  EXPECT_EQ(*list.find(5), 555);
}

TEST(FRListWhitebox, ChainHistogramRecordsRecoveries) {
  lf::stats::reset_chain_hist();
  LeakyList list;
  for (long k = 1; k <= 4; ++k) list.insert(k, k);
  LeakyList::InsertCursor cur;
  ASSERT_TRUE(list.insert_locate(10, 100, cur));
  ASSERT_TRUE(list.erase(4));
  ASSERT_TRUE(list.insert_complete(cur));
  const auto hist = lf::stats::aggregate_chain_hist();
  EXPECT_GE(hist.count(), 1u);
  EXPECT_GE(hist.max(), 1u);
}

TEST(FRListWhitebox, SearchHelpsCompletePhysicalDeletion) {
  // After erase() returns the node is already physically deleted; verify a
  // subsequent search performs NO helping (nothing marked remains linked).
  LeakyList list;
  for (long k = 0; k < 10; ++k) list.insert(k, k);
  list.erase(5);
  const auto before = lf::stats::aggregate();
  EXPECT_FALSE(list.contains(5));
  const auto delta = lf::stats::aggregate() - before;
  EXPECT_EQ(delta.help_marked, 0u);
  EXPECT_EQ(delta.cas_attempt, 0u);
}

TEST(FRListWhitebox, RetireGoesThroughReclaimer) {
  LeakyList list;  // leaky reclaimer still counts retirements
  for (long k = 0; k < 10; ++k) list.insert(k, k);
  const auto before = lf::stats::aggregate();
  for (long k = 0; k < 10; ++k) list.erase(k);
  const auto delta = lf::stats::aggregate() - before;
  EXPECT_EQ(delta.node_retired, 10u);
}

}  // namespace
