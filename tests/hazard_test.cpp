// Unit and stress tests for the hazard-pointer domain.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "lf/reclaim/hazard.h"

namespace {

using lf::reclaim::HazardDomain;

struct Tracked {
  static std::atomic<int> live;
  Tracked() { live.fetch_add(1); }
  ~Tracked() { live.fetch_sub(1); }
};
std::atomic<int> Tracked::live{0};

TEST(HazardDomain, UnprotectedRetireIsFreedByScan) {
  HazardDomain domain;
  domain.retire(new Tracked);
  EXPECT_EQ(domain.retired_count(), 1u);
  domain.scan();
  EXPECT_EQ(Tracked::live.load(), 0);
  EXPECT_EQ(domain.retired_count(), 0u);
}

TEST(HazardDomain, ProtectedNodeSurvivesScan) {
  HazardDomain domain;
  auto* obj = new Tracked;
  auto& slots = domain.slots();
  slots.set(0, obj);
  domain.retire(obj);
  domain.scan();
  EXPECT_EQ(Tracked::live.load(), 1);  // still protected
  slots.clear(0);
  domain.scan();
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST(HazardDomain, ClearAllReleasesEverySlot) {
  HazardDomain domain;
  auto& slots = domain.slots();
  std::vector<Tracked*> objs;
  for (int i = 0; i < HazardDomain::kSlotsPerThread; ++i) {
    objs.push_back(new Tracked);
    slots.set(i, objs.back());
    domain.retire(objs.back());
  }
  domain.scan();
  EXPECT_EQ(Tracked::live.load(), HazardDomain::kSlotsPerThread);
  slots.clear_all();
  domain.scan();
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST(HazardDomain, CrossThreadProtectionIsRespected) {
  HazardDomain domain;
  auto* obj = new Tracked;
  std::atomic<bool> protected_flag{false}, release{false};
  std::thread holder([&] {
    domain.slots().set(0, obj);
    protected_flag.store(true);
    while (!release.load()) std::this_thread::yield();
    domain.slots().clear(0);
  });
  while (!protected_flag.load()) std::this_thread::yield();
  domain.retire(obj);
  domain.scan();  // holder's slot must save the object
  EXPECT_EQ(Tracked::live.load(), 1);
  release.store(true);
  holder.join();
  domain.scan();
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST(HazardDomain, ThresholdTriggersAutomaticScan) {
  HazardDomain domain;
  // Far more retirements than any threshold: most must get freed without an
  // explicit scan() call.
  for (int i = 0; i < 4096; ++i) domain.retire(new Tracked);
  EXPECT_LT(domain.retired_count(), 4096u);
  domain.scan();
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST(HazardDomain, ExitedThreadsGarbageIsAdopted) {
  HazardDomain domain;
  std::thread worker([&] {
    for (int i = 0; i < 10; ++i) domain.retire(new Tracked);
  });
  worker.join();
  domain.scan();  // adopts the orphaned retire list
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST(HazardDomain, DestructorFreesOutstanding) {
  {
    HazardDomain domain;
    for (int i = 0; i < 10; ++i) domain.retire(new Tracked);
  }
  EXPECT_EQ(Tracked::live.load(), 0);
}

// Stress: the canonical protect-validate-read loop against a concurrently
// swapped-and-retired shared pointer.
TEST(HazardDomainStress, ProtectValidateNeverReadsFreed) {
  struct Boxed {
    std::atomic<std::uint64_t> canary{0x1234567890abcdefULL};
    ~Boxed() { canary.store(0); }
  };

  HazardDomain domain;
  std::atomic<Boxed*> shared{new Boxed};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      auto& slots = domain.slots();
      while (!stop.load(std::memory_order_acquire)) {
        Boxed* p;
        do {  // protect + validate
          p = shared.load(std::memory_order_acquire);
          slots.set(0, p);
        } while (shared.load(std::memory_order_acquire) != p);
        ASSERT_EQ(p->canary.load(std::memory_order_relaxed),
                  0x1234567890abcdefULL);
        reads.fetch_add(1, std::memory_order_relaxed);
        slots.clear(0);
      }
    });
  }

  std::thread writer([&] {
    for (int i = 0; i < 3000; ++i) {
      auto* fresh = new Boxed;
      Boxed* old = shared.exchange(fresh, std::memory_order_acq_rel);
      domain.retire(old);
    }
    stop.store(true, std::memory_order_release);
  });

  writer.join();
  for (auto& r : readers) r.join();
  domain.retire(shared.load());
  domain.scan();
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(Tracked::live.load(), 0);
}

}  // namespace
