// Unit and stress tests for the hazard-pointer domain: the raw protect /
// scan machinery, the audited protect() helper, the retained-finger slot
// protocol (publish / reacquire / invalidate / chain-protecting scan), and
// the layered epoch→hazard HazardReclaimer.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "lf/reclaim/epoch.h"
#include "lf/reclaim/hazard.h"

namespace {

using lf::reclaim::EpochDomain;
using lf::reclaim::HazardDomain;
using lf::reclaim::HazardReclaimer;

struct Tracked {
  static std::atomic<int> live;
  Tracked() { live.fetch_add(1); }
  ~Tracked() { live.fetch_sub(1); }
};
std::atomic<int> Tracked::live{0};

TEST(HazardDomain, UnprotectedRetireIsFreedByScan) {
  HazardDomain domain;
  domain.retire(new Tracked);
  EXPECT_EQ(domain.retired_count(), 1u);
  domain.scan();
  EXPECT_EQ(Tracked::live.load(), 0);
  EXPECT_EQ(domain.retired_count(), 0u);
}

TEST(HazardDomain, ProtectedNodeSurvivesScan) {
  HazardDomain domain;
  auto* obj = new Tracked;
  auto& slots = domain.slots();
  slots.set(0, obj);
  domain.retire(obj);
  domain.scan();
  EXPECT_EQ(Tracked::live.load(), 1);  // still protected
  slots.clear(0);
  domain.scan();
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST(HazardDomain, ClearAllReleasesEverySlot) {
  HazardDomain domain;
  auto& slots = domain.slots();
  std::vector<Tracked*> objs;
  for (int i = 0; i < HazardDomain::kSlotsPerThread; ++i) {
    objs.push_back(new Tracked);
    slots.set(i, objs.back());
    domain.retire(objs.back());
  }
  domain.scan();
  EXPECT_EQ(Tracked::live.load(), HazardDomain::kSlotsPerThread);
  slots.clear_all();
  domain.scan();
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST(HazardDomain, CrossThreadProtectionIsRespected) {
  HazardDomain domain;
  auto* obj = new Tracked;
  std::atomic<bool> protected_flag{false}, release{false};
  std::thread holder([&] {
    domain.slots().set(0, obj);
    protected_flag.store(true);
    while (!release.load()) std::this_thread::yield();
    domain.slots().clear(0);
  });
  while (!protected_flag.load()) std::this_thread::yield();
  domain.retire(obj);
  domain.scan();  // holder's slot must save the object
  EXPECT_EQ(Tracked::live.load(), 1);
  release.store(true);
  holder.join();
  domain.scan();
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST(HazardDomain, ThresholdTriggersAutomaticScan) {
  HazardDomain domain;
  // Far more retirements than any threshold: most must get freed without an
  // explicit scan() call.
  for (int i = 0; i < 4096; ++i) domain.retire(new Tracked);
  EXPECT_LT(domain.retired_count(), 4096u);
  domain.scan();
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST(HazardDomain, ExitedThreadsGarbageIsAdopted) {
  HazardDomain domain;
  std::thread worker([&] {
    for (int i = 0; i < 10; ++i) domain.retire(new Tracked);
  });
  worker.join();
  domain.scan();  // adopts the orphaned retire list
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST(HazardDomain, DestructorFreesOutstanding) {
  {
    HazardDomain domain;
    for (int i = 0; i < 10; ++i) domain.retire(new Tracked);
  }
  EXPECT_EQ(Tracked::live.load(), 0);
}

// ---- protect(): the single audited publish-then-revalidate helper --------

TEST(HazardDomain, ProtectPublishesAndRevalidates) {
  HazardDomain domain;
  auto* obj = new Tracked;
  std::atomic<Tracked*> src{obj};
  auto& slots = domain.slots();
  // Source unchanged: protect succeeds and the published slot shields the
  // object from a scan.
  ASSERT_TRUE(slots.protect(0, obj, [&] { return src.load(); }));
  domain.retire(obj);
  domain.scan();
  EXPECT_EQ(Tracked::live.load(), 1);
  // Source redirected after the publication: protect must report failure
  // (the caller's signal to discard the pointer and retry), even though the
  // slot write itself happened.
  auto* other = new Tracked;
  src.store(other);
  EXPECT_FALSE(slots.protect(1, obj, [&] { return src.load(); }));
  slots.clear_all();
  domain.retire(other);
  domain.scan();
  EXPECT_EQ(Tracked::live.load(), 0);
}

// ---- Retained-finger slot protocol ---------------------------------------

TEST(HazardDomain, RetainedFingerBlocksReclamationUntilInvalidated) {
  HazardDomain domain;
  auto* obj = new Tracked;
  constexpr std::uint64_t kTag = 7001;
  domain.publish_finger(
      obj, +[](void*) -> void* { return nullptr; }, kTag);
  EXPECT_TRUE(domain.reacquire_finger(obj, kTag));
  EXPECT_FALSE(domain.reacquire_finger(obj, kTag + 1));  // wrong tag
  domain.retire(obj);
  domain.scan();
  EXPECT_EQ(Tracked::live.load(), 1);  // the retained slot spares it
  domain.invalidate_fingers(kTag);
  EXPECT_FALSE(domain.reacquire_finger(obj, kTag));  // fails closed
  domain.scan();
  EXPECT_EQ(Tracked::live.load(), 0);
}

// The multi-entry shape the skip list uses: one retained slot per fingered
// level, each re-acquired independently by (pointer, tag, index).
TEST(HazardDomain, MultiEntryFingerPublishProtectsEveryEntry) {
  auto null_walker = +[](void*) -> void* { return nullptr; };
  HazardDomain domain;
  Tracked* objs[3] = {new Tracked, new Tracked, new Tracked};
  void* entries[3] = {objs[0], objs[1], objs[2]};
  domain.publish_finger(entries, 3, null_walker, 11);
  EXPECT_TRUE(domain.reacquire_finger(objs[0], 11, 0));
  EXPECT_TRUE(domain.reacquire_finger(objs[2], 11, 2));
  EXPECT_FALSE(domain.reacquire_finger(objs[2], 11, 1));  // wrong index
  for (Tracked* o : objs) domain.retire(o);
  domain.scan();
  EXPECT_EQ(Tracked::live.load(), 3);  // every entry's slot spares its node
  // A narrower republish nulls the entries beyond its count: only entry 0
  // stays protected.
  void* one[1] = {objs[0]};
  domain.publish_finger(one, 1, null_walker, 11);
  EXPECT_FALSE(domain.reacquire_finger(objs[1], 11, 1));
  domain.scan();
  EXPECT_EQ(Tracked::live.load(), 1);
  // invalidate_fingers sweeps ALL matching entries, not just entry 0.
  domain.publish_finger(one, 1, null_walker, 11);
  domain.invalidate_fingers(11);
  EXPECT_FALSE(domain.reacquire_finger(objs[0], 11, 0));
  domain.scan();
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST(HazardDomain, RepublishEvictsPreviousFinger) {
  HazardDomain domain;
  auto* first = new Tracked;
  auto* second = new Tracked;
  domain.publish_finger(
      first, +[](void*) -> void* { return nullptr; }, 1);
  domain.publish_finger(
      second, +[](void*) -> void* { return nullptr; }, 2);
  // One retained slot per (thread, domain): the second publish evicted the
  // first, whose re-acquisition must now fail closed.
  EXPECT_FALSE(domain.reacquire_finger(first, 1));
  EXPECT_TRUE(domain.reacquire_finger(second, 2));
  domain.retire(first);
  domain.scan();
  EXPECT_EQ(Tracked::live.load(), 1);  // only `second` survives
  domain.invalidate_fingers(2);
  domain.retire(second);
  domain.scan();
  EXPECT_EQ(Tracked::live.load(), 0);
}

// A published finger protects its whole backlink chain: scan() walks the
// registered ChainWalker and spares every node it yields — exactly the
// nodes the owning thread's recovery walk could dereference.
TEST(HazardDomain, ChainWalkProtectsWholeBacklinkChain) {
  struct ChainNode {
    std::atomic<bool> marked{false};
    std::atomic<ChainNode*> back{nullptr};
    Tracked tracked;
  };
  auto walker = +[](void* p) -> void* {
    auto* n = static_cast<ChainNode*>(p);
    if (!n->marked.load()) return nullptr;
    return n->back.load();
  };
  HazardDomain domain;
  auto* n2 = new ChainNode;  // chain end: unmarked, hence alive regardless
  auto* n1 = new ChainNode;
  n1->marked.store(true);
  n1->back.store(n2);
  auto* n0 = new ChainNode;  // the published finger, itself marked
  n0->marked.store(true);
  n0->back.store(n1);
  domain.publish_finger(n0, walker, 42);
  domain.retire(n1);
  domain.retire(n2);
  domain.scan();
  EXPECT_EQ(Tracked::live.load(), 3);  // n1, n2 spared by the chain walk
  // The chain dissolves (as after a successful recovery republishes an
  // unmarked finger): nothing past the finger is protected any more.
  n0->marked.store(false);
  domain.scan();
  EXPECT_EQ(Tracked::live.load(), 1);  // n1, n2 freed; n0 never retired
  domain.invalidate_fingers(42);
  delete n0;
  EXPECT_EQ(Tracked::live.load(), 0);
}

// ---- HazardReclaimer: the layered epoch→hazard policy ---------------------

// Declaration order matters in these tests: the HazardDomain must outlive
// the EpochDomain, because draining the epoch stage runs Handoff::pass,
// which files the payload into the hazard domain.

TEST(HazardReclaimerTest, TwoStageRetireNeedsGraceAndScan) {
  HazardDomain hdom;
  EpochDomain edom;
  HazardReclaimer rec(edom, hdom);
  rec.retire(new Tracked);
  // Stage 1: still parked in the epoch domain — a hazard scan alone cannot
  // reach it.
  hdom.scan();
  EXPECT_EQ(Tracked::live.load(), 1);
  edom.drain();  // grace over: handed to the hazard domain's retired list
  EXPECT_EQ(hdom.retired_count(), 1u);
  hdom.scan();
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST(HazardReclaimerTest, FingerHooksRouteToTheDomain) {
  HazardDomain hdom;
  EpochDomain edom;
  HazardReclaimer rec(edom, hdom);
  auto* obj = new Tracked;
  rec.finger_publish(
      obj, +[](void*) -> void* { return nullptr; }, 9);
  EXPECT_TRUE(rec.finger_reacquire(obj, 9));
  rec.retire(obj);
  edom.drain();
  hdom.scan();
  EXPECT_EQ(Tracked::live.load(), 1);  // retained slot spans both stages
  rec.finger_invalidate(9);
  EXPECT_FALSE(rec.finger_reacquire(obj, 9));
  hdom.scan();
  EXPECT_EQ(Tracked::live.load(), 0);
}

// Stress: the canonical protect-validate-read loop against a concurrently
// swapped-and-retired shared pointer.
TEST(HazardDomainStress, ProtectValidateNeverReadsFreed) {
  struct Boxed {
    std::atomic<std::uint64_t> canary{0x1234567890abcdefULL};
    ~Boxed() { canary.store(0); }
  };

  HazardDomain domain;
  std::atomic<Boxed*> shared{new Boxed};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      auto& slots = domain.slots();
      while (!stop.load(std::memory_order_acquire)) {
        Boxed* p;
        do {  // the audited publish-then-revalidate helper
          p = shared.load(std::memory_order_acquire);
        } while (!slots.protect(
            0, p, [&] { return shared.load(std::memory_order_acquire); }));
        ASSERT_EQ(p->canary.load(std::memory_order_relaxed),
                  0x1234567890abcdefULL);
        reads.fetch_add(1, std::memory_order_relaxed);
        slots.clear(0);
      }
    });
  }

  std::thread writer([&] {
    for (int i = 0; i < 3000; ++i) {
      auto* fresh = new Boxed;
      Boxed* old = shared.exchange(fresh, std::memory_order_acq_rel);
      domain.retire(old);
    }
    stop.store(true, std::memory_order_release);
  });

  writer.join();
  for (auto& r : readers) r.join();
  domain.retire(shared.load());
  domain.scan();
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(Tracked::live.load(), 0);
}

}  // namespace
