// Unit tests for the per-thread segment pool (lf/mem/pool.h): size-class
// arithmetic via the public interface, grow/recycle accounting, oversize
// fallthrough, alignment, and cross-thread donation at thread exit.
//
// PoolTotals counters are process-wide and monotone, so every test works on
// diffs of snapshots taken around its own traffic (gtest runs the tests in
// this binary sequentially on one thread unless a test spawns its own).
#include <gtest/gtest.h>

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "lf/mem/pool.h"

namespace {

using lf::mem::kGranule;
using lf::mem::kMaxPooledBytes;
using lf::mem::kSegmentBytes;
using lf::mem::PoolTotals;
using lf::mem::pool_allocate;
using lf::mem::pool_deallocate;
using lf::mem::pool_totals;

TEST(Pool, BlocksAre64ByteAligned) {
  const std::size_t sizes[] = {1, 8, 63, 64, 65, 128, 200, 1024,
                               kMaxPooledBytes};
  std::vector<std::pair<void*, std::size_t>> blocks;
  for (std::size_t sz : sizes) {
    void* p = pool_allocate(sz);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % kGranule, 0u)
        << "size " << sz;
    blocks.emplace_back(p, sz);
  }
  for (auto [p, sz] : blocks) pool_deallocate(p, sz);
}

TEST(Pool, FreshThenRecycled) {
  const PoolTotals before = pool_totals();
  void* p = pool_allocate(96);  // class: 2 granules (128 B)
  pool_deallocate(p, 96);
  // Same class: must come back off this thread's freelist.
  void* q = pool_allocate(100);
  EXPECT_EQ(q, p);
  pool_deallocate(q, 100);
  const PoolTotals d = pool_totals() - before;
  EXPECT_EQ(d.requests, 2u);
  EXPECT_EQ(d.freed_blocks, 2u);
  EXPECT_EQ(d.recycled_blocks + d.fresh_blocks, 2u);
  EXPECT_GE(d.recycled_blocks, 1u);  // the second allocate recycled
  EXPECT_EQ(d.oversize, 0u);
}

TEST(Pool, AccountingBalances) {
  const PoolTotals before = pool_totals();
  constexpr int kN = 500;
  std::vector<void*> blocks;
  blocks.reserve(kN);
  for (int i = 0; i < kN; ++i) blocks.push_back(pool_allocate(64));
  for (void* p : blocks) pool_deallocate(p, 64);
  for (int i = 0; i < kN; ++i) blocks[i] = pool_allocate(64);
  const PoolTotals mid = pool_totals() - before;
  // Every request is served fresh or recycled, never both; the second wave
  // must be recycled entirely (the freelist held kN blocks of this class).
  EXPECT_EQ(mid.requests, 2u * kN);
  EXPECT_EQ(mid.fresh_blocks + mid.recycled_blocks, 2u * kN);
  EXPECT_GE(mid.recycled_blocks, static_cast<std::uint64_t>(kN));
  for (void* p : blocks) pool_deallocate(p, 64);
}

TEST(Pool, SegmentsGrowWithDemand) {
  const PoolTotals before = pool_totals();
  // Allocate more than three segments' worth of one class without freeing
  // (the current bump region can absorb at most one segment of demand).
  const std::size_t block = 4 * kGranule;
  const std::size_t count = (3 * kSegmentBytes) / block + 8;
  std::vector<void*> blocks;
  blocks.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    blocks.push_back(pool_allocate(block));
  const PoolTotals d = pool_totals() - before;
  EXPECT_GE(d.segments, 2u);
  EXPECT_GE(d.fresh_blocks, count - d.recycled_blocks);
  for (void* p : blocks) pool_deallocate(p, block);
}

TEST(Pool, OversizeFallsThroughToGlobalAllocator) {
  const PoolTotals before = pool_totals();
  void* p = pool_allocate(kMaxPooledBytes + 1);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % kGranule, 0u);
  pool_deallocate(p, kMaxPooledBytes + 1);
  const PoolTotals d = pool_totals() - before;
  EXPECT_EQ(d.oversize, 1u);
  EXPECT_EQ(d.fresh_blocks, 0u);
  EXPECT_EQ(d.recycled_blocks, 0u);
  EXPECT_EQ(d.freed_blocks, 0u);  // oversize frees bypass the freelists
}

TEST(Pool, ExitingThreadDonatesItsFreelist) {
  // A worker allocates and frees blocks of a distinctive class, then exits:
  // its freelist must be donated so this thread can recycle the blocks.
  constexpr std::size_t kBytes = 7 * kGranule;
  constexpr int kN = 64;
  std::thread worker([&] {
    std::vector<void*> blocks;
    for (int i = 0; i < kN; ++i) blocks.push_back(pool_allocate(kBytes));
    for (void* p : blocks) pool_deallocate(p, kBytes);
  });
  worker.join();
  const PoolTotals before = pool_totals();
  std::vector<void*> blocks;
  for (int i = 0; i < kN; ++i) blocks.push_back(pool_allocate(kBytes));
  const PoolTotals d = pool_totals() - before;
  EXPECT_GE(d.recycled_blocks, static_cast<std::uint64_t>(kN));
  for (void* p : blocks) pool_deallocate(p, kBytes);
}

TEST(Pool, AdoptStalledReclaimsAParkedThreadsCache) {
  // A worker fills its thread cache (freelist + part of a bump region) and
  // then parks — the stand-in for a crashed thread whose cache would
  // otherwise be stranded until process exit. pool_adopt_stalled() donates
  // the cache to the shared pool so survivors recycle the blocks.
  constexpr std::size_t kBytes = 11 * lf::mem::kGranule;
  constexpr int kN = 48;
  std::mutex mu;
  std::condition_variable cv;
  bool parked = false, release = false;
  std::thread worker([&] {
    std::vector<void*> blocks;
    for (int i = 0; i < kN; ++i) blocks.push_back(pool_allocate(kBytes));
    for (void* p : blocks) pool_deallocate(p, kBytes);
    std::unique_lock lk(mu);
    parked = true;
    cv.notify_all();
    cv.wait(lk, [&] { return release; });
  });
  {
    std::unique_lock lk(mu);
    cv.wait(lk, [&] { return parked; });
  }

  const PoolTotals before = pool_totals();
  // Unknown threads adopt nothing; the parked worker's cache is found.
  EXPECT_EQ(lf::mem::pool_adopt_stalled(std::thread::id{}), 0u);
  const std::uint64_t adopted = lf::mem::pool_adopt_stalled(worker.get_id());
  EXPECT_GE(adopted, static_cast<std::uint64_t>(kN));
  EXPECT_GE((pool_totals() - before).adopted_blocks,
            static_cast<std::uint64_t>(kN));

  // The adopted blocks flow back through the shared pool to this thread.
  std::vector<void*> blocks;
  for (int i = 0; i < kN; ++i) blocks.push_back(pool_allocate(kBytes));
  const PoolTotals d = pool_totals() - before;
  EXPECT_GE(d.recycled_blocks, static_cast<std::uint64_t>(kN));
  for (void* p : blocks) pool_deallocate(p, kBytes);

  // The worker resumes with an emptied cache and exits cleanly (its cache
  // destructor finds nothing left to donate).
  {
    std::lock_guard lk(mu);
    release = true;
    cv.notify_all();
  }
  worker.join();
}

TEST(Pool, CrossThreadFreeMigratesOwnership) {
  // Blocks allocated here but freed on another thread belong to that thread
  // afterwards; when it exits they reach the shared pool and flow back.
  constexpr std::size_t kBytes = 9 * kGranule;
  constexpr int kN = 32;
  std::vector<void*> blocks;
  for (int i = 0; i < kN; ++i) blocks.push_back(pool_allocate(kBytes));
  std::thread freer([&] {
    for (void* p : blocks) pool_deallocate(p, kBytes);
  });
  freer.join();
  const PoolTotals before = pool_totals();
  for (int i = 0; i < kN; ++i) blocks[i] = pool_allocate(kBytes);
  const PoolTotals d = pool_totals() - before;
  EXPECT_GE(d.recycled_blocks, static_cast<std::uint64_t>(kN));
  for (void* p : blocks) pool_deallocate(p, kBytes);
}

}  // namespace
